//! # snapshot-queries
//!
//! Facade crate for the *Snapshot Queries* reproduction (Kotidis,
//! ICDE 2005). Re-exports the workspace crates under one roof:
//!
//! * [`netsim`] — the discrete-time wireless network simulator.
//! * [`datagen`] — synthetic and weather-like workload generators.
//! * [`core`] — models, model-aware cache, representative election,
//!   snapshot maintenance and snapshot query execution.
//! * [`store`] — the persistent, versioned snapshot store behind the
//!   dialect's `AS OF` / `BETWEEN` time-travel clauses.
//! * [`query`] — the declarative `SELECT ... USE SNAPSHOT` dialect.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use snapshot_core as core;
pub use snapshot_datagen as datagen;
pub use snapshot_netsim as netsim;
pub use snapshot_query as query;
pub use snapshot_store as store;

/// Frequently used types from every layer.
pub mod prelude {
    pub use snapshot_core::prelude::*;
    pub use snapshot_datagen::prelude::*;
    pub use snapshot_netsim::prelude::*;
    pub use snapshot_query::prelude::*;
}
