//! `snapshot-repl` — an operator console over a simulated deployment.
//!
//! Builds a sensor network (workload, topology and protocol parameters
//! from flags), then reads SQL queries and meta-commands from stdin:
//!
//! ```text
//! $ cargo run --release --bin snapshot-repl -- --nodes 100 --classes 5
//! sq> SELECT AVG(value) FROM sensors USE SNAPSHOT
//! sq> .kill N13
//! sq> .maintain
//! sq> .snapshot
//! sq> .help
//! ```

use snapshot_queries::core::{SensorNetwork, SnapshotConfig};
use snapshot_queries::datagen::{random_walk, weather, RandomWalkConfig, WeatherConfig};
use snapshot_queries::netsim::{EnergyModel, LinkModel, NodeId, Topology};
use snapshot_queries::query::{execute_plan, parse, plan, RegionCatalog};
use std::io::{BufRead, Write};

struct Options {
    nodes: usize,
    classes: usize,
    weather: bool,
    range: f64,
    loss: f64,
    threshold: f64,
    cache: usize,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            nodes: 100,
            classes: 5,
            weather: false,
            range: std::f64::consts::SQRT_2,
            loss: 0.0,
            threshold: 1.0,
            cache: 2048,
            seed: 42,
        }
    }
}

fn parse_args() -> Options {
    let mut o = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| die("missing flag value"))
        };
        match args[i].as_str() {
            "--nodes" => o.nodes = take(&mut i).parse().unwrap_or_else(|_| die("bad --nodes")),
            "--classes" => {
                o.classes = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --classes"))
            }
            "--weather" => o.weather = true,
            "--range" => o.range = take(&mut i).parse().unwrap_or_else(|_| die("bad --range")),
            "--loss" => o.loss = take(&mut i).parse().unwrap_or_else(|_| die("bad --loss")),
            "--threshold" => {
                o.threshold = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| die("bad --threshold"))
            }
            "--cache" => o.cache = take(&mut i).parse().unwrap_or_else(|_| die("bad --cache")),
            "--seed" => o.seed = take(&mut i).parse().unwrap_or_else(|_| die("bad --seed")),
            "--help" | "-h" => {
                println!(
                    "usage: snapshot-repl [--nodes N] [--classes K] [--weather] [--range R] \
                     [--loss P] [--threshold T] [--cache BYTES] [--seed S]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }
    if !(0.0..=1.0).contains(&o.loss) {
        die("--loss must be a probability in [0, 1]");
    }
    if o.nodes == 0 {
        die("--nodes must be at least 1");
    }
    if o.range.is_nan() || o.range <= 0.0 {
        die("--range must be positive");
    }
    if o.threshold.is_nan() || o.threshold < 0.0 {
        die("--threshold must be non-negative");
    }
    o
}

fn die(msg: &str) -> ! {
    eprintln!("snapshot-repl: {msg}");
    std::process::exit(2);
}

fn build(o: &Options) -> SensorNetwork {
    let trace = if o.weather {
        weather(&WeatherConfig {
            n_nodes: o.nodes,
            window: 1000,
            ..WeatherConfig::paper_defaults(o.seed)
        })
        .unwrap_or_else(|e| die(&format!("weather generation failed: {e}")))
    } else {
        random_walk(&RandomWalkConfig {
            n_nodes: o.nodes,
            steps: 1000,
            ..RandomWalkConfig::paper_defaults(o.classes.min(o.nodes), o.seed)
        })
        .unwrap_or_else(|e| die(&format!("workload generation failed: {e}")))
        .trace
    };
    let topology = Topology::random_uniform(o.nodes, o.range, o.seed)
        .unwrap_or_else(|e| die(&format!("invalid deployment: {e}")));
    let mut sn = SensorNetwork::new(
        topology,
        LinkModel::iid_loss(o.loss),
        EnergyModel::default(),
        SnapshotConfig::paper(o.threshold, o.cache, o.seed),
        trace,
    );
    sn.train(0, 10);
    sn.set_time(99);
    let outcome = sn.elect();
    println!(
        "network up: {} nodes ({}), range {}, loss {:.0}%, T={} -> snapshot of {} representatives",
        o.nodes,
        if o.weather {
            "weather data"
        } else {
            "random-walk data"
        },
        o.range,
        o.loss * 100.0,
        o.threshold,
        outcome.snapshot_size,
    );
    sn
}

const HELP: &str = "\
queries:   any SQL, e.g. SELECT AVG(value) FROM sensors WHERE loc IN NORTH_EAST_QUADRANT USE SNAPSHOT
meta:      .help                 this text
           .snapshot             representatives and member counts
           .elect                run a full re-election
           .maintain             run one maintenance cycle
           .reconcile            clear spurious representative claims
           .kill <id>            fail a node (e.g. .kill N13 or .kill 13)
           .time [+]<t>          jump to (or advance by) a simulation time
           .stats                message counters by protocol phase
           .quit                 exit";

fn main() {
    let options = parse_args();
    let mut sn = build(&options);
    let catalog = RegionCatalog::with_quadrants();
    let sink = NodeId(0);

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sq> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            if !meta(&mut sn, rest) {
                break;
            }
            continue;
        }
        match parse(line).and_then(|q| plan(&q, &catalog)) {
            Ok(p) => {
                let exec = execute_plan(&mut sn, &p, sink);
                print!("{}", exec.render_last(&sn));
                if exec.epochs.len() > 1 {
                    println!(
                        "({} epochs; mean participants {:.1}, mean coverage {:.0}%)",
                        exec.epochs.len(),
                        exec.mean_participants(),
                        exec.mean_coverage() * 100.0
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Handle a meta-command; returns false to quit.
fn meta(sn: &mut SensorNetwork, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "help" => println!("{HELP}"),
        "quit" | "exit" => return false,
        "snapshot" => {
            let snapshot = sn.snapshot();
            let reps = snapshot.representatives();
            println!(
                "{} representatives at t={} (epoch {:?}):",
                reps.len(),
                sn.now(),
                sn.epoch()
            );
            for rep in reps {
                let members = snapshot.members_of(rep).len();
                let alive = if sn.net().is_alive(rep) {
                    ""
                } else {
                    " [DEAD]"
                };
                println!("  {rep}{alive}: {members} members");
            }
            let spurious = sn.spurious_representatives();
            if spurious > 0 {
                println!("  ({spurious} spurious claims; run .reconcile)");
            }
        }
        "elect" => {
            let o = sn.elect();
            println!(
                "elected: {} representatives, {} passive, {} rounds",
                o.snapshot_size, o.passive, o.refinement_rounds
            );
        }
        "maintain" => {
            let r = sn.maintain();
            println!(
                "maintained: {} heartbeats, {} drift, {} silent, {} fishing",
                r.heartbeats, r.drift_detected, r.silence_detected, r.fishing
            );
        }
        "reconcile" => {
            let r = sn.reconcile();
            println!(
                "reconciled: {} announcements, {} objections, {} corrected",
                r.announcements, r.objections, r.corrected
            );
        }
        "kill" => match parts.next().map(|t| t.trim_start_matches(['N', 'n'])) {
            Some(id_text) => match id_text.parse::<u32>() {
                Ok(raw) if (raw as usize) < sn.len() => {
                    sn.net_mut().kill(NodeId(raw));
                    println!("killed N{raw} ({} nodes alive)", sn.net().alive_count());
                }
                _ => println!("error: expected a node id below {}", sn.len()),
            },
            None => println!("usage: .kill <id>"),
        },
        "time" => match parts.next() {
            Some(t) if t.starts_with('+') => match t[1..].parse::<usize>() {
                Ok(dt) => {
                    sn.advance(dt);
                    println!("t = {}", sn.now());
                }
                Err(_) => println!("error: bad offset `{t}`"),
            },
            Some(t) => match t.parse::<usize>() {
                Ok(abs) => {
                    sn.set_time(abs);
                    println!("t = {}", sn.now());
                }
                Err(_) => println!("error: bad time `{t}`"),
            },
            None => println!("t = {}", sn.now()),
        },
        "stats" => {
            let stats = sn.stats();
            println!(
                "total sent {}, received {}, lost {}",
                stats.total_sent(),
                stats.total_received(),
                stats.total_lost()
            );
            for phase in stats.phases().collect::<Vec<_>>() {
                println!("  {phase}: {}", stats.phase_total(phase));
            }
        }
        other => println!("unknown command `.{other}` (try .help)"),
    }
    true
}
