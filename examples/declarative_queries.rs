//! A tour of the declarative query dialect (Section 3.1).
//!
//! Parses a variety of queries — aggregates, drill-through, named
//! regions, explicit geometry, sampling schedules — plans them against
//! a region catalog, and executes them on a live network, printing the
//! results the way an operator console would.
//!
//! Run with:
//! ```text
//! cargo run --release --example declarative_queries
//! ```

use snapshot_queries::core::{SensorNetwork, SnapshotConfig, SpatialPredicate};
use snapshot_queries::datagen::{correlated_field, CorrelatedFieldConfig};
use snapshot_queries::netsim::{EnergyModel, LinkModel, NodeId, Topology};
use snapshot_queries::query::{execute_plan, parse, plan, RegionCatalog};

fn main() {
    let seed = 11;
    let topology = Topology::random_uniform(60, 0.8, seed).expect("valid deployment");

    // A spatially-correlated temperature field: nearby nodes read
    // similar values (the scenario from the paper's introduction).
    let positions: Vec<_> = topology
        .node_ids()
        .map(|id| topology.position(id))
        .collect();
    let trace = correlated_field(
        &positions,
        &CorrelatedFieldConfig {
            steps: 300,
            seed,
            ..CorrelatedFieldConfig::default()
        },
    )
    .expect("valid field config");

    let mut network = SensorNetwork::new(
        topology,
        LinkModel::Perfect,
        EnergyModel::default(),
        SnapshotConfig::paper(0.5, 2048, seed),
        trace,
    );
    network.train(0, 10);
    network.set_time(50);
    let outcome = network.elect();
    println!(
        "network ready: 60 nodes, snapshot of {} representatives (T = 0.5)\n",
        outcome.snapshot_size
    );

    // Operators can define their own named regions next to the
    // built-in quadrants.
    let mut catalog = RegionCatalog::with_quadrants();
    catalog.define(
        "GREENHOUSE",
        SpatialPredicate::Circle {
            x: 0.3,
            y: 0.7,
            r: 0.2,
        },
    );

    let sink = NodeId(0);
    let queries = [
        "SELECT AVG(temperature) FROM sensors USE SNAPSHOT",
        "SELECT MIN(temperature) FROM sensors WHERE loc IN GREENHOUSE USE SNAPSHOT",
        "SELECT COUNT(*) FROM sensors WHERE loc IN NORTH_EAST_QUADRANT",
        "SELECT MAX(temperature) FROM sensors WHERE loc IN RECT(0.0, 0.0, 0.5, 0.5) USE SNAPSHOT",
        "SELECT loc, temperature FROM sensors WHERE loc IN CIRCLE(0.5, 0.5, 0.15) USE SNAPSHOT",
        "SELECT AVG(temperature) FROM sensors SAMPLE INTERVAL 5s FOR 1min USE SNAPSHOT",
    ];

    for sql in queries {
        println!("sql> {sql}");
        let query = match parse(sql) {
            Ok(q) => q,
            Err(e) => {
                println!("  parse error: {e}\n");
                continue;
            }
        };
        let planned = match plan(&query, &catalog) {
            Ok(p) => p,
            Err(e) => {
                println!("  plan error: {e}\n");
                continue;
            }
        };
        let exec = execute_plan(&mut network, &planned, sink);
        print!("{}", indent(&exec.render_last(&network)));
        if exec.epochs.len() > 1 {
            println!(
                "  ({} epochs; mean participants {:.1})",
                exec.epochs.len(),
                exec.mean_participants()
            );
        }
        println!();
    }

    // Errors are first-class: bad queries fail with positions.
    println!("sql> SELECT MEDIAN(temperature) FROM sensors");
    match parse("SELECT MEDIAN(temperature) FROM sensors") {
        Ok(_) => unreachable!("MEDIAN is not a supported aggregate"),
        Err(e) => println!("  {e}"),
    }
    println!("sql> SELECT * FROM sensors WHERE loc IN ATLANTIS");
    if let Ok(q) = parse("SELECT * FROM sensors WHERE loc IN ATLANTIS") {
        if let Err(e) = plan(&q, &catalog) {
            println!("  {e}");
        }
    }
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("  {l}\n")).collect()
}
