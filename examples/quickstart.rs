//! Quickstart: build a sensor network, train models, elect a
//! snapshot, and compare a snapshot query against a regular one.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use snapshot_queries::core::{
    Aggregate, QueryMode, SensorNetwork, SnapshotConfig, SnapshotQuery, SpatialPredicate,
};
use snapshot_queries::datagen::{random_walk, RandomWalkConfig};
use snapshot_queries::netsim::{EnergyModel, LinkModel, NodeId, Topology};

fn main() {
    // 1. A 100-node deployment in the unit square: the paper's
    //    canonical setup (range sqrt(2) = full connectivity, no loss).
    let seed = 42;
    let topology =
        Topology::random_uniform(100, std::f64::consts::SQRT_2, seed).expect("valid deployment");

    // 2. Synthetic measurements: 5 behavior classes of correlated
    //    random walks (Section 6.1 of the paper).
    let data = random_walk(&RandomWalkConfig::paper_defaults(5, seed)).expect("valid config");

    // 3. Wire it together with the paper's defaults: threshold T = 1,
    //    sse metric, 2 KB model cache per node.
    let config = SnapshotConfig::paper(1.0, 2048, seed);
    let mut network = SensorNetwork::new(
        topology,
        LinkModel::Perfect,
        EnergyModel::default(),
        config,
        data.trace,
    );

    // 4. Train: for the first 10 time units a query selects every
    //    node's value; neighbors overhear the answers and build linear
    //    models of each other.
    network.train(0, 10);
    println!("trained: every node now models its neighbors from overheard values");

    // 5. Elect the snapshot at t = 99 with a handful of messages per
    //    node (at most ~5; see Table 2 of the paper).
    network.set_time(99);
    let outcome = network.elect();
    println!(
        "election: {} representatives answer for {} passive nodes ({} refinement rounds)",
        outcome.snapshot_size, outcome.passive, outcome.refinement_rounds
    );

    // 6. Ask the same question both ways.
    let region = SpatialPredicate::window(0.5, 0.5, 0.5); // area 0.25 around the center
    let sink = NodeId(7);

    let regular = network.query(
        &SnapshotQuery::aggregate(region, Aggregate::Avg, QueryMode::Regular),
        sink,
    );
    let snapshot = network.query(
        &SnapshotQuery::aggregate(region, Aggregate::Avg, QueryMode::Snapshot),
        sink,
    );

    println!("\nAVG over the central region:");
    println!(
        "  regular : value {:>10.3}  participants {:>3}",
        regular.value.unwrap_or(f64::NAN),
        regular.participants
    );
    println!(
        "  snapshot: value {:>10.3}  participants {:>3}",
        snapshot.value.unwrap_or(f64::NAN),
        snapshot.participants
    );
    let saved = regular.participants.saturating_sub(snapshot.participants);
    println!(
        "  -> {} fewer nodes involved ({:.0}% saving), answer off by {:.4}",
        saved,
        100.0 * saved as f64 / regular.participants.max(1) as f64,
        (regular.value.unwrap_or(0.0) - snapshot.value.unwrap_or(0.0)).abs()
    );

    // 7. Representatives self-heal: kill the busiest one and run
    //    maintenance.
    let snapshot_view = network.snapshot();
    let rep = snapshot_view
        .representatives()
        .into_iter()
        .max_by_key(|&r| snapshot_view.members_of(r).len())
        .expect("snapshot has at least one representative");
    println!(
        "\nkilling representative {rep} (answers for {} nodes) ...",
        snapshot_view.members_of(rep).len()
    );
    network.net_mut().kill(rep);
    let report = network.maintain();
    println!(
        "maintenance: {} members noticed the silence and re-elected; snapshot is now {} nodes",
        report.silence_detected,
        network.snapshot_size()
    );
}
