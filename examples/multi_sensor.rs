//! Multi-sensor nodes: the Section 3 extension in action.
//!
//! "In practice there can be as many measurements as the number of
//! sensing elements installed on a node. Our framework will still
//! apply in such cases. The only necessary modification is the
//! addition of a measurement_id during model computation."
//!
//! Each node here senses both temperature and humidity; a single
//! byte-budgeted cache per node models both measurements of every
//! neighbor, and the model-aware admission policy arbitrates the
//! budget between them by expected accuracy benefit.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_sensor
//! ```

use snapshot_queries::core::{CacheConfig, MeasurementId, ModelCache};
use snapshot_queries::datagen::{correlated_field, CorrelatedFieldConfig};
use snapshot_queries::netsim::{NodeId, Topology};

const TEMPERATURE: MeasurementId = MeasurementId(0);
const HUMIDITY: MeasurementId = MeasurementId(1);

fn main() {
    let seed = 8;
    let topology = Topology::random_uniform(30, 0.6, seed).expect("valid deployment");
    let positions: Vec<_> = topology
        .node_ids()
        .map(|id| topology.position(id))
        .collect();

    // Two spatially-correlated fields over the same deployment:
    // temperature around 20, humidity around 60.
    let temperature = correlated_field(
        &positions,
        &CorrelatedFieldConfig {
            base: 20.0,
            steps: 60,
            seed,
            ..CorrelatedFieldConfig::default()
        },
    )
    .expect("valid field");
    let humidity = correlated_field(
        &positions,
        &CorrelatedFieldConfig {
            base: 60.0,
            cell_sigma: 1.0,
            steps: 60,
            seed: seed + 1,
            ..CorrelatedFieldConfig::default()
        },
    )
    .expect("valid field");

    // Node 0 snoops its neighbors' announcements for both quantities,
    // all into one 512-byte cache.
    let me = NodeId(0);
    let mut cache = ModelCache::new(CacheConfig {
        budget_bytes: 512,
        ..CacheConfig::default()
    });
    for t in 0..50 {
        let my_temp = temperature.value(me, t);
        for &neighbor in topology.neighbors(me) {
            cache.observe_measurement(
                (neighbor, TEMPERATURE),
                my_temp,
                temperature.value(neighbor, t),
            );
            cache.observe_measurement(
                (neighbor, HUMIDITY),
                my_temp, // models are projections of MY temperature reading
                humidity.value(neighbor, t),
            );
        }
    }

    println!(
        "node {me}: {} cache lines over {} neighbors x 2 measurements, {} of {} bytes used\n",
        cache.populated_lines(),
        topology.neighbors(me).len(),
        cache.used_bytes(),
        cache.config().budget_bytes,
    );

    // How good are the models at a later instant?
    let t = 55;
    let my_temp = temperature.value(me, t);
    println!("estimates at t={t} (my temperature reading: {my_temp:.2}):");
    println!(
        "{:>6}  {:>10} {:>10} {:>7}  {:>10} {:>10} {:>7}",
        "node", "temp est", "temp true", "err", "hum est", "hum true", "err"
    );
    let mut shown = 0;
    for &neighbor in topology.neighbors(me) {
        let (Some(te), Some(he)) = (
            cache.estimate_measurement((neighbor, TEMPERATURE), my_temp),
            cache.estimate_measurement((neighbor, HUMIDITY), my_temp),
        ) else {
            continue;
        };
        let tt = temperature.value(neighbor, t);
        let ht = humidity.value(neighbor, t);
        println!(
            "{:>6}  {:>10.2} {:>10.2} {:>7.3}  {:>10.2} {:>10.2} {:>7.3}",
            neighbor.to_string(),
            te,
            tt,
            (te - tt).abs(),
            he,
            ht,
            (he - ht).abs()
        );
        shown += 1;
        if shown == 8 {
            break;
        }
    }

    // The budget is shared: count pairs per measurement type.
    let (mut temp_pairs, mut hum_pairs) = (0usize, 0usize);
    for (key, line) in cache.lines() {
        match key.measurement {
            TEMPERATURE => temp_pairs += line.len(),
            HUMIDITY => hum_pairs += line.len(),
            _ => {}
        }
    }
    println!(
        "\nbudget split chosen by the model-aware policy: \
         {temp_pairs} temperature pairs vs {hum_pairs} humidity pairs"
    );
}
