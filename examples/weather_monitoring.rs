//! Weather monitoring: the paper's Section 6.3 scenario end-to-end,
//! driven through the declarative SQL dialect.
//!
//! A 100-node deployment measures wind speed; models are trained from
//! overheard answers; a snapshot is elected at a tight threshold; and
//! a continuous query (`SAMPLE INTERVAL ... FOR ...`) runs in both
//! modes, comparing accuracy and cost. The snapshot is then kept fresh
//! with periodic maintenance while the weather evolves.
//!
//! Run with:
//! ```text
//! cargo run --release --example weather_monitoring
//! ```

use snapshot_queries::core::{SensorNetwork, SnapshotConfig};
use snapshot_queries::datagen::{weather, WeatherConfig};
use snapshot_queries::netsim::{EnergyModel, LinkModel, NodeId, Topology};
use snapshot_queries::query::{execute_plan, parse, plan, RegionCatalog};

fn main() {
    let seed = 2002;

    // Wind-speed series calibrated to the statistics the paper reports
    // for the University of Washington station (mean ~5.8, variance
    // ~2.8): long calm plateaus, occasional storms.
    let trace = weather(&WeatherConfig {
        window: 1200,
        ..WeatherConfig::paper_defaults(seed)
    })
    .expect("valid weather config");

    let topology = Topology::random_uniform(100, 0.7, seed).expect("valid deployment");
    let config = SnapshotConfig::paper(0.1, 2048, seed); // tight threshold T = 0.1
    let mut network = SensorNetwork::new(
        topology,
        LinkModel::iid_loss(0.05), // 5% of messages vanish
        EnergyModel::default(),
        config,
        trace,
    );

    network.train(0, 10);
    network.set_time(99);
    let outcome = network.elect();
    println!(
        "snapshot elected at T=0.1 under 5% loss: {} representatives / 100 nodes",
        outcome.snapshot_size
    );

    // The paper's own example query, adapted to wind speed.
    let catalog = RegionCatalog::with_quadrants();
    for sql in [
        "SELECT AVG(wind_speed) FROM sensors \
         WHERE loc IN SOUTH_EAST_QUADRANT \
         SAMPLE INTERVAL 1s FOR 2min",
        "SELECT AVG(wind_speed) FROM sensors \
         WHERE loc IN SOUTH_EAST_QUADRANT \
         SAMPLE INTERVAL 1s FOR 2min \
         USE SNAPSHOT",
    ] {
        let query = parse(sql).expect("valid query");
        let mode = if query.use_snapshot {
            "snapshot"
        } else {
            "regular "
        };
        let p = plan(&query, &catalog).expect("plannable query");
        // Re-run from the same instant for a fair comparison.
        network.set_time(100);
        let exec = execute_plan(&mut network, &p, NodeId(0));
        let Some(last) = exec.last() else {
            continue;
        };
        println!(
            "{mode}: {} epochs, mean participants {:>5.1}, final AVG {:.3} (truth {:.3}), coverage {:.0}%",
            exec.epochs.len(),
            exec.mean_participants(),
            last.value.unwrap_or(f64::NAN),
            last.ground_truth.unwrap_or(f64::NAN),
            exec.mean_coverage() * 100.0
        );
    }

    // Let the weather evolve and keep the snapshot fresh: heartbeats
    // catch model drift (a storm rolling over a represented node) and
    // trigger local re-elections.
    println!("\nmaintaining the snapshot while the weather evolves:");
    for update in 1..=5 {
        network.advance(100);
        let report = network.maintain();
        println!(
            "  t={:>4}: snapshot {:>3} nodes ({} drift re-elections, {} lost-contact, {} fishing)",
            network.now(),
            network.snapshot_size(),
            report.drift_detected,
            report.silence_detected,
            report.fishing,
        );
        let _ = update;
    }

    // Spurious claims left behind by lost recalls are reconciled by
    // the announce/objection protocol (Section 3's timestamp filter).
    let before = network.spurious_representatives();
    let rec = network.reconcile();
    println!(
        "\nreconciliation: {} spurious claims before, {} corrected ({} announcements)",
        before, rec.corrected, rec.announcements
    );
}
