//! Network lifetime: the Figure 10 experiment as a runnable story.
//!
//! Two identical deployments with finite batteries (500 transmissions
//! each) answer the same stream of random spatial queries — one the
//! plain way (every matching node responds), one through the snapshot
//! (representatives answer for their members, paying for training,
//! election and maintenance). Watch the regular network collapse while
//! the snapshot network degrades gracefully.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_lifetime
//! ```

use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_queries::core::{
    Aggregate, CoverageTracker, QueryMode, SensorNetwork, SnapshotConfig, SnapshotQuery,
    SpatialPredicate,
};
use snapshot_queries::datagen::{random_walk, RandomWalkConfig};
use snapshot_queries::netsim::{EnergyModel, LinkModel, NodeId, Topology};

const BATTERY: f64 = 500.0;
const N_QUERIES: usize = 6000;
const BUCKET: usize = 500;
/// Energy-handoff check cadence: cheap (no messages unless a handoff
/// fires), so it runs often enough that a representative rotates out
/// before its battery dies.
const HANDOFF_EVERY: usize = 25;
/// Full maintenance (heartbeats) cadence: each heartbeat costs the
/// member a transmission, so this is only a safety net for orphans.
const MAINTENANCE_EVERY: usize = 1000;

fn build(seed: u64) -> SensorNetwork {
    let data = random_walk(&RandomWalkConfig {
        steps: 200,
        ..RandomWalkConfig::paper_defaults(1, seed)
    })
    .expect("valid config");
    let topology = Topology::random_uniform(100, 0.7, seed).expect("valid deployment");
    SensorNetwork::with_battery_capacity(
        topology,
        LinkModel::Perfect,
        EnergyModel::default(),
        BATTERY,
        SnapshotConfig::paper(1.0, 2048, seed),
        data.trace,
    )
}

fn drive(
    network: &mut SensorNetwork,
    mode: QueryMode,
    maintain: bool,
    seed: u64,
) -> CoverageTracker {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut tracker = CoverageTracker::new();
    for q in 0..N_QUERIES {
        let x: f64 = rng.random_f64();
        let y: f64 = rng.random_f64();
        let sink = NodeId(rng.random_range(0..100u32));
        let pred = SpatialPredicate::window(x, y, 0.316); // area ~0.1
        let res = network.query(&SnapshotQuery::aggregate(pred, Aggregate::Avg, mode), sink);
        tracker.record(res.rows.len(), res.targets);
        if maintain {
            if q % HANDOFF_EVERY == HANDOFF_EVERY - 1 {
                let _ = network.check_handoffs();
            }
            if q % MAINTENANCE_EVERY == MAINTENANCE_EVERY - 1 {
                let _ = network.maintain();
            }
        }
        network.advance(1);
    }
    tracker
}

fn main() {
    let seed = 7;

    // Regular run: energy goes only into answering queries.
    let mut regular = build(seed);
    let reg_cov = drive(&mut regular, QueryMode::Regular, false, seed);

    // Snapshot run: pay for training, the election, and periodic
    // maintenance — then let most of the network sleep. The Section
    // 5.1 energy handoff rotates exhausted representatives out before
    // they die, and drained nodes refuse candidacy.
    let mut snap = build(seed);
    snap.set_energy_handoff_fraction(0.12);
    snap.set_invite_learn_prob(0.0);
    snap.train(0, 10);
    snap.set_time(99);
    let outcome = snap.elect();
    println!(
        "snapshot of {} representatives elected; starting the query storm...\n",
        outcome.snapshot_size
    );
    let snap_cov = drive(&mut snap, QueryMode::Snapshot, true, seed);

    println!("coverage over the query stream (bucketed means):");
    println!("{:>12}  {:>10}  {:>10}", "queries", "regular", "snapshot");
    let mut from = 0;
    while from < N_QUERIES {
        let to = (from + BUCKET).min(N_QUERIES);
        println!(
            "{:>5}-{:<6}  {:>9.1}%  {:>9.1}%",
            from,
            to,
            reg_cov.window_mean(from, to) * 100.0,
            snap_cov.window_mean(from, to) * 100.0
        );
        from = to;
    }

    println!(
        "\narea under the curve: regular {:.3}, snapshot {:.3}",
        reg_cov.mean(),
        snap_cov.mean()
    );
    println!(
        "nodes still alive:    regular {:>3}, snapshot {:>3}",
        regular.net().alive_count(),
        snap.net().alive_count()
    );
    if let Some(q) = reg_cov.first_below(0.5) {
        println!("the regular network first fell below 50% coverage at query {q}");
    }
}
