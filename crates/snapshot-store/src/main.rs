//! `snapshot-store` — inspect and verify store files.
//!
//! ```text
//! snapshot-store verify <file>     run the consistency verifier
//! snapshot-store info <file>       list stored versions
//! snapshot-store rebuild <file> <out>   decode + re-encode (byte-identical)
//! ```
//!
//! Exit status: 0 clean, 1 usage error, 2 verification/decode failure.

use snapshot_store::{remediation, RecordKind, SnapshotStore, StoreError};
use std::process::ExitCode;

const USAGE: &str = "usage: snapshot-store <verify|info|rebuild> <file> [out]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(path)) => (cmd.as_str(), path.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    match cmd {
        "verify" => verify(path),
        "info" => info(path),
        "rebuild" => match args.get(2) {
            Some(out) => rebuild(path, out),
            None => {
                eprintln!("{USAGE}");
                ExitCode::from(1)
            }
        },
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::from(1)
        }
    }
}

/// Print a typed failure with its remediation hint; always exit 2.
fn fail(path: &str, e: &StoreError) -> ExitCode {
    eprintln!("{path}: {e}");
    eprintln!("  hint: {}", remediation(e));
    ExitCode::from(2)
}

fn verify(path: &str) -> ExitCode {
    let store = match SnapshotStore::open(path) {
        Ok(store) => store,
        Err(e) => return fail(path, &e),
    };
    match store.verify() {
        Ok(report) => {
            println!("{path}: {report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(path, &e),
    }
}

fn info(path: &str) -> ExitCode {
    let store = match SnapshotStore::open(path) {
        Ok(store) => store,
        Err(e) => return fail(path, &e),
    };
    for row in store.versions() {
        match row.kind {
            RecordKind::Checkpoint => {
                let tick = row.tick.unwrap_or(0);
                println!("version {:>4}  checkpoint   tick {tick}", row.version);
            }
            RecordKind::ServeState => {
                println!("version {:>4}  serve-state", row.version);
            }
        }
    }
    ExitCode::SUCCESS
}

fn rebuild(path: &str, out: &str) -> ExitCode {
    let store = match SnapshotStore::open(path) {
        Ok(store) => store,
        Err(e) => return fail(path, &e),
    };
    match store.rebuild(out) {
        Ok(rebuilt) => {
            println!("rebuilt {} blocks into {out}", rebuilt.versions().len());
            ExitCode::SUCCESS
        }
        Err(e) => fail(path, &e),
    }
}
