//! The cross-snapshot consistency verifier.
//!
//! [`SnapshotStore::verify`] decodes every block in full and checks
//! the properties that `open` (a structural scan) cannot: monotone
//! checkpoint ticks, a stable deployment shape, structurally valid
//! checkpoints, stored quality flags that match the accounting
//! recomputed from the node records, and serve-state records that
//! reference a checkpoint the store actually holds. Runnable as a
//! library API and as `snapshot-store verify <file>`; the
//! `store_corruption` test suite drives it over damaged files and the
//! oracle harness uses it as the gate after every rebuild.

use crate::error::StoreError;
use crate::format::RecordKind;
use crate::store::SnapshotStore;
use std::fmt;

/// What a clean [`SnapshotStore::verify`] pass found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks checked, checkpoints and serve states together.
    pub blocks: usize,
    /// Checkpoint blocks among them.
    pub checkpoints: usize,
    /// Serve-state blocks among them.
    pub serve_states: usize,
    /// Deployment size (0 for an empty store).
    pub nodes: usize,
    /// Ticks of the stored checkpoints, oldest first.
    pub ticks: Vec<u64>,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocks ok: {} checkpoints, {} serve states, {} nodes",
            self.blocks, self.checkpoints, self.serve_states, self.nodes
        )?;
        if let (Some(first), Some(last)) = (self.ticks.first(), self.ticks.last()) {
            write!(f, ", ticks {first}..={last}")?;
        }
        Ok(())
    }
}

/// A remediation hint for every way a store can fail, printed by the
/// `snapshot-store` CLI next to the error itself so the operator knows
/// what to do about the [`VerifyReport`] they did not get. The match is
/// deliberately exhaustive — no wildcard arm — and the
/// `store_error_coverage` pass in `cargo xtask analyze` pins every
/// `StoreError` variant to a handler here.
pub fn remediation(err: &StoreError) -> &'static str {
    match err {
        StoreError::Io { .. } => "check the path, permissions and free space, then retry",
        StoreError::BadHeader { .. } => {
            "this is not a snapshot store; point at a file written by SnapshotStore"
        }
        StoreError::Truncated { .. } => {
            "a torn final write; rebuild from the last sealed version to drop the partial block"
        }
        StoreError::BadRecord { .. } => {
            "the named line was edited or damaged; restore the file from a rebuilt replica"
        }
        StoreError::Corrupt { .. } => {
            "bit rot inside the named block; restore that version from a replica and re-verify"
        }
        StoreError::VersionOrder { .. } => {
            "blocks were reordered; rebuild from a store that still opens to re-sequence them"
        }
        StoreError::NoSuchVersion { .. } => {
            "that version was never written here; list what the store holds with `snapshot-store info`"
        }
        StoreError::NoVersionAsOf { .. } => {
            "the tick predates the first checkpoint; widen the window or checkpoint earlier"
        }
        StoreError::Inconsistent { .. } => {
            "the block decoded cleanly but contradicts the rest of the store; the detail names the cross-check"
        }
    }
}

impl SnapshotStore {
    /// Decode and cross-check every block. Returns a summary on
    /// success; the first violation aborts with a typed error naming
    /// the offending version.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport {
            blocks: 0,
            checkpoints: 0,
            serve_states: 0,
            nodes: 0,
            ticks: Vec::new(),
        };
        let mut shape: Option<(usize, u64)> = None; // (nodes, range bits)
        let mut last_tick: Option<u64> = None;
        let mut checkpoint_versions: Vec<u64> = Vec::new();

        let meta: Vec<_> = self.entry_meta().collect();
        for (version, kind, _tick, _offset) in meta {
            report.blocks += 1;
            match kind {
                RecordKind::Checkpoint => {
                    report.checkpoints += 1;
                    let decoded = self.decode_checkpoint_entry(version)?;
                    let cp = &decoded.state;
                    cp.validate().map_err(|e| StoreError::Inconsistent {
                        version,
                        detail: e.to_string(),
                    })?;
                    if let Some(prev) = last_tick {
                        if cp.tick < prev {
                            return Err(StoreError::Inconsistent {
                                version,
                                detail: format!(
                                    "tick {} regresses below version {}'s tick {prev}",
                                    cp.tick,
                                    checkpoint_versions.last().copied().unwrap_or(0)
                                ),
                            });
                        }
                    }
                    last_tick = Some(cp.tick);
                    let this_shape = (cp.nodes.len(), cp.range.to_bits());
                    match shape {
                        None => shape = Some(this_shape),
                        Some(s) if s != this_shape => {
                            return Err(StoreError::Inconsistent {
                                version,
                                detail: format!(
                                    "deployment shape changed: {} nodes, was {}",
                                    this_shape.0, s.0
                                ),
                            });
                        }
                        Some(_) => {}
                    }
                    let recomputed = cp.quality();
                    if decoded.stored_quality != recomputed {
                        return Err(StoreError::Inconsistent {
                            version,
                            detail: format!(
                                "stored quality flags {:?} disagree with recomputed {recomputed:?}",
                                decoded.stored_quality
                            ),
                        });
                    }
                    report.nodes = cp.nodes.len();
                    report.ticks.push(cp.tick);
                    checkpoint_versions.push(version);
                }
                RecordKind::ServeState => {
                    report.serve_states += 1;
                    let Some((_, rec)) = self.serve_state(version)? else {
                        return Err(StoreError::NoSuchVersion { version });
                    };
                    if !checkpoint_versions.contains(&rec.checkpoint_version) {
                        return Err(StoreError::Inconsistent {
                            version,
                            detail: format!(
                                "serve state references checkpoint {} which the store does not hold",
                                rec.checkpoint_version
                            ),
                        });
                    }
                    if rec
                        .pending
                        .iter()
                        .map(|p| p.ticket)
                        .chain(rec.active.iter().map(|a| a.ticket))
                        .any(|t| t >= rec.next_ticket)
                    {
                        return Err(StoreError::Inconsistent {
                            version,
                            detail: "a persisted ticket is not below next_ticket".into(),
                        });
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ServeStateRecord;
    use snapshot_core::cache::CachePolicy;
    use snapshot_core::checkpoint::{CheckpointState, NodeCheckpoint};
    use snapshot_core::sensor::Mode;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "snapshot-store-verify-{}-{name}",
            std::process::id()
        ));
        p
    }

    fn checkpoint(tick: u64) -> CheckpointState {
        CheckpointState {
            tick,
            epoch: 1,
            range: 1.0,
            positions: vec![(0.0, 0.0), (0.5, 0.5)],
            neighbors: vec![vec![1], vec![0]],
            alive: vec![true, true],
            values: vec![1.0, 2.0],
            budget_bytes: 2048,
            pair_bytes: 8,
            policy: CachePolicy::ModelAware,
            nodes: vec![
                NodeCheckpoint {
                    mode: Mode::Active,
                    rep_of: None,
                    represents: vec![(1, 1)],
                    forced_active: false,
                    refusing_invites: false,
                    rr_after: None,
                    lines: Vec::new(),
                },
                NodeCheckpoint {
                    mode: Mode::Passive,
                    rep_of: Some((0, 1)),
                    represents: Vec::new(),
                    forced_active: false,
                    refusing_invites: false,
                    rr_after: None,
                    lines: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn clean_stores_verify_with_a_summary() {
        let path = tmp("clean");
        let mut store = SnapshotStore::create(&path).unwrap();
        store.append_checkpoint(&checkpoint(40)).unwrap();
        store.append_checkpoint(&checkpoint(50)).unwrap();
        store
            .append_serve_state(&ServeStateRecord {
                checkpoint_version: 2,
                next_ticket: 1,
                stats: [0; 10],
                pending: Vec::new(),
                active: Vec::new(),
            })
            .unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.checkpoints, 2);
        assert_eq!(report.serve_states, 1);
        assert_eq!(report.ticks, vec![40, 50]);
        assert_eq!(
            report.to_string(),
            "3 blocks ok: 2 checkpoints, 1 serve states, 2 nodes, ticks 40..=50"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn doctored_quality_flags_fail_verification() {
        let path = tmp("quality");
        let mut store = SnapshotStore::create(&path).unwrap();
        store.append_checkpoint(&checkpoint(40)).unwrap();

        // Hand-edit the quality line and re-seal the block so the CRC
        // passes but the flags no longer match the node records.
        let text = fs::read_to_string(&path).unwrap();
        let doctored: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("quality ") {
                    l.replace("active 1", "active 2")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let mut body = String::new();
        for line in &doctored {
            if line.starts_with("end ") || line == crate::format::HEADER {
                continue;
            }
            body.push_str(line);
            body.push('\n');
        }
        let crc = crate::format::crc32(body.as_bytes());
        let mut out = String::new();
        out.push_str(crate::format::HEADER);
        out.push('\n');
        out.push_str(&body);
        out.push_str(&format!("end 1 crc {crc:08x}\n"));
        fs::write(&path, out).unwrap();

        let store = SnapshotStore::open(&path).unwrap();
        match store.verify() {
            Err(StoreError::Inconsistent { version: 1, detail }) => {
                assert!(detail.contains("quality"), "detail: {detail}");
            }
            other => panic!("expected quality inconsistency, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }
}
