//! Typed store errors.
//!
//! Every way a store file can disappoint — missing, misheadered,
//! truncated, bit-flipped, out of order, or internally inconsistent —
//! maps to a distinct [`StoreError`] variant carrying the offending
//! version, byte offset or line number, so callers (and the
//! `snapshot-store verify` CLI) can report precisely what broke and
//! where without ever panicking. `cargo xtask analyze` enforces that
//! each variant has both a construction site and a handler in the
//! verify/replay paths (`store_error_coverage`).

use std::fmt;

/// Everything that can go wrong opening, decoding, verifying or
/// rebuilding a snapshot store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"read"`, `"create"`, `"write"`).
        op: &'static str,
        /// The OS error rendered to text (kept as a string so the
        /// error type stays `Clone + PartialEq`).
        detail: String,
    },
    /// The file does not start with the `snapshot-store v1` header.
    BadHeader {
        /// The first line actually found (possibly empty).
        found: String,
    },
    /// The file ends mid-block: a `version`/`serve` opener with no
    /// matching `end` line.
    Truncated {
        /// Byte offset of the block that never ended.
        offset: u64,
    },
    /// A line inside a block failed to parse.
    BadRecord {
        /// 1-based line number in the file.
        line: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A block's CRC-32 does not match its contents — a bit flip or
    /// torn write inside an otherwise well-formed block.
    Corrupt {
        /// The version the damaged block claims to hold.
        version: u64,
        /// Byte offset of the block in the file.
        offset: u64,
    },
    /// Block versions are not strictly increasing.
    VersionOrder {
        /// The out-of-order version.
        version: u64,
        /// The version that preceded it.
        previous: u64,
    },
    /// A lookup named a version the store does not hold.
    NoSuchVersion {
        /// The requested version.
        version: u64,
    },
    /// An `AS OF` lookup found no checkpoint at or before the tick.
    NoVersionAsOf {
        /// The requested tick.
        tick: u64,
    },
    /// A block decoded cleanly but contradicts the rest of the store
    /// (quality flags vs. recomputed accounting, a serve record naming
    /// a missing checkpoint, deployment shape drift, …).
    Inconsistent {
        /// The version of the offending block.
        version: u64,
        /// What the cross-check found.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "store {op} failed: {detail}"),
            StoreError::BadHeader { found } => {
                write!(f, "not a snapshot store (header line {found:?})")
            }
            StoreError::Truncated { offset } => {
                write!(f, "store truncated inside the block at byte {offset}")
            }
            StoreError::BadRecord { line, detail } => {
                write!(f, "malformed record at line {line}: {detail}")
            }
            StoreError::Corrupt { version, offset } => {
                write!(
                    f,
                    "version {version} corrupt (crc mismatch at byte {offset})"
                )
            }
            StoreError::VersionOrder { version, previous } => {
                write!(
                    f,
                    "version {version} appears after {previous}: versions must increase"
                )
            }
            StoreError::NoSuchVersion { version } => {
                write!(f, "no version {version} in the store")
            }
            StoreError::NoVersionAsOf { tick } => {
                write!(f, "no checkpoint at or before tick {tick}")
            }
            StoreError::Inconsistent { version, detail } => {
                write!(f, "version {version} inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Io {
                    op: "read",
                    detail: "denied".into(),
                },
                "store read failed: denied",
            ),
            (
                StoreError::BadHeader {
                    found: "hello".into(),
                },
                "not a snapshot store (header line \"hello\")",
            ),
            (
                StoreError::Truncated { offset: 17 },
                "store truncated inside the block at byte 17",
            ),
            (
                StoreError::BadRecord {
                    line: 4,
                    detail: "no tick".into(),
                },
                "malformed record at line 4: no tick",
            ),
            (
                StoreError::Corrupt {
                    version: 3,
                    offset: 120,
                },
                "version 3 corrupt (crc mismatch at byte 120)",
            ),
            (
                StoreError::VersionOrder {
                    version: 2,
                    previous: 5,
                },
                "version 2 appears after 5: versions must increase",
            ),
            (
                StoreError::NoSuchVersion { version: 9 },
                "no version 9 in the store",
            ),
            (
                StoreError::NoVersionAsOf { tick: 40 },
                "no checkpoint at or before tick 40",
            ),
            (
                StoreError::Inconsistent {
                    version: 1,
                    detail: "coverage drift".into(),
                },
                "version 1 inconsistent: coverage drift",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }
}
