//! The append-only store: an ordered sequence of CRC-guarded blocks
//! on disk, plus the time-travel lookups the query layer plans
//! against.

use crate::error::StoreError;
use crate::format::{self, DecodedCheckpoint, RecordKind, ServeStateRecord, HEADER};
use snapshot_core::checkpoint::CheckpointState;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One block as it sits in the file: enough structure to answer
/// `versions`/`as_of` lookups without re-decoding, plus the exact
/// block text so appends and rebuilds are byte-stable.
#[derive(Debug, Clone)]
struct Entry {
    version: u64,
    kind: RecordKind,
    /// Checkpoint tick (`None` for serve-state blocks).
    tick: Option<u64>,
    /// Byte offset of the block's first line in the file.
    offset: u64,
    /// The block text, `end` line included.
    text: String,
}

/// A summary row of one stored block, as reported by
/// [`SnapshotStore::versions`] and the `snapshot-store info` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionInfo {
    /// Monotone block version.
    pub version: u64,
    /// Block kind.
    pub kind: RecordKind,
    /// Checkpoint tick (`None` for serve-state blocks).
    pub tick: Option<u64>,
}

/// An append-only, versioned snapshot store backed by one file.
///
/// Writes go through [`append_checkpoint`] / [`append_serve_state`],
/// which extend the file in place; reads decode on demand. The store
/// never rewrites existing blocks, so a crash mid-append can at worst
/// truncate the tail — which [`open`] and [`verify`] report as a
/// typed [`StoreError`], never a panic.
///
/// [`append_checkpoint`]: SnapshotStore::append_checkpoint
/// [`append_serve_state`]: SnapshotStore::append_serve_state
/// [`open`]: SnapshotStore::open
/// [`verify`]: SnapshotStore::verify
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    path: PathBuf,
    entries: Vec<Entry>,
    next_version: u64,
}

impl SnapshotStore {
    /// Create a fresh store at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut contents = String::with_capacity(HEADER.len() + 1);
        contents.push_str(HEADER);
        contents.push('\n');
        write_file(&path, contents.as_bytes(), "create")?;
        Ok(SnapshotStore {
            path,
            entries: Vec::new(),
            next_version: 1,
        })
    }

    /// Open an existing store, checking the header, every block's
    /// structure and CRC, and the version ordering.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let contents = fs::read_to_string(&path).map_err(|e| StoreError::Io {
            op: "read",
            detail: e.to_string(),
        })?;
        let entries = scan(&contents)?;
        let next_version = entries.last().map_or(1, |e| e.version + 1);
        Ok(SnapshotStore {
            path,
            entries,
            next_version,
        })
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a checkpoint, returning the version it was assigned.
    pub fn append_checkpoint(&mut self, cp: &CheckpointState) -> Result<u64, StoreError> {
        let version = self.next_version;
        if let Some(last_tick) = self.entries.iter().rev().find_map(|e| e.tick) {
            if cp.tick < last_tick {
                return Err(StoreError::Inconsistent {
                    version,
                    detail: format!(
                        "checkpoint tick {} regresses below stored tick {last_tick}",
                        cp.tick
                    ),
                });
            }
        }
        let text = format::encode_checkpoint(version, cp);
        self.append_block(Entry {
            version,
            kind: RecordKind::Checkpoint,
            tick: Some(cp.tick),
            offset: 0, // fixed up in append_block
            text,
        })?;
        Ok(version)
    }

    /// Append a query-service state record, returning its version.
    pub fn append_serve_state(&mut self, rec: &ServeStateRecord) -> Result<u64, StoreError> {
        if !self
            .entries
            .iter()
            .any(|e| e.kind == RecordKind::Checkpoint && e.version == rec.checkpoint_version)
        {
            return Err(StoreError::NoSuchVersion {
                version: rec.checkpoint_version,
            });
        }
        let version = self.next_version;
        let text = format::encode_serve_state(version, rec);
        self.append_block(Entry {
            version,
            kind: RecordKind::ServeState,
            tick: None,
            offset: 0,
            text,
        })?;
        Ok(version)
    }

    fn append_block(&mut self, mut entry: Entry) -> Result<(), StoreError> {
        entry.offset = self
            .entries
            .last()
            .map_or(HEADER.len() as u64 + 1, |e| e.offset + e.text.len() as u64);
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::Io {
                op: "write",
                detail: e.to_string(),
            })?;
        file.write_all(entry.text.as_bytes())
            .map_err(|e| StoreError::Io {
                op: "write",
                detail: e.to_string(),
            })?;
        self.next_version = entry.version + 1;
        self.entries.push(entry);
        Ok(())
    }

    /// Summary rows for every stored block, in file order.
    pub fn versions(&self) -> Vec<VersionInfo> {
        self.entries
            .iter()
            .map(|e| VersionInfo {
                version: e.version,
                kind: e.kind,
                tick: e.tick,
            })
            .collect()
    }

    /// Decode the checkpoint stored under `version`.
    pub fn checkpoint(&self, version: u64) -> Result<CheckpointState, StoreError> {
        self.decode_checkpoint_entry(version).map(|d| d.state)
    }

    /// The latest checkpoint whose tick is `<= tick` — the `AS OF`
    /// lookup.
    pub fn checkpoint_as_of(&self, tick: u64) -> Result<(u64, CheckpointState), StoreError> {
        let hit = self
            .entries
            .iter()
            .rev()
            .find(|e| e.kind == RecordKind::Checkpoint && e.tick.is_some_and(|t| t <= tick))
            .ok_or(StoreError::NoVersionAsOf { tick })?;
        Ok((hit.version, self.checkpoint(hit.version)?))
    }

    /// Every checkpoint with `from <= tick <= to`, oldest first — the
    /// `BETWEEN` lookup. Empty when no version falls in the window.
    pub fn checkpoints_between(
        &self,
        from: u64,
        to: u64,
    ) -> Result<Vec<(u64, CheckpointState)>, StoreError> {
        let mut out = Vec::new();
        for e in &self.entries {
            if e.kind == RecordKind::Checkpoint && e.tick.is_some_and(|t| from <= t && t <= to) {
                out.push((e.version, self.checkpoint(e.version)?));
            }
        }
        Ok(out)
    }

    /// The newest checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Result<Option<(u64, CheckpointState)>, StoreError> {
        match self
            .entries
            .iter()
            .rev()
            .find(|e| e.kind == RecordKind::Checkpoint)
        {
            None => Ok(None),
            Some(e) => Ok(Some((e.version, self.checkpoint(e.version)?))),
        }
    }

    /// The newest serve-state record, if any — what restart recovery
    /// rehydrates from.
    pub fn latest_serve_state(&self) -> Result<Option<(u64, ServeStateRecord)>, StoreError> {
        let newest = self
            .entries
            .iter()
            .rev()
            .find(|e| e.kind == RecordKind::ServeState)
            .map(|e| e.version);
        match newest {
            None => Ok(None),
            Some(version) => self.serve_state(version),
        }
    }

    /// Decode the serve-state record stored under `version`, `None`
    /// when that version holds a checkpoint instead.
    pub fn serve_state(&self, version: u64) -> Result<Option<(u64, ServeStateRecord)>, StoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.version == version)
            .ok_or(StoreError::NoSuchVersion { version })?;
        if entry.kind != RecordKind::ServeState {
            return Ok(None);
        }
        let lines = body_lines(entry);
        let (decoded_version, rec) = format::decode_serve_state(&line_refs(&lines))?;
        if decoded_version != version {
            return Err(StoreError::Inconsistent {
                version,
                detail: "block version disagrees with its end line".into(),
            });
        }
        Ok(Some((version, rec)))
    }

    /// Decode every block and re-encode it to a fresh store at
    /// `path`. Because the codec is canonical (`encode ∘ decode` is
    /// the identity, asserted by the round-trip tests), the rebuilt
    /// file is byte-identical to the source — the property the
    /// `store_roundtrip` suite checks over hundreds of random
    /// deployments.
    pub fn rebuild(&self, path: impl AsRef<Path>) -> Result<SnapshotStore, StoreError> {
        let mut out = SnapshotStore::create(path)?;
        for e in &self.entries {
            match e.kind {
                RecordKind::Checkpoint => {
                    let decoded = self.decode_checkpoint_entry(e.version)?;
                    out.append_checkpoint(&decoded.state)?;
                }
                RecordKind::ServeState => {
                    let lines = body_lines(e);
                    let (_, rec) = format::decode_serve_state(&line_refs(&lines))?;
                    out.append_serve_state(&rec)?;
                }
            }
        }
        Ok(out)
    }

    pub(crate) fn decode_checkpoint_entry(
        &self,
        version: u64,
    ) -> Result<DecodedCheckpoint, StoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.version == version && e.kind == RecordKind::Checkpoint)
            .ok_or(StoreError::NoSuchVersion { version })?;
        let lines = body_lines(entry);
        let decoded = format::decode_checkpoint(&line_refs(&lines))?;
        if decoded.version != version {
            return Err(StoreError::Inconsistent {
                version,
                detail: "block version disagrees with its end line".into(),
            });
        }
        Ok(decoded)
    }

    pub(crate) fn entry_meta(
        &self,
    ) -> impl Iterator<Item = (u64, RecordKind, Option<u64>, u64)> + '_ {
        self.entries
            .iter()
            .map(|e| (e.version, e.kind, e.tick, e.offset))
    }
}

/// Block body lines (the `end` line dropped) with their 1-based file
/// line numbers, reconstructed from the block's offset.
fn body_lines(entry: &Entry) -> Vec<(u64, String)> {
    // Line numbers restart from the block: the header is line 1, and
    // blocks know their byte offset, not their line offset. For error
    // reporting we recount from the block start; offsets stay exact.
    let all: Vec<&str> = entry.text.lines().collect();
    all.iter()
        .take(all.len().saturating_sub(1))
        .enumerate()
        .map(|(i, l)| (i as u64 + 1, (*l).to_string()))
        .collect()
}

fn line_refs(owned: &[(u64, String)]) -> Vec<(u64, &str)> {
    owned.iter().map(|&(n, ref l)| (n, l.as_str())).collect()
}

fn write_file(path: &Path, bytes: &[u8], op: &'static str) -> Result<(), StoreError> {
    fs::write(path, bytes).map_err(|e| StoreError::Io {
        op,
        detail: e.to_string(),
    })
}

/// Structural scan of a whole file: header, block boundaries, CRCs
/// and version ordering. Full per-line decoding happens lazily.
fn scan(contents: &str) -> Result<Vec<Entry>, StoreError> {
    let mut rest = contents;
    let mut offset = 0u64;
    let mut line_no = 0u64;

    let header = take_line(&mut rest, &mut offset, &mut line_no);
    match header {
        Some(line) if line == HEADER => {}
        other => {
            return Err(StoreError::BadHeader {
                found: other.unwrap_or_default().to_string(),
            })
        }
    }

    let mut entries: Vec<Entry> = Vec::new();
    loop {
        let block_offset = offset;
        let Some(opener) = take_line(&mut rest, &mut offset, &mut line_no) else {
            break;
        };
        let opener_line = line_no;
        let mut words = opener.split_whitespace();
        let kind = match words.next() {
            Some("version") => RecordKind::Checkpoint,
            Some("serve") => RecordKind::ServeState,
            _ => {
                return Err(StoreError::BadRecord {
                    line: opener_line,
                    detail: format!("expected a version or serve line, got {opener:?}"),
                })
            }
        };
        let version =
            words
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or(StoreError::BadRecord {
                    line: opener_line,
                    detail: "block opener has no version".into(),
                })?;
        let tick = match kind {
            RecordKind::Checkpoint => {
                let mut tick = None;
                let mut saw_tick_word = false;
                for w in words {
                    if saw_tick_word {
                        tick = w.parse::<u64>().ok();
                        break;
                    }
                    saw_tick_word = w == "tick";
                }
                Some(tick.ok_or(StoreError::BadRecord {
                    line: opener_line,
                    detail: "checkpoint opener has no tick".into(),
                })?)
            }
            RecordKind::ServeState => None,
        };

        // Walk to the end line, accumulating the body for the CRC.
        let body_start = block_offset;
        let mut end_line: Option<&str> = None;
        let mut body_end = offset;
        while let Some(line) = take_line(&mut rest, &mut offset, &mut line_no) {
            if line.starts_with("end ") {
                end_line = Some(line);
                break;
            }
            body_end = offset;
        }
        let Some(end_line) = end_line else {
            return Err(StoreError::Truncated {
                offset: block_offset,
            });
        };
        let end_line_no = line_no;

        let mut end_words = end_line.split_whitespace();
        let _ = end_words.next(); // "end"
        let end_version =
            end_words
                .next()
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or(StoreError::BadRecord {
                    line: end_line_no,
                    detail: "end line has no version".into(),
                })?;
        let crc_stored = match (end_words.next(), end_words.next()) {
            (Some("crc"), Some(hex)) => {
                u32::from_str_radix(hex, 16).map_err(|_| StoreError::BadRecord {
                    line: end_line_no,
                    detail: format!("bad crc {hex:?}"),
                })?
            }
            _ => {
                return Err(StoreError::BadRecord {
                    line: end_line_no,
                    detail: "end line has no crc".into(),
                })
            }
        };
        if end_version != version {
            return Err(StoreError::BadRecord {
                line: end_line_no,
                detail: format!("end line names version {end_version}, block is {version}"),
            });
        }

        let body = contents
            .get(body_start as usize..body_end as usize)
            .unwrap_or_default();
        if format::crc32(body.as_bytes()) != crc_stored {
            return Err(StoreError::Corrupt {
                version,
                offset: block_offset,
            });
        }

        if let Some(prev) = entries.last() {
            if version <= prev.version {
                return Err(StoreError::VersionOrder {
                    version,
                    previous: prev.version,
                });
            }
        }

        let text = contents
            .get(body_start as usize..offset as usize)
            .unwrap_or_default()
            .to_string();
        entries.push(Entry {
            version,
            kind,
            tick,
            offset: block_offset,
            text,
        });
    }
    Ok(entries)
}

/// Pop one `\n`-terminated line off `rest`, advancing the byte offset
/// and line counter. A final unterminated fragment counts as a line
/// (its missing terminator surfaces later as a truncation or CRC
/// error).
fn take_line<'a>(rest: &mut &'a str, offset: &mut u64, line_no: &mut u64) -> Option<&'a str> {
    if rest.is_empty() {
        return None;
    }
    *line_no += 1;
    match rest.split_once('\n') {
        Some((line, tail)) => {
            *offset += line.len() as u64 + 1;
            *rest = tail;
            Some(line)
        }
        None => {
            let line = *rest;
            *offset += line.len() as u64;
            *rest = "";
            Some(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ActiveRecord, PendingRecord};
    use snapshot_core::cache::CachePolicy;
    use snapshot_core::checkpoint::NodeCheckpoint;
    use snapshot_core::sensor::Mode;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("snapshot-store-test-{}-{name}", std::process::id()));
        p
    }

    fn small_checkpoint(tick: u64) -> CheckpointState {
        CheckpointState {
            tick,
            epoch: 1,
            range: 1.0,
            positions: vec![(0.0, 0.0), (0.5, 0.5)],
            neighbors: vec![vec![1], vec![0]],
            alive: vec![true, true],
            values: vec![1.0, 2.0],
            budget_bytes: 2048,
            pair_bytes: 8,
            policy: CachePolicy::ModelAware,
            nodes: vec![
                NodeCheckpoint {
                    mode: Mode::Active,
                    rep_of: None,
                    represents: vec![(1, 1)],
                    forced_active: false,
                    refusing_invites: false,
                    rr_after: None,
                    lines: Vec::new(),
                },
                NodeCheckpoint {
                    mode: Mode::Passive,
                    rep_of: Some((0, 1)),
                    represents: Vec::new(),
                    forced_active: false,
                    refusing_invites: false,
                    rr_after: None,
                    lines: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let path = tmp("roundtrip");
        let mut store = SnapshotStore::create(&path).unwrap();
        let v1 = store.append_checkpoint(&small_checkpoint(40)).unwrap();
        let v2 = store.append_checkpoint(&small_checkpoint(50)).unwrap();
        assert_eq!((v1, v2), (1, 2));

        let reopened = SnapshotStore::open(&path).unwrap();
        assert_eq!(reopened.versions().len(), 2);
        assert_eq!(reopened.checkpoint(1).unwrap(), small_checkpoint(40));
        assert_eq!(reopened.checkpoint(2).unwrap(), small_checkpoint(50));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn as_of_picks_the_latest_version_at_or_before_the_tick() {
        let path = tmp("asof");
        let mut store = SnapshotStore::create(&path).unwrap();
        store.append_checkpoint(&small_checkpoint(40)).unwrap();
        store.append_checkpoint(&small_checkpoint(50)).unwrap();
        store.append_checkpoint(&small_checkpoint(60)).unwrap();

        assert_eq!(store.checkpoint_as_of(55).unwrap().0, 2);
        assert_eq!(store.checkpoint_as_of(50).unwrap().0, 2);
        assert_eq!(store.checkpoint_as_of(1000).unwrap().0, 3);
        assert_eq!(
            store.checkpoint_as_of(39),
            Err(StoreError::NoVersionAsOf { tick: 39 })
        );
        let between = store.checkpoints_between(45, 60).unwrap();
        assert_eq!(
            between.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(store.checkpoints_between(0, 10).unwrap().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn serve_state_round_trips_and_requires_its_checkpoint() {
        let path = tmp("serve");
        let mut store = SnapshotStore::create(&path).unwrap();
        let rec = ServeStateRecord {
            checkpoint_version: 1,
            next_ticket: 3,
            stats: [2, 0, 2, 1, 1, 0, 2, 0, 2, 1],
            pending: vec![PendingRecord {
                ticket: 2,
                tenant: 0,
                submitted_at: 41,
                sql: "select avg(value) from region".into(),
            }],
            active: vec![ActiveRecord {
                due: 45,
                ticket: 1,
                tenant: 0,
                submitted_at: 40,
                first_result_at: None,
                interval: 5,
                remaining: 3,
                epochs_total: 3,
                sql: "select min(value) from region".into(),
            }],
        };
        // No checkpoint yet: the reference must be rejected.
        assert_eq!(
            store.append_serve_state(&rec),
            Err(StoreError::NoSuchVersion { version: 1 })
        );
        store.append_checkpoint(&small_checkpoint(40)).unwrap();
        store.append_serve_state(&rec).unwrap();

        let reopened = SnapshotStore::open(&path).unwrap();
        let (version, got) = reopened.latest_serve_state().unwrap().unwrap();
        assert_eq!(version, 2);
        assert_eq!(got, rec);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let src = tmp("rebuild-src");
        let dst = tmp("rebuild-dst");
        let mut store = SnapshotStore::create(&src).unwrap();
        store.append_checkpoint(&small_checkpoint(40)).unwrap();
        store.append_checkpoint(&small_checkpoint(50)).unwrap();
        store
            .append_serve_state(&ServeStateRecord {
                checkpoint_version: 2,
                next_ticket: 1,
                stats: [0; 10],
                pending: Vec::new(),
                active: Vec::new(),
            })
            .unwrap();

        store.rebuild(&dst).unwrap();
        assert_eq!(fs::read(&src).unwrap(), fs::read(&dst).unwrap());
        let _ = fs::remove_file(&src);
        let _ = fs::remove_file(&dst);
    }

    #[test]
    fn bit_flips_and_truncation_surface_as_typed_errors() {
        let path = tmp("damage");
        let mut store = SnapshotStore::create(&path).unwrap();
        store.append_checkpoint(&small_checkpoint(40)).unwrap();
        let clean = fs::read(&path).unwrap();

        // Flip a byte inside the block body.
        let mut bytes = clean.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match SnapshotStore::open(&path) {
            Err(StoreError::Corrupt { version: 1, .. }) | Err(StoreError::BadRecord { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }

        // Truncate mid-block: deep enough to lose the whole end line.
        let cut = clean.len() - 25;
        fs::write(&path, &clean[..cut]).unwrap();
        match SnapshotStore::open(&path) {
            Err(StoreError::Truncated { .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }

        // Wrong header.
        fs::write(&path, b"not a store\n").unwrap();
        match SnapshotStore::open(&path) {
            Err(StoreError::BadHeader { found }) => assert_eq!(found, "not a store"),
            other => panic!("expected bad header, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn regressing_ticks_are_rejected() {
        let path = tmp("tick-order");
        let mut store = SnapshotStore::create(&path).unwrap();
        store.append_checkpoint(&small_checkpoint(50)).unwrap();
        match store.append_checkpoint(&small_checkpoint(40)) {
            Err(StoreError::Inconsistent { version: 2, detail }) => {
                assert!(detail.contains("regresses"), "detail: {detail}");
            }
            other => panic!("expected Inconsistent, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }
}
