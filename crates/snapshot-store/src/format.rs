//! The `snapshot-store v1` on-disk format.
//!
//! Line-oriented UTF-8 text, chosen over a binary layout because the
//! workspace is offline (no serde) and the corpus is small: a file is
//! the header line `snapshot-store v1` followed by append-only
//! *blocks*, each opened by a `version …` (checkpoint) or `serve …`
//! (serve-state) line and closed by `end <version> crc <hex8>`. The
//! CRC-32 (IEEE, bitwise) covers every byte of the block before the
//! `end` line, so a bit flip or torn write is pinned to its block.
//!
//! Determinism rules that make `encode ∘ decode` the identity — and
//! therefore make [`rebuild`](crate::SnapshotStore::rebuild)
//! byte-identical:
//!
//! * every `f64` is its IEEE bit pattern as 16 lowercase hex digits
//!   (`{:016x}` of `to_bits`), never a decimal rendering;
//! * adjacency lists are written verbatim, in stored order (BFS tree
//!   construction is neighbor-order-sensitive);
//! * free-text fields (SQL) are percent-escaped so each record stays
//!   one line of whitespace-separated tokens.

use crate::error::StoreError;
use snapshot_core::cache::CachePolicy;
use snapshot_core::checkpoint::{CheckpointState, LineCheckpoint, NodeCheckpoint, QualitySummary};
use snapshot_core::model::SuffStats;
use snapshot_core::sensor::Mode;
use std::fmt::Write as _;

/// First line of every store file.
pub const HEADER: &str = "snapshot-store v1";

/// What a block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A full deployment checkpoint.
    Checkpoint,
    /// A query-service state record for crash recovery.
    ServeState,
}

/// The pending half of a persisted query-service image: one submitted
/// query still waiting in its tenant queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRecord {
    /// Ticket issued at submission.
    pub ticket: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Tick of submission.
    pub submitted_at: u64,
    /// The normalized query text (re-planned on recovery).
    pub sql: String,
}

/// One admitted query with epochs still owed. Plans are *not*
/// persisted: the planner is pure, so recovery re-derives the scan,
/// coalescing key and aggregate by re-planning `sql`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveRecord {
    /// Tick the next epoch is due at.
    pub due: u64,
    /// Ticket issued at submission.
    pub ticket: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Tick of submission.
    pub submitted_at: u64,
    /// Tick the first epoch was served at, if any yet.
    pub first_result_at: Option<u64>,
    /// Ticks between sampling epochs.
    pub interval: u64,
    /// Epochs still owed.
    pub remaining: u64,
    /// Epochs promised in total.
    pub epochs_total: u64,
    /// The normalized query text.
    pub sql: String,
}

/// A frozen image of a `QueryService` at an admitted-query boundary,
/// paired with the checkpoint version of the deployment it was
/// serving. Restart recovery rehydrates the deployment from that
/// checkpoint and the service from this record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStateRecord {
    /// The checkpoint version this service state belongs to.
    pub checkpoint_version: u64,
    /// Next ticket the service would issue.
    pub next_ticket: u64,
    /// The ten `ServeStats` counters, in declaration order:
    /// submitted, rejected, admitted, plan_cache_hits,
    /// plan_cache_misses, plan_errors, scans, coalesced,
    /// epochs_served, completed.
    pub stats: [u64; 10],
    /// Queued-but-unadmitted queries, in tenant-then-queue order.
    pub pending: Vec<PendingRecord>,
    /// Admitted queries with epochs owed, in due-bucket order.
    pub active: Vec<ActiveRecord>,
}

/// A checkpoint block decoded in full: the state plus the quality
/// flags *as stored*, which [`verify`](crate::SnapshotStore::verify)
/// cross-checks against [`CheckpointState::quality`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedCheckpoint {
    /// Block version.
    pub version: u64,
    /// The deployment image.
    pub state: CheckpointState,
    /// Quality flags as persisted (not recomputed).
    pub stored_quality: QualitySummary,
}

// --- primitives ---------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, bitwise — no table, the corpus is
/// tiny and this keeps the implementation obviously correct).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for b in text.bytes() {
        let literal = b.is_ascii_alphanumeric()
            || matches!(
                b,
                b'_' | b'.'
                    | b'('
                    | b')'
                    | b'*'
                    | b','
                    | b'<'
                    | b'>'
                    | b'='
                    | b'!'
                    | b'-'
                    | b'/'
                    | b'+'
            );
        if literal {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02x}");
        }
    }
    out
}

/// Parse context for one line: line number plus the scalar parsers,
/// all reporting [`StoreError::BadRecord`] with that line.
struct FieldCtx {
    line: u64,
}

impl FieldCtx {
    fn bad(&self, detail: impl Into<String>) -> StoreError {
        StoreError::BadRecord {
            line: self.line,
            detail: detail.into(),
        }
    }

    fn unescape(&self, token: &str) -> Result<String, StoreError> {
        let bytes = token.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut rest = bytes;
        while let Some((&b, tail)) = rest.split_first() {
            if b == b'%' {
                let hex = tail
                    .get(..2)
                    .ok_or_else(|| self.bad("dangling percent escape"))?;
                let text =
                    std::str::from_utf8(hex).map_err(|_| self.bad("non-ascii percent escape"))?;
                let value =
                    u8::from_str_radix(text, 16).map_err(|_| self.bad("bad percent escape"))?;
                out.push(value);
                rest = tail.get(2..).unwrap_or(&[]);
            } else {
                out.push(b);
                rest = tail;
            }
        }
        String::from_utf8(out).map_err(|_| self.bad("escaped text is not utf-8"))
    }

    fn f64_bits(&self, token: &str) -> Result<f64, StoreError> {
        if token.len() != 16 {
            return Err(self.bad(format!("expected 16 hex digits, got {token:?}")));
        }
        u64::from_str_radix(token, 16)
            .map(f64::from_bits)
            .map_err(|_| self.bad(format!("bad f64 bits {token:?}")))
    }

    fn u64(&self, token: &str) -> Result<u64, StoreError> {
        token
            .parse::<u64>()
            .map_err(|_| self.bad(format!("expected integer, got {token:?}")))
    }

    fn u32(&self, token: &str) -> Result<u32, StoreError> {
        token
            .parse::<u32>()
            .map_err(|_| self.bad(format!("expected integer, got {token:?}")))
    }

    fn pair(&self, raw: &str, sep: char) -> Result<(u32, u64), StoreError> {
        let (a, b) = raw
            .split_once(sep)
            .ok_or_else(|| self.bad(format!("expected <id>{sep}<n>, got {raw:?}")))?;
        Ok((self.u32(a)?, self.u64(b)?))
    }
}

/// A sequential token reader over one line.
struct Tokens<'a> {
    ctx: FieldCtx,
    iter: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn new(line_no: u64, text: &'a str) -> Self {
        Tokens {
            ctx: FieldCtx { line: line_no },
            iter: text.split_whitespace(),
        }
    }

    fn bad(&self, detail: impl Into<String>) -> StoreError {
        self.ctx.bad(detail)
    }

    fn next(&mut self, what: &str) -> Result<&'a str, StoreError> {
        self.iter
            .next()
            .ok_or_else(|| self.ctx.bad(format!("missing {what}")))
    }

    fn literal(&mut self, word: &str) -> Result<(), StoreError> {
        let got = self.next(word)?;
        if got == word {
            Ok(())
        } else {
            Err(self.ctx.bad(format!("expected {word:?}, got {got:?}")))
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let tok = self.next(what)?;
        self.ctx.u64(tok)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let tok = self.next(what)?;
        self.ctx.u32(tok)
    }

    fn f64_bits(&mut self, what: &str) -> Result<f64, StoreError> {
        let tok = self.next(what)?;
        self.ctx.f64_bits(tok)
    }

    fn bool01(&mut self, what: &str) -> Result<bool, StoreError> {
        match self.next(what)? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(self.ctx.bad(format!("expected 0 or 1, got {other:?}"))),
        }
    }

    fn escaped(&mut self, what: &str) -> Result<String, StoreError> {
        let tok = self.next(what)?;
        self.ctx.unescape(tok)
    }

    /// `<id><sep><n>` or the `-` none-marker.
    fn pair_or_dash(&mut self, what: &str, sep: char) -> Result<Option<(u32, u64)>, StoreError> {
        let raw = self.next(what)?;
        if raw == "-" {
            return Ok(None);
        }
        self.ctx.pair(raw, sep).map(Some)
    }

    /// Consume the rest of the line as `<id>@<epoch>` pairs.
    fn rest_pairs(mut self) -> Result<Vec<(u32, u64)>, StoreError> {
        let mut out = Vec::new();
        for raw in self.iter.by_ref() {
            out.push(self.ctx.pair(raw, '@')?);
        }
        Ok(out)
    }

    fn done(self) -> Result<(), StoreError> {
        let mut iter = self.iter;
        match iter.next() {
            None => Ok(()),
            Some(extra) => Err(self.ctx.bad(format!("unexpected trailing token {extra:?}"))),
        }
    }
}

/// A sequential line reader over one block's lines (the `end` line
/// excluded), each paired with its 1-based file line number.
struct Cursor<'a> {
    lines: &'a [(u64, &'a str)],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(lines: &'a [(u64, &'a str)]) -> Self {
        Cursor { lines, pos: 0 }
    }

    fn next(&mut self, what: &str) -> Result<Tokens<'a>, StoreError> {
        match self.lines.get(self.pos) {
            Some(&(line_no, text)) => {
                self.pos += 1;
                Ok(Tokens::new(line_no, text))
            }
            None => Err(StoreError::BadRecord {
                line: self.lines.last().map_or(0, |&(n, _)| n),
                detail: format!("block ends before {what}"),
            }),
        }
    }

    /// First word of the next line, without consuming it.
    fn peek_word(&self) -> Option<&'a str> {
        self.lines
            .get(self.pos)
            .and_then(|&(_, text)| text.split_whitespace().next())
    }

    fn finish(self) -> Result<(), StoreError> {
        match self.lines.get(self.pos) {
            None => Ok(()),
            Some(&(line_no, _)) => Err(StoreError::BadRecord {
                line: line_no,
                detail: "unexpected line after the block's last record".into(),
            }),
        }
    }
}

// --- checkpoint encoding ------------------------------------------------

fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Active => "active",
        Mode::Passive => "passive",
        Mode::Undefined => "undefined",
    }
}

fn policy_label(policy: CachePolicy) -> &'static str {
    match policy {
        CachePolicy::ModelAware => "model-aware",
        CachePolicy::RoundRobin => "round-robin",
    }
}

fn push_node(out: &mut String, index: usize, nc: &NodeCheckpoint) {
    let _ = write!(out, "node {index} mode {}", mode_label(nc.mode));
    match nc.rep_of {
        Some((rep, epoch)) => {
            let _ = write!(out, " rep {rep}@{epoch}");
        }
        None => out.push_str(" rep -"),
    }
    let _ = write!(
        out,
        " forced {} refusing {}",
        u8::from(nc.forced_active),
        u8::from(nc.refusing_invites)
    );
    match nc.rr_after {
        Some((node, m)) => {
            let _ = write!(out, " rr {node}:{m}");
        }
        None => out.push_str(" rr -"),
    }
    out.push('\n');
    out.push_str("members");
    for &(member, epoch) in &nc.represents {
        let _ = write!(out, " {member}@{epoch}");
    }
    out.push('\n');
    for lc in &nc.lines {
        push_line(out, lc);
    }
}

fn push_line(out: &mut String, lc: &LineCheckpoint) {
    let _ = write!(
        out,
        "line {} {} n {} stats {} {} {} {} {} pairs",
        lc.node,
        lc.measurement,
        lc.stats.n,
        hex_f64(lc.stats.sx),
        hex_f64(lc.stats.sy),
        hex_f64(lc.stats.sxy),
        hex_f64(lc.stats.sxx),
        hex_f64(lc.stats.syy),
    );
    for &(x, y) in &lc.pairs {
        let _ = write!(out, " {} {}", hex_f64(x), hex_f64(y));
    }
    out.push('\n');
}

/// Encode one checkpoint block, `end` line included.
pub fn encode_checkpoint(version: u64, cp: &CheckpointState) -> String {
    let n = cp.nodes.len();
    let mut body = String::new();
    let _ = writeln!(
        body,
        "version {version} tick {} epoch {} nodes {n}",
        cp.tick, cp.epoch
    );
    let _ = writeln!(
        body,
        "config range {} budget {} pair {} policy {}",
        hex_f64(cp.range),
        cp.budget_bytes,
        cp.pair_bytes,
        policy_label(cp.policy)
    );
    for &(x, y) in &cp.positions {
        let _ = writeln!(body, "pos {} {}", hex_f64(x), hex_f64(y));
    }
    for adj in &cp.neighbors {
        let _ = write!(body, "adj {}", adj.len());
        for &id in adj {
            let _ = write!(body, " {id}");
        }
        body.push('\n');
    }
    body.push_str("alive");
    for &a in &cp.alive {
        let _ = write!(body, " {}", u8::from(a));
    }
    body.push('\n');
    body.push_str("values");
    for &v in &cp.values {
        let _ = write!(body, " {}", hex_f64(v));
    }
    body.push('\n');
    for (i, nc) in cp.nodes.iter().enumerate() {
        push_node(&mut body, i, nc);
    }
    let q = cp.quality();
    let _ = writeln!(
        body,
        "quality alive {} active {} passive {} undefined {} stale {} coverage {}",
        q.alive,
        q.active,
        q.passive,
        q.undefined,
        q.stale_links,
        hex_f64(q.coverage)
    );
    seal(body, version)
}

/// Encode one serve-state block, `end` line included.
pub fn encode_serve_state(version: u64, rec: &ServeStateRecord) -> String {
    let mut body = String::new();
    let _ = writeln!(
        body,
        "serve {version} checkpoint {} next_ticket {}",
        rec.checkpoint_version, rec.next_ticket
    );
    body.push_str("sstats");
    for counter in rec.stats {
        let _ = write!(body, " {counter}");
    }
    body.push('\n');
    for p in &rec.pending {
        let _ = writeln!(
            body,
            "pending {} {} {} {}",
            p.ticket,
            p.tenant,
            p.submitted_at,
            escape(&p.sql)
        );
    }
    for a in &rec.active {
        let first = match a.first_result_at {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            body,
            "active {} {} {} {} {} {} {} {} {}",
            a.due,
            a.ticket,
            a.tenant,
            a.submitted_at,
            first,
            a.interval,
            a.remaining,
            a.epochs_total,
            escape(&a.sql)
        );
    }
    seal(body, version)
}

fn seal(mut body: String, version: u64) -> String {
    let crc = crc32(body.as_bytes());
    let _ = writeln!(body, "end {version} crc {crc:08x}");
    body
}

// --- decoding -----------------------------------------------------------

/// Decode a checkpoint block previously produced by
/// [`encode_checkpoint`]. `lines` excludes the `end` line.
pub fn decode_checkpoint(lines: &[(u64, &str)]) -> Result<DecodedCheckpoint, StoreError> {
    let mut cursor = Cursor::new(lines);

    let mut tok = cursor.next("the version line")?;
    tok.literal("version")?;
    let version = tok.u64("version")?;
    tok.literal("tick")?;
    let tick = tok.u64("tick")?;
    tok.literal("epoch")?;
    let epoch = tok.u64("epoch")?;
    tok.literal("nodes")?;
    let n = tok.u64("node count")? as usize;
    tok.done()?;

    let mut tok = cursor.next("the config line")?;
    tok.literal("config")?;
    tok.literal("range")?;
    let range = tok.f64_bits("range")?;
    tok.literal("budget")?;
    let budget_bytes = tok.u64("budget")?;
    tok.literal("pair")?;
    let pair_bytes = tok.u64("pair bytes")?;
    tok.literal("policy")?;
    let policy = match tok.next("policy")? {
        "model-aware" => CachePolicy::ModelAware,
        "round-robin" => CachePolicy::RoundRobin,
        other => return Err(tok.bad(format!("unknown cache policy {other:?}"))),
    };
    tok.done()?;

    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let mut tok = cursor.next("a pos line")?;
        tok.literal("pos")?;
        let x = tok.f64_bits("x")?;
        let y = tok.f64_bits("y")?;
        tok.done()?;
        positions.push((x, y));
    }

    let mut neighbors = Vec::with_capacity(n);
    for _ in 0..n {
        let mut tok = cursor.next("an adj line")?;
        tok.literal("adj")?;
        let k = tok.u64("neighbor count")? as usize;
        let mut adj = Vec::with_capacity(k);
        for _ in 0..k {
            adj.push(tok.u32("neighbor id")?);
        }
        tok.done()?;
        neighbors.push(adj);
    }

    let mut tok = cursor.next("the alive line")?;
    tok.literal("alive")?;
    let mut alive = Vec::with_capacity(n);
    for _ in 0..n {
        alive.push(tok.bool01("alive flag")?);
    }
    tok.done()?;

    let mut tok = cursor.next("the values line")?;
    tok.literal("values")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(tok.f64_bits("value")?);
    }
    tok.done()?;

    let mut nodes: Vec<NodeCheckpoint> = Vec::with_capacity(n);
    for i in 0..n {
        let mut tok = cursor.next("a node line")?;
        tok.literal("node")?;
        let index = tok.u64("node index")? as usize;
        if index != i {
            return Err(tok.bad(format!("expected node {i}, got {index}")));
        }
        tok.literal("mode")?;
        let mode = match tok.next("mode")? {
            "active" => Mode::Active,
            "passive" => Mode::Passive,
            "undefined" => Mode::Undefined,
            other => return Err(tok.bad(format!("unknown mode {other:?}"))),
        };
        tok.literal("rep")?;
        let rep_of = tok.pair_or_dash("rep", '@')?;
        tok.literal("forced")?;
        let forced_active = tok.bool01("forced flag")?;
        tok.literal("refusing")?;
        let refusing_invites = tok.bool01("refusing flag")?;
        tok.literal("rr")?;
        let rr_line = tok.bad("rr measurement out of range");
        let rr_after = match tok.pair_or_dash("rr marker", ':')? {
            None => None,
            Some((node, m)) => Some((node, u8::try_from(m).map_err(|_| rr_line)?)),
        };
        tok.done()?;

        let mut tok = cursor.next("a members line")?;
        tok.literal("members")?;
        let represents = tok.rest_pairs()?;

        let mut cache_lines = Vec::new();
        while cursor.peek_word() == Some("line") {
            let mut tok = cursor.next("a line record")?;
            tok.literal("line")?;
            let node = tok.u32("line neighbor")?;
            let meas = tok.u32("line measurement")?;
            let measurement =
                u8::try_from(meas).map_err(|_| tok.bad("line measurement out of range"))?;
            tok.literal("n")?;
            let count = tok.u32("pair count")?;
            tok.literal("stats")?;
            let stats = SuffStats {
                n: count,
                sx: tok.f64_bits("sx")?,
                sy: tok.f64_bits("sy")?,
                sxy: tok.f64_bits("sxy")?,
                sxx: tok.f64_bits("sxx")?,
                syy: tok.f64_bits("syy")?,
            };
            tok.literal("pairs")?;
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let x = tok.f64_bits("pair x")?;
                let y = tok.f64_bits("pair y")?;
                pairs.push((x, y));
            }
            tok.done()?;
            cache_lines.push(LineCheckpoint {
                node,
                measurement,
                stats,
                pairs,
            });
        }

        nodes.push(NodeCheckpoint {
            mode,
            rep_of,
            represents,
            forced_active,
            refusing_invites,
            rr_after,
            lines: cache_lines,
        });
    }

    let mut tok = cursor.next("the quality line")?;
    tok.literal("quality")?;
    tok.literal("alive")?;
    let q_alive = tok.u64("alive count")? as usize;
    tok.literal("active")?;
    let q_active = tok.u64("active count")? as usize;
    tok.literal("passive")?;
    let q_passive = tok.u64("passive count")? as usize;
    tok.literal("undefined")?;
    let q_undefined = tok.u64("undefined count")? as usize;
    tok.literal("stale")?;
    let q_stale = tok.u64("stale count")? as usize;
    tok.literal("coverage")?;
    let q_coverage = tok.f64_bits("coverage")?;
    tok.done()?;
    cursor.finish()?;

    Ok(DecodedCheckpoint {
        version,
        state: CheckpointState {
            tick,
            epoch,
            range,
            positions,
            neighbors,
            alive,
            values,
            budget_bytes,
            pair_bytes,
            policy,
            nodes,
        },
        stored_quality: QualitySummary {
            nodes: n,
            alive: q_alive,
            active: q_active,
            passive: q_passive,
            undefined: q_undefined,
            stale_links: q_stale,
            coverage: q_coverage,
        },
    })
}

/// Decode a serve-state block previously produced by
/// [`encode_serve_state`]. `lines` excludes the `end` line.
pub fn decode_serve_state(lines: &[(u64, &str)]) -> Result<(u64, ServeStateRecord), StoreError> {
    let mut cursor = Cursor::new(lines);

    let mut tok = cursor.next("the serve line")?;
    tok.literal("serve")?;
    let version = tok.u64("version")?;
    tok.literal("checkpoint")?;
    let checkpoint_version = tok.u64("checkpoint version")?;
    tok.literal("next_ticket")?;
    let next_ticket = tok.u64("next ticket")?;
    tok.done()?;

    let mut tok = cursor.next("the sstats line")?;
    tok.literal("sstats")?;
    let mut stats = [0u64; 10];
    for counter in &mut stats {
        *counter = tok.u64("stats counter")?;
    }
    tok.done()?;

    let mut pending = Vec::new();
    while cursor.peek_word() == Some("pending") {
        let mut tok = cursor.next("a pending record")?;
        tok.literal("pending")?;
        let ticket = tok.u64("ticket")?;
        let tenant = tok.u32("tenant")?;
        let submitted_at = tok.u64("submission tick")?;
        let sql = tok.escaped("sql")?;
        tok.done()?;
        pending.push(PendingRecord {
            ticket,
            tenant,
            submitted_at,
            sql,
        });
    }

    let mut active = Vec::new();
    while cursor.peek_word() == Some("active") {
        let mut tok = cursor.next("an active record")?;
        tok.literal("active")?;
        let due = tok.u64("due tick")?;
        let ticket = tok.u64("ticket")?;
        let tenant = tok.u32("tenant")?;
        let submitted_at = tok.u64("submission tick")?;
        let first_result_at = match tok.next("first-result tick")? {
            "-" => None,
            raw => Some(
                raw.parse::<u64>()
                    .map_err(|_| tok.bad(format!("bad first-result tick {raw:?}")))?,
            ),
        };
        let interval = tok.u64("interval")?;
        let remaining = tok.u64("remaining epochs")?;
        let epochs_total = tok.u64("total epochs")?;
        let sql = tok.escaped("sql")?;
        tok.done()?;
        active.push(ActiveRecord {
            due,
            ticket,
            tenant,
            submitted_at,
            first_result_at,
            interval,
            remaining,
            epochs_total,
            sql,
        });
    }
    cursor.finish()?;

    Ok((
        version,
        ServeStateRecord {
            checkpoint_version,
            next_ticket,
            stats,
            pending,
            active,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn escaping_round_trips_sql_text() {
        let sql = "select avg(value) from region where value > 10.5 sample interval 5s for 20s";
        let escaped = escape(sql);
        assert!(!escaped.contains(' '), "escaped text must be one token");
        let ctx = FieldCtx { line: 1 };
        assert_eq!(
            ctx.unescape(&escaped)
                .unwrap_or_else(|e| panic!("unescape failed: {e}")),
            sql
        );
    }

    #[test]
    fn f64_bits_survive_negative_zero_and_nan_payloads() {
        let ctx = FieldCtx { line: 1 };
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, -f64::MIN_POSITIVE] {
            let coded = hex_f64(v);
            let back = ctx
                .f64_bits(&coded)
                .unwrap_or_else(|e| panic!("decode failed: {e}"));
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    fn tiny_checkpoint() -> CheckpointState {
        CheckpointState {
            tick: 40,
            epoch: 1,
            range: 1.5,
            positions: vec![(0.0, 0.0), (1.0, 0.25)],
            neighbors: vec![vec![1], vec![0]],
            alive: vec![true, true],
            values: vec![10.0, 10.5],
            budget_bytes: 2048,
            pair_bytes: 8,
            policy: CachePolicy::ModelAware,
            nodes: vec![
                NodeCheckpoint {
                    mode: Mode::Active,
                    rep_of: None,
                    represents: vec![(1, 1)],
                    forced_active: false,
                    refusing_invites: false,
                    rr_after: None,
                    lines: vec![LineCheckpoint {
                        node: 1,
                        measurement: 0,
                        stats: SuffStats {
                            n: 2,
                            sx: 20.5,
                            sy: 20.0,
                            sxy: 205.0,
                            sxx: 210.25,
                            syy: 200.0,
                        },
                        pairs: vec![(10.0, 9.75), (10.5, 10.25)],
                    }],
                },
                NodeCheckpoint {
                    mode: Mode::Passive,
                    rep_of: Some((0, 1)),
                    represents: Vec::new(),
                    forced_active: false,
                    refusing_invites: true,
                    rr_after: Some((1, 0)),
                    lines: Vec::new(),
                },
            ],
        }
    }

    fn block_lines(text: &str) -> Vec<(u64, String)> {
        text.lines()
            .enumerate()
            .map(|(i, l)| (i as u64 + 1, l.to_string()))
            .collect()
    }

    #[test]
    fn checkpoint_blocks_round_trip_bit_exactly() {
        let cp = tiny_checkpoint();
        let text = encode_checkpoint(3, &cp);
        let owned = block_lines(&text);
        let body: Vec<(u64, &str)> = owned
            .iter()
            .take(owned.len() - 1) // drop the end line
            .map(|&(n, ref l)| (n, l.as_str()))
            .collect();
        let decoded = decode_checkpoint(&body).unwrap_or_else(|e| panic!("decode failed: {e}"));
        assert_eq!(decoded.version, 3);
        assert_eq!(decoded.state, cp);
        assert_eq!(decoded.stored_quality, cp.quality());
        // Canonical: re-encoding the decoded state reproduces the bytes.
        assert_eq!(encode_checkpoint(3, &decoded.state), text);
    }

    #[test]
    fn serve_blocks_round_trip_bit_exactly() {
        let rec = ServeStateRecord {
            checkpoint_version: 3,
            next_ticket: 7,
            stats: [6, 1, 5, 2, 3, 0, 4, 1, 9, 4],
            pending: vec![PendingRecord {
                ticket: 6,
                tenant: 2,
                submitted_at: 41,
                sql: "select avg(value) from region".into(),
            }],
            active: vec![ActiveRecord {
                due: 45,
                ticket: 5,
                tenant: 1,
                submitted_at: 40,
                first_result_at: Some(41),
                interval: 5,
                remaining: 2,
                epochs_total: 4,
                sql: "select avg(value) from region sample interval 5s for 20s".into(),
            }],
        };
        let text = encode_serve_state(4, &rec);
        let owned = block_lines(&text);
        let body: Vec<(u64, &str)> = owned
            .iter()
            .take(owned.len() - 1)
            .map(|&(n, ref l)| (n, l.as_str()))
            .collect();
        let (version, decoded) =
            decode_serve_state(&body).unwrap_or_else(|e| panic!("decode failed: {e}"));
        assert_eq!(version, 4);
        assert_eq!(decoded, rec);
        assert_eq!(encode_serve_state(4, &decoded), text);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let cp = tiny_checkpoint();
        let text = encode_checkpoint(1, &cp);
        let mut owned = block_lines(&text);
        owned.truncate(owned.len() - 1);
        // Damage the config line (line 2).
        owned[1].1 = "config range zz budget 2048 pair 8 policy model-aware".into();
        let body: Vec<(u64, &str)> = owned.iter().map(|&(n, ref l)| (n, l.as_str())).collect();
        match decode_checkpoint(&body) {
            Err(StoreError::BadRecord { line: 2, .. }) => {}
            other => panic!("expected BadRecord at line 2, got {other:?}"),
        }
    }
}
