//! # snapshot-store
//!
//! Persistence for the snapshot-queries reproduction: an append-only,
//! versioned store of deployment checkpoints
//! ([`snapshot_core::checkpoint::CheckpointState`]) and query-service
//! images ([`ServeStateRecord`]), in a deterministic hand-rolled text
//! format (no serde — the workspace builds offline).
//!
//! * [`format`] — the `snapshot-store v1` block format: f64s as IEEE
//!   bit patterns, CRC-32 per block, percent-escaped SQL. The codec
//!   is canonical (`encode ∘ decode` is the identity), which is what
//!   makes [`SnapshotStore::rebuild`] byte-identical.
//! * [`SnapshotStore`] — create/open/append plus the time-travel
//!   lookups the query layer's `AS OF <tick>` and
//!   `BETWEEN <t1> AND <t2>` clauses plan against.
//! * [`SnapshotStore::verify`] / [`VerifyReport`] — the
//!   cross-snapshot consistency verifier (monotone ticks, stable
//!   deployment shape, quality flags matching recomputed accounting),
//!   also runnable as `snapshot-store verify <file>`.
//! * [`StoreError`] — typed failures naming the offending version,
//!   byte offset or line; nothing in this crate panics on bad input.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod format;
pub mod store;
pub mod verify;

pub use error::StoreError;
pub use format::{ActiveRecord, DecodedCheckpoint, PendingRecord, RecordKind, ServeStateRecord};
pub use store::{SnapshotStore, VersionInfo};
pub use verify::{remediation, VerifyReport};
