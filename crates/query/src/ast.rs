//! Abstract syntax of the query dialect.

use snapshot_core::{Aggregate, Comparison};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// What the query returns.
    pub projection: Projection,
    /// The table named in FROM (always `sensors` in this dialect, but
    /// preserved for error messages).
    pub table: String,
    /// WHERE conditions, conjoined with AND.
    pub conditions: Vec<Condition>,
    /// Optional sampling schedule.
    pub sample: Option<Sample>,
    /// Whether `USE SNAPSHOT` was present.
    pub use_snapshot: bool,
    /// Optional time-travel clause (`AS OF` / `BETWEEN`), answered
    /// from the persistent snapshot store instead of the live network.
    pub history: Option<History>,
}

/// A time-travel clause: the query runs against stored snapshot
/// versions rather than the live deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum History {
    /// `AS OF <tick>`: the latest stored version at or before the
    /// tick.
    AsOf(u64),
    /// `BETWEEN <t1> AND <t2>`: every stored version whose tick falls
    /// in the inclusive window, oldest first.
    Between(u64, u64),
}

/// The SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// `SELECT col1, col2, ...` (drill-through).
    Columns(Vec<String>),
    /// `SELECT AGG(col)` (aggregate query).
    Aggregate {
        /// The aggregate function.
        agg: Aggregate,
        /// The aggregated column.
        column: String,
    },
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `loc IN <region>`
    Spatial(Region),
    /// `<column> <op> <number>`
    Value {
        /// The measurement column.
        column: String,
        /// The comparison operator.
        op: Comparison,
        /// The literal to compare against.
        literal: f64,
    },
}

/// A spatial region in the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// `RECT(x0, y0, x1, y1)`
    Rect {
        /// Left edge.
        x0: f64,
        /// Bottom edge.
        y0: f64,
        /// Right edge.
        x1: f64,
        /// Top edge.
        y1: f64,
    },
    /// `CIRCLE(x, y, r)`
    Circle {
        /// Center x.
        x: f64,
        /// Center y.
        y: f64,
        /// Radius.
        r: f64,
    },
    /// A named region resolved by the planner's catalog
    /// (e.g. `SOUTH_EAST_QUADRANT`).
    Named(String),
}

/// `SAMPLE INTERVAL <d> [FOR <d>]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Ticks between samples (1 tick = 1 second).
    pub interval_ticks: u64,
    /// Total duration in ticks (`None` = a single sample).
    pub for_ticks: Option<u64>,
}

impl Sample {
    /// Number of sampling epochs this schedule produces.
    pub fn epochs(&self) -> u64 {
        match self.for_ticks {
            None => 1,
            Some(total) => (total / self.interval_ticks).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_epoch_arithmetic() {
        // 1s interval for 5min = 300 epochs (the paper's example).
        let s = Sample {
            interval_ticks: 1,
            for_ticks: Some(300),
        };
        assert_eq!(s.epochs(), 300);
        // No FOR clause: one shot.
        let s = Sample {
            interval_ticks: 10,
            for_ticks: None,
        };
        assert_eq!(s.epochs(), 1);
        // Duration shorter than the interval: still one sample.
        let s = Sample {
            interval_ticks: 60,
            for_ticks: Some(30),
        };
        assert_eq!(s.epochs(), 1);
    }
}
