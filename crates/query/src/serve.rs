//! The snapshot query *service*: concurrent multi-query serving over
//! one live network.
//!
//! The paper's snapshot exists so that *many* queries can be answered
//! cheaply from representatives. This module is the serving layer that
//! cashes that promise in: a [`QueryService`] admits thousands of
//! concurrent declarative queries — one-shot and `SAMPLE INTERVAL …
//! FOR …` subscriptions — against a single [`SensorNetwork`], and
//! drives them tick by tick with
//!
//! * a **plan cache** keyed on normalized query text
//!   ([`normalize`]), with per-lookup hit/miss telemetry
//!   (`plan_cache` events in the trace);
//! * **shared-scan batching**: queries whose plans address the same
//!   representative set (same spatial predicate, mode, value filter
//!   and routing preference — everything but the aggregate) are
//!   coalesced into **one** drill-through scan per tick, and each
//!   member's aggregate is folded from the shared rows. This is exact,
//!   not approximate: the core executor itself computes
//!   `value = aggregate.apply(rows)`, so folding the same rows
//!   reproduces byte-identical answers (see DESIGN.md §17);
//! * **per-tenant fairness** with bounded queues and backpressure:
//!   each tenant owns a FIFO of at most `queue_capacity` submissions
//!   and is drained at most `fair_share` queries per tick, round-robin
//!   in tenant-id order; a full queue rejects with the typed
//!   [`ServeError::Overloaded`] — never a panic, never unbounded
//!   memory;
//! * **subscription timers** registered on the simulator's event
//!   scheduler (`Network::schedule_wake`), so a serving tick with due
//!   epochs is an *active* tick for the event-driven core and the
//!   wake-list drain stays equivalent to the all-scan reference.
//!
//! Everything is deterministic: queues and batch groups live in
//! `BTreeMap`s keyed by tenant id and canonical scan signature, and
//! the only parallelism seam — batch-planning cache misses — is a pure
//! function of the normalized text, so a work-queue pool may execute
//! it in any order (see `snapshot_bench::serve`).
//!
//! ```
//! use snapshot_query::prelude::*;
//! use snapshot_query::serve::{QueryService, ServeConfig};
//! # use snapshot_core::{SensorNetwork, SnapshotConfig};
//! # use snapshot_datagen::{random_walk, RandomWalkConfig};
//! # use snapshot_netsim::{EnergyModel, LinkModel, NodeId, Topology};
//! # let data = random_walk(&RandomWalkConfig {
//! #     n_nodes: 20, n_classes: 2, steps: 50,
//! #     ..RandomWalkConfig::paper_defaults(2, 7)
//! # }).unwrap();
//! # let topo = Topology::random_uniform(20, 2.0, 7).unwrap();
//! # let mut sn = SensorNetwork::new(topo, LinkModel::Perfect,
//! #     EnergyModel::default(), SnapshotConfig::paper(1.0, 2048, 7), data.trace);
//! # sn.train(0, 10);
//! # sn.set_time(20);
//! # let _ = sn.elect();
//! let mut svc = QueryService::new(ServeConfig::default(), RegionCatalog::with_quadrants());
//! let ticket = svc.submit(&sn, 0, "SELECT AVG(value) FROM sensors USE SNAPSHOT").unwrap();
//! svc.tick(&mut sn);
//! let done = svc.take_completions();
//! assert_eq!(done[0].ticket, ticket);
//! assert!(done[0].value.is_some());
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::catalog::RegionCatalog;
use crate::error::QueryError;
use crate::executor::execute_plan_history;
use crate::parser::parse;
use crate::planner::{plan, QueryPlan};
use snapshot_core::{Aggregate, SensorNetwork, SnapshotQuery};
use snapshot_netsim::{Event, NodeId, SpanKind};
use snapshot_store::{ActiveRecord, PendingRecord, ServeStateRecord, SnapshotStore};

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Hard bound on each tenant's submission queue; the submission
    /// that would exceed it is rejected with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Queries admitted per tenant per tick (the round-robin fair
    /// share).
    pub fair_share: usize,
    /// The sink node every scan collects at.
    pub sink: NodeId,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            fair_share: 16,
            sink: NodeId(0),
        }
    }
}

/// Typed serving-layer failure. Backpressure is a value, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant's bounded queue is full; resubmit after a tick.
    Overloaded {
        /// The rejected tenant.
        tenant: u32,
        /// Submissions already queued for the tenant.
        queued: usize,
        /// The configured per-tenant bound.
        capacity: usize,
    },
    /// [`QueryService::recover`] could not rehydrate a persisted
    /// query — its stored text no longer plans under the recovering
    /// catalog.
    Recovery {
        /// The ticket of the query that failed to rehydrate.
        ticket: u64,
        /// Why replanning rejected it.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                tenant,
                queued,
                capacity,
            } => write!(
                f,
                "tenant {tenant} overloaded: {queued} queued of {capacity} allowed"
            ),
            ServeError::Recovery { ticket, detail } => {
                write!(f, "recovery failed for ticket {ticket}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Normalize query text for plan-cache keying: whitespace collapsed
/// to single spaces, ASCII-lowercased. The dialect has no string
/// literals, so lowercasing never changes meaning (keywords, column
/// names, and catalog regions are all case-insensitive).
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    for word in sql.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        for ch in word.chars() {
            out.push(ch.to_ascii_lowercase());
        }
    }
    out
}

/// Parse + plan one normalized query text. Pure: same text and
/// catalog, same result — the property that lets a work-queue pool
/// plan cache misses in parallel.
pub fn plan_text(sql: &str, catalog: &RegionCatalog) -> Result<QueryPlan, QueryError> {
    plan(&parse(sql)?, catalog)
}

/// The canonical scan signature: everything about a plan's per-epoch
/// query *except* the aggregate. Two plans with equal signatures are
/// answered from one shared drill-through scan.
fn scan_signature(q: &SnapshotQuery) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}",
        q.predicate, q.mode, q.value_filter, q.prefer_representative_routing
    )
}

/// One waiting submission.
#[derive(Debug, Clone)]
struct Pending {
    ticket: u64,
    tenant: u32,
    sql: String,
    submitted_at: u64,
}

/// One admitted query with epochs left to serve.
#[derive(Debug, Clone)]
struct Active {
    ticket: u64,
    tenant: u32,
    submitted_at: u64,
    first_result_at: Option<u64>,
    aggregate: Option<Aggregate>,
    scan: SnapshotQuery,
    key: String,
    /// Normalized query text, kept so [`QueryService::snapshot_state`]
    /// can persist the query and [`QueryService::recover`] can replan
    /// it — the plan itself is derived state, never serialized.
    sql: String,
    interval: u64,
    remaining: u64,
    epochs_total: u64,
}

/// A finished query, one-shot or subscription.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The ticket [`QueryService::submit`] returned.
    pub ticket: u64,
    /// The submitting tenant.
    pub tenant: u32,
    /// Tick the query was submitted at.
    pub submitted_at: u64,
    /// Tick the first epoch was served at (`None` for plan errors).
    pub first_result_at: Option<u64>,
    /// Tick the query finished at (last epoch, or rejection).
    pub completed_at: u64,
    /// Sampling epochs served.
    pub epochs: u64,
    /// The final epoch's aggregate value (`None` for drill-through
    /// queries and plan errors).
    pub value: Option<f64>,
    /// The final epoch's row count (drill-through queries).
    pub rows: usize,
    /// The planner's rejection, for queries that never ran.
    pub error: Option<String>,
}

impl Completion {
    /// Queueing + planning latency in ticks: submission to first
    /// served epoch.
    pub fn latency_ticks(&self) -> Option<u64> {
        self.first_result_at
            .map(|t| t.saturating_sub(self.submitted_at))
    }
}

/// Serving-layer counters, all deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions accepted into a tenant queue.
    pub submitted: u64,
    /// Submissions rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Queries admitted past the fair-share gate.
    pub admitted: u64,
    /// Admitted queries whose normalized text was already planned.
    pub plan_cache_hits: u64,
    /// Admitted queries that needed a fresh parse + plan.
    pub plan_cache_misses: u64,
    /// Admitted queries the planner rejected.
    pub plan_errors: u64,
    /// Network scans actually executed.
    pub scans: u64,
    /// Query-epochs answered from a scan another query paid for.
    pub coalesced: u64,
    /// Query-epochs served in total.
    pub epochs_served: u64,
    /// Queries completed (including plan errors).
    pub completed: u64,
}

impl ServeStats {
    /// Plan-cache hit rate, `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        (total > 0).then(|| self.plan_cache_hits as f64 / total as f64)
    }

    /// The store's fixed-width counter encoding (field order is part
    /// of the `snapshot-store v1` format — append only).
    fn to_array(self) -> [u64; 10] {
        [
            self.submitted,
            self.rejected,
            self.admitted,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_errors,
            self.scans,
            self.coalesced,
            self.epochs_served,
            self.completed,
        ]
    }

    fn from_array(a: [u64; 10]) -> Self {
        ServeStats {
            submitted: a[0],
            rejected: a[1],
            admitted: a[2],
            plan_cache_hits: a[3],
            plan_cache_misses: a[4],
            plan_errors: a[5],
            scans: a[6],
            coalesced: a[7],
            epochs_served: a[8],
            completed: a[9],
        }
    }
}

/// The long-running serving frontend. See the [module docs](self) for
/// the architecture; drive it with [`QueryService::submit`] and one
/// [`QueryService::tick`] per simulator tick. `Clone` snapshots the
/// whole serving state (queues, cache, in-flight work) — the
/// microbenches use it to restart each iteration from a warm state.
#[derive(Debug, Clone)]
pub struct QueryService {
    config: ServeConfig,
    catalog: RegionCatalog,
    next_ticket: u64,
    queues: BTreeMap<u32, VecDeque<Pending>>,
    cache: BTreeMap<String, QueryPlan>,
    due: BTreeMap<u64, Vec<Active>>,
    completions: Vec<Completion>,
    stats: ServeStats,
    /// Attached snapshot store: answers `AS OF` / `BETWEEN` queries
    /// and receives serve-state checkpoints. The service only *reads*
    /// stored versions; appends go through the owner's handle.
    store: Option<SnapshotStore>,
}

impl QueryService {
    /// A fresh service with an empty plan cache.
    pub fn new(config: ServeConfig, catalog: RegionCatalog) -> Self {
        QueryService {
            config,
            catalog,
            next_ticket: 1,
            queues: BTreeMap::new(),
            cache: BTreeMap::new(),
            due: BTreeMap::new(),
            completions: Vec::new(),
            stats: ServeStats::default(),
            store: None,
        }
    }

    /// Attach a snapshot store. Time-travel (`AS OF` / `BETWEEN`)
    /// queries are answered from it at admission; without one they
    /// complete with a typed error.
    pub fn attach_store(&mut self, store: SnapshotStore) {
        self.store = Some(store);
    }

    /// The attached snapshot store, if any.
    pub fn store(&self) -> Option<&SnapshotStore> {
        self.store.as_ref()
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Submissions waiting in tenant queues.
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Admitted queries with epochs still to serve.
    pub fn in_flight(&self) -> usize {
        self.due.values().map(Vec::len).sum()
    }

    /// True when no queued or admitted work remains.
    pub fn idle(&self) -> bool {
        self.queued() == 0 && self.in_flight() == 0
    }

    /// Enqueue one query for `tenant`. Returns a ticket to correlate
    /// the eventual [`Completion`], or [`ServeError::Overloaded`] when
    /// the tenant's bounded queue is full.
    pub fn submit(
        &mut self,
        sn: &SensorNetwork,
        tenant: u32,
        sql: &str,
    ) -> Result<u64, ServeError> {
        let queue = self.queues.entry(tenant).or_default();
        if queue.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            return Err(ServeError::Overloaded {
                tenant,
                queued: queue.len(),
                capacity: self.config.queue_capacity,
            });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        queue.push_back(Pending {
            ticket,
            tenant,
            sql: sql.to_owned(),
            submitted_at: sn.now() as u64,
        });
        self.stats.submitted += 1;
        Ok(ticket)
    }

    /// One serving tick with the default (serial) batch planner.
    pub fn tick(&mut self, sn: &mut SensorNetwork) {
        let catalog = self.catalog.clone();
        self.tick_with(sn, |texts| {
            texts.iter().map(|t| plan_text(t, &catalog)).collect()
        });
    }

    /// One serving tick: admit up to the fair share per tenant (batch-
    /// planning cache misses through `plan_batch`), then execute every
    /// due epoch, one shared scan per distinct signature.
    ///
    /// `plan_batch` receives the deduplicated normalized texts of this
    /// tick's cache misses, in first-seen order, and must return one
    /// plan per text in the same order. It must be a pure function of
    /// the texts — the bench harness hands the list to its work-queue
    /// pool, so results must not depend on execution order.
    // xtask-contract(deterministic)
    pub fn tick_with<F>(&mut self, sn: &mut SensorNetwork, plan_batch: F)
    where
        F: Fn(&[String]) -> Vec<Result<QueryPlan, QueryError>>,
    {
        let tick_span = sn.net_mut().open_span(SpanKind::ServeTick);
        self.admit(sn, plan_batch);
        self.serve_due(sn);
        sn.net_mut().close_span(tick_span);
    }

    /// Drain the fair share from every tenant queue and resolve each
    /// drained submission through the plan cache.
    fn admit<F>(&mut self, sn: &mut SensorNetwork, plan_batch: F)
    where
        F: Fn(&[String]) -> Vec<Result<QueryPlan, QueryError>>,
    {
        if self.queued() == 0 {
            return;
        }
        let admit_span = sn.net_mut().open_span(SpanKind::ServeAdmit);
        let now = sn.now() as u64;

        // Round-robin: tenant-id order, at most `fair_share` each.
        let mut drained: Vec<Pending> = Vec::new();
        for queue in self.queues.values_mut() {
            for _ in 0..self.config.fair_share {
                match queue.pop_front() {
                    Some(p) => drained.push(p),
                    None => break,
                }
            }
        }
        self.queues.retain(|_, q| !q.is_empty());

        // Batch-plan the distinct uncached texts, first-seen order.
        let mut misses: Vec<String> = Vec::new();
        for p in &drained {
            let key = normalize(&p.sql);
            if !self.cache.contains_key(&key) && !misses.contains(&key) {
                misses.push(key);
            }
        }
        let planned: BTreeMap<String, Result<QueryPlan, QueryError>> = plan_batch(&misses)
            .into_iter()
            .zip(&misses)
            .map(|(r, k)| (k.clone(), r))
            .collect();

        for p in drained {
            self.stats.admitted += 1;
            let key = normalize(&p.sql);
            let hit = self.cache.contains_key(&key);
            if hit {
                self.stats.plan_cache_hits += 1;
            } else {
                self.stats.plan_cache_misses += 1;
            }
            sn.net_mut().emit(Event::PlanCacheLookup {
                tick: now,
                tenant: p.tenant,
                hit,
            });
            let cached = self.cache.get(&key).cloned();
            let plan = match cached {
                Some(plan) => plan,
                None => match planned.get(&key) {
                    Some(Ok(plan)) => {
                        self.cache.insert(key.clone(), plan.clone());
                        plan.clone()
                    }
                    other => {
                        // A planner rejection — or, defensively, a
                        // batch planner that returned fewer plans than
                        // texts. Either way the query completes now
                        // with a typed error, never a panic.
                        let message = match other {
                            Some(Err(e)) => e.to_string(),
                            _ => "batch planner returned no plan for this query".to_owned(),
                        };
                        self.stats.plan_errors += 1;
                        self.stats.completed += 1;
                        self.completions.push(Completion {
                            ticket: p.ticket,
                            tenant: p.tenant,
                            submitted_at: p.submitted_at,
                            first_result_at: None,
                            completed_at: now,
                            epochs: 0,
                            value: None,
                            rows: 0,
                            error: Some(message),
                        });
                        continue;
                    }
                },
            };
            if plan.history.is_some() {
                // Time-travel queries never touch the network: they
                // are answered from the attached store at admission,
                // one epoch per stored version in range.
                self.answer_history(&p, &plan, now);
                continue;
            }
            let active = Active {
                ticket: p.ticket,
                tenant: p.tenant,
                submitted_at: p.submitted_at,
                first_result_at: None,
                aggregate: plan.query.aggregate,
                scan: SnapshotQuery {
                    aggregate: None,
                    ..plan.query.clone()
                },
                key: scan_signature(&plan.query),
                sql: key,
                interval: plan.interval_ticks.max(1),
                remaining: plan.epochs.max(1),
                epochs_total: plan.epochs.max(1),
            };
            self.schedule(sn, now, active);
        }
        sn.net_mut().close_span(admit_span);
    }

    /// Answer one admitted time-travel query from the attached store,
    /// completing it immediately — no scan, no scheduling.
    fn answer_history(&mut self, p: &Pending, plan: &QueryPlan, now: u64) {
        let done = |value, rows, epochs, error| Completion {
            ticket: p.ticket,
            tenant: p.tenant,
            submitted_at: p.submitted_at,
            first_result_at: Some(now),
            completed_at: now,
            epochs,
            value,
            rows,
            error,
        };
        let completion = match &self.store {
            None => done(
                None,
                0,
                0,
                Some(
                    "no snapshot store attached: time-travel queries need \
                     QueryService::attach_store"
                        .to_owned(),
                ),
            ),
            Some(store) => match execute_plan_history(store, plan, self.config.sink) {
                Err(e) => done(None, 0, 0, Some(e.to_string())),
                Ok(hist) => {
                    self.stats.epochs_served += hist.epochs.len() as u64;
                    let last = hist.epochs.last();
                    let value = last.and_then(|e| e.result.value);
                    let rows = match plan.query.aggregate {
                        None => last.map_or(0, |e| e.result.rows.len()),
                        Some(_) => 0,
                    };
                    done(value, rows, hist.epochs.len() as u64, None)
                }
            },
        };
        self.stats.completed += 1;
        self.completions.push(completion);
    }

    /// Park `active` in the `at`-tick bucket and register the wake
    /// timer with the event scheduler (future ticks only — the current
    /// tick is already active by construction).
    fn schedule(&mut self, sn: &mut SensorNetwork, at: u64, active: Active) {
        if at > sn.now() as u64 {
            sn.net_mut().schedule_wake(at, 1, self.config.sink);
        }
        self.due.entry(at).or_default().push(active);
    }

    /// Execute every epoch due at the current tick: group by scan
    /// signature, run one drill-through scan per group, fold each
    /// member's aggregate from the shared rows.
    fn serve_due(&mut self, sn: &mut SensorNetwork) {
        let now = sn.now() as u64;
        let mut due: Vec<Active> = Vec::new();
        // Overdue buckets (possible when a driver skips ticks) are
        // served now rather than dropped.
        let stale: Vec<u64> = self.due.range(..=now).map(|(&t, _)| t).collect();
        for t in stale {
            if let Some(batch) = self.due.remove(&t) {
                due.extend(batch);
            }
        }
        if due.is_empty() {
            return;
        }

        let mut groups: BTreeMap<String, Vec<Active>> = BTreeMap::new();
        for a in due {
            groups.entry(a.key.clone()).or_default().push(a);
        }

        let mut rescheduled: Vec<Active> = Vec::new();
        for (_, members) in groups {
            let batch_span = sn.net_mut().open_span(SpanKind::ServeBatch);
            let scan = members[0].scan.clone();
            let shared = sn.query(&scan, self.config.sink);
            self.stats.scans += 1;
            self.stats.coalesced += members.len() as u64 - 1;
            for mut m in members {
                self.stats.epochs_served += 1;
                if m.first_result_at.is_none() {
                    m.first_result_at = Some(now);
                }
                let value = m
                    .aggregate
                    .and_then(|a| a.apply(shared.rows.iter().map(|&(_, v)| v)));
                m.remaining -= 1;
                if m.remaining == 0 {
                    self.stats.completed += 1;
                    self.completions.push(Completion {
                        ticket: m.ticket,
                        tenant: m.tenant,
                        submitted_at: m.submitted_at,
                        first_result_at: m.first_result_at,
                        completed_at: now,
                        epochs: m.epochs_total,
                        value,
                        rows: if m.aggregate.is_none() {
                            shared.rows.len()
                        } else {
                            0
                        },
                        error: None,
                    });
                } else {
                    rescheduled.push(m);
                }
            }
            sn.net_mut().close_span(batch_span);
        }
        for m in rescheduled {
            let at = now + m.interval;
            self.schedule(sn, at, m);
        }
    }

    /// Drain the accumulated completions (trace order: completion
    /// tick, then grouped by scan signature, then admission order).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Freeze the serving state for persistence, referencing the
    /// network checkpoint stored as `checkpoint_version`. Capture
    /// order is canonical — tenant id then queue order for pending
    /// work, due tick then bucket order for in-flight work — so the
    /// same state always encodes to the same bytes. Take it at a
    /// drained boundary (after [`take_completions`]): completions are
    /// deliberately *not* persisted, they are the already-delivered
    /// output stream.
    ///
    /// [`take_completions`]: QueryService::take_completions
    pub fn snapshot_state(&self, checkpoint_version: u64) -> ServeStateRecord {
        let pending = self
            .queues
            .values()
            .flatten()
            .map(|p| PendingRecord {
                ticket: p.ticket,
                tenant: p.tenant,
                submitted_at: p.submitted_at,
                sql: p.sql.clone(),
            })
            .collect();
        let active = self
            .due
            .iter()
            .flat_map(|(&due, bucket)| {
                bucket.iter().map(move |a| ActiveRecord {
                    due,
                    ticket: a.ticket,
                    tenant: a.tenant,
                    submitted_at: a.submitted_at,
                    first_result_at: a.first_result_at,
                    interval: a.interval,
                    remaining: a.remaining,
                    epochs_total: a.epochs_total,
                    sql: a.sql.clone(),
                })
            })
            .collect();
        ServeStateRecord {
            checkpoint_version,
            next_ticket: self.next_ticket,
            stats: self.stats.to_array(),
            pending,
            active,
        }
    }

    /// Rebuild a service from a persisted [`ServeStateRecord`] —
    /// restart recovery. Every surviving query's normalized text is
    /// replanned through the pure planner (plans are derived state,
    /// never serialized) and in-flight subscriptions re-register
    /// their wake timers on `sn`'s event scheduler; overdue epochs
    /// are served on the next tick rather than dropped. A text that
    /// no longer plans fails with [`ServeError::Recovery`] naming the
    /// ticket — never a panic.
    ///
    /// The recovered plan cache is warmed from surviving queries
    /// only, so future hit/miss *counters* may diverge from an
    /// uninterrupted run; the completion stream itself does not.
    pub fn recover(
        config: ServeConfig,
        catalog: RegionCatalog,
        sn: &mut SensorNetwork,
        rec: &ServeStateRecord,
    ) -> Result<QueryService, ServeError> {
        let mut svc = QueryService::new(config, catalog);
        svc.next_ticket = rec.next_ticket;
        svc.stats = ServeStats::from_array(rec.stats);
        for p in &rec.pending {
            svc.queues.entry(p.tenant).or_default().push_back(Pending {
                ticket: p.ticket,
                tenant: p.tenant,
                sql: p.sql.clone(),
                submitted_at: p.submitted_at,
            });
        }
        for a in &rec.active {
            let plan = plan_text(&a.sql, &svc.catalog).map_err(|e| ServeError::Recovery {
                ticket: a.ticket,
                detail: e.to_string(),
            })?;
            svc.cache.insert(a.sql.clone(), plan.clone());
            let active = Active {
                ticket: a.ticket,
                tenant: a.tenant,
                submitted_at: a.submitted_at,
                first_result_at: a.first_result_at,
                aggregate: plan.query.aggregate,
                scan: SnapshotQuery {
                    aggregate: None,
                    ..plan.query.clone()
                },
                key: scan_signature(&plan.query),
                sql: a.sql.clone(),
                interval: a.interval,
                remaining: a.remaining,
                epochs_total: a.epochs_total,
            };
            svc.schedule(sn, a.due, active);
        }
        Ok(svc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_core::SnapshotConfig;
    use snapshot_datagen::{random_walk, RandomWalkConfig};
    use snapshot_netsim::{EnergyModel, LinkModel, Topology};

    fn small_network(seed: u64) -> SensorNetwork {
        let data = random_walk(&RandomWalkConfig {
            n_nodes: 20,
            n_classes: 2,
            steps: 200,
            ..RandomWalkConfig::paper_defaults(2, seed)
        })
        .unwrap();
        let topo = Topology::random_uniform(20, 2.0, seed).expect("valid deployment");
        let mut sn = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            SnapshotConfig::paper(1.0, 2048, seed),
            data.trace,
        );
        sn.train(0, 10);
        sn.set_time(20);
        let _ = sn.elect();
        sn
    }

    fn service() -> QueryService {
        QueryService::new(ServeConfig::default(), RegionCatalog::with_quadrants())
    }

    fn drain(svc: &mut QueryService, sn: &mut SensorNetwork) -> Vec<Completion> {
        let mut done = Vec::new();
        for _ in 0..1000 {
            if svc.idle() {
                break;
            }
            svc.tick(sn);
            done.extend(svc.take_completions());
            sn.advance(1);
        }
        assert!(svc.idle(), "service did not drain");
        done
    }

    #[test]
    fn normalization_collapses_case_and_whitespace() {
        assert_eq!(
            normalize("  SELECT   AVG(value)\n FROM  sensors "),
            "select avg(value) from sensors"
        );
    }

    #[test]
    fn one_shot_query_completes_with_a_value() {
        let mut sn = small_network(3);
        let mut svc = service();
        let t = svc
            .submit(&sn, 0, "SELECT AVG(value) FROM sensors USE SNAPSHOT")
            .unwrap();
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].ticket, t);
        assert!(done[0].value.is_some());
        assert_eq!(done[0].epochs, 1);
        assert_eq!(done[0].error, None);
    }

    #[test]
    fn shared_scan_matches_individual_execution() {
        // Three aggregates over the same signature must coalesce into
        // one scan per tick and still answer exactly what a lone
        // execution answers.
        let sqls = [
            "SELECT AVG(value) FROM sensors USE SNAPSHOT",
            "SELECT SUM(value) FROM sensors USE SNAPSHOT",
            "SELECT COUNT(value) FROM sensors USE SNAPSHOT",
        ];
        let mut lone = Vec::new();
        for sql in sqls {
            let mut sn = small_network(4);
            let mut svc = service();
            svc.submit(&sn, 0, sql).unwrap();
            let done = drain(&mut svc, &mut sn);
            lone.push(done[0].value);
        }

        let mut sn = small_network(4);
        let mut svc = service();
        for sql in sqls {
            svc.submit(&sn, 0, sql).unwrap();
        }
        let done = drain(&mut svc, &mut sn);
        assert_eq!(svc.stats().scans, 1, "signature group must share one scan");
        assert_eq!(svc.stats().coalesced, 2);
        let values: Vec<Option<f64>> = done.iter().map(|c| c.value).collect();
        assert_eq!(values, lone);
    }

    #[test]
    fn plan_cache_hits_on_normalized_repeats() {
        let mut sn = small_network(5);
        let mut svc = service();
        svc.submit(&sn, 0, "SELECT AVG(value) FROM sensors")
            .unwrap();
        svc.submit(&sn, 1, "select avg(value)  from sensors")
            .unwrap();
        svc.submit(&sn, 2, "SELECT  AVG(value) FROM SENSORS")
            .unwrap();
        let _ = drain(&mut svc, &mut sn);
        assert_eq!(svc.stats().plan_cache_misses, 1);
        assert_eq!(svc.stats().plan_cache_hits, 2);
        assert_eq!(svc.cached_plans(), 1);
    }

    #[test]
    fn overload_rejects_typed_and_keeps_the_queue_bounded() {
        let sn = small_network(6);
        let mut svc = QueryService::new(
            ServeConfig {
                queue_capacity: 4,
                ..ServeConfig::default()
            },
            RegionCatalog::with_quadrants(),
        );
        for _ in 0..4 {
            svc.submit(&sn, 9, "SELECT AVG(value) FROM sensors")
                .unwrap();
        }
        let err = svc
            .submit(&sn, 9, "SELECT AVG(value) FROM sensors")
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                tenant: 9,
                queued: 4,
                capacity: 4
            }
        );
        assert_eq!(svc.queued(), 4);
        assert_eq!(svc.stats().rejected, 1);
        // Another tenant is unaffected: fairness isolates queues.
        svc.submit(&sn, 10, "SELECT AVG(value) FROM sensors")
            .unwrap();
    }

    #[test]
    fn subscriptions_serve_one_epoch_per_interval() {
        let mut sn = small_network(7);
        let mut svc = service();
        let start = sn.now() as u64;
        svc.submit(
            &sn,
            0,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 2s FOR 6s USE SNAPSHOT",
        )
        .unwrap();
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].epochs, 3);
        // Epochs at admit, admit+2, admit+4.
        assert_eq!(done[0].first_result_at, Some(start));
        assert_eq!(done[0].completed_at, start + 4);
    }

    #[test]
    fn plan_errors_complete_with_a_typed_error() {
        let mut sn = small_network(8);
        let mut svc = service();
        svc.submit(&sn, 0, "SELECT AVG(value) FROM actuators")
            .unwrap();
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 1);
        assert!(done[0].error.as_deref().unwrap().contains("actuators"));
        assert_eq!(svc.stats().plan_errors, 1);
    }

    #[test]
    fn fair_share_spreads_admission_across_ticks() {
        let mut sn = small_network(9);
        let mut svc = QueryService::new(
            ServeConfig {
                fair_share: 2,
                ..ServeConfig::default()
            },
            RegionCatalog::with_quadrants(),
        );
        for _ in 0..6 {
            svc.submit(&sn, 0, "SELECT AVG(value) FROM sensors")
                .unwrap();
        }
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 6);
        let latencies: Vec<u64> = done.iter().filter_map(Completion::latency_ticks).collect();
        // Two per tick: latencies 0, 0, 1, 1, 2, 2.
        assert_eq!(latencies, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn history_queries_answer_from_the_attached_store() {
        let dir = std::env::temp_dir().join("sq_serve_history");
        std::fs::create_dir_all(&dir).unwrap();
        let mut sn = small_network(12);
        let mut store = SnapshotStore::create(dir.join("serve.store")).unwrap();
        store.append_checkpoint(&sn.checkpoint()).unwrap();
        sn.advance(5);
        store.append_checkpoint(&sn.checkpoint()).unwrap();

        let mut svc = service();
        svc.attach_store(store);
        svc.submit(
            &sn,
            0,
            "SELECT AVG(value) FROM sensors AS OF 25 USE SNAPSHOT",
        )
        .unwrap();
        svc.submit(
            &sn,
            0,
            "SELECT AVG(value) FROM sensors BETWEEN 20 AND 25 USE SNAPSHOT",
        )
        .unwrap();
        let scans_before = svc.stats().scans;
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 2);
        // AS OF 25 answers from the tick-25 checkpoint — the live
        // network still sits at tick 25, so a fresh query agrees.
        let p = plan_text(
            "select avg(value) from sensors use snapshot",
            &RegionCatalog::with_quadrants(),
        )
        .unwrap();
        let live = sn.query(&p.query, NodeId(0));
        assert_eq!(
            done[0].value.map(f64::to_bits),
            live.value.map(f64::to_bits)
        );
        assert_eq!(done[0].epochs, 1);
        assert_eq!(done[0].error, None);
        // BETWEEN serves one epoch per stored version.
        assert_eq!(done[1].epochs, 2);
        // Neither touched the network.
        assert_eq!(svc.stats().scans, scans_before);
        assert_eq!(svc.stats().epochs_served, 3);
    }

    #[test]
    fn history_without_a_store_completes_with_a_typed_error() {
        let mut sn = small_network(13);
        let mut svc = service();
        svc.submit(&sn, 0, "SELECT AVG(value) FROM sensors AS OF 10")
            .unwrap();
        let done = drain(&mut svc, &mut sn);
        assert_eq!(done.len(), 1);
        assert!(done[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no snapshot store attached"));
    }

    #[test]
    fn serve_state_round_trips_through_recovery() {
        let mut sn = small_network(14);
        let mut svc = service();
        // One long subscription (stays in flight) + queued backlog.
        svc.submit(
            &sn,
            0,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 2s FOR 20s USE SNAPSHOT",
        )
        .unwrap();
        svc.tick(&mut sn);
        sn.advance(1);
        svc.submit(&sn, 3, "SELECT loc, value FROM sensors")
            .unwrap();
        let _ = svc.take_completions();

        let rec = svc.snapshot_state(1);
        assert_eq!(rec.pending.len(), 1);
        assert_eq!(rec.active.len(), 1);
        assert_eq!(rec.next_ticket, 3);
        assert_eq!(rec.stats, svc.stats().to_array());

        let mut recovered = QueryService::recover(
            ServeConfig::default(),
            RegionCatalog::with_quadrants(),
            &mut sn,
            &rec,
        )
        .unwrap();
        assert_eq!(recovered.queued(), 1);
        assert_eq!(recovered.in_flight(), 1);
        assert_eq!(recovered.stats(), svc.stats());
        // The recovered snapshot re-encodes to the identical record.
        assert_eq!(recovered.snapshot_state(1), rec);
        // And keeps serving to completion.
        let done = drain(&mut recovered, &mut sn);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.error.is_none()));
    }

    #[test]
    fn recovery_rejects_unplannable_texts_with_the_ticket() {
        let mut sn = small_network(15);
        let rec = ServeStateRecord {
            checkpoint_version: 1,
            next_ticket: 9,
            stats: [0; 10],
            pending: vec![],
            active: vec![ActiveRecord {
                due: 30,
                ticket: 7,
                tenant: 2,
                submitted_at: 20,
                first_result_at: None,
                interval: 1,
                remaining: 1,
                epochs_total: 1,
                sql: "select avg(value) from actuators".to_owned(),
            }],
        };
        let err = QueryService::recover(
            ServeConfig::default(),
            RegionCatalog::with_quadrants(),
            &mut sn,
            &rec,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ServeError::Recovery {
                ticket: 7,
                detail: "planning error: unknown table `actuators` (this dialect exposes only `sensors`)"
                    .to_owned()
            }
        );
    }

    #[test]
    fn serving_is_deterministic_per_seed() {
        let run = || {
            let mut sn = small_network(11);
            sn.enable_telemetry(1 << 14);
            let mut svc = service();
            for i in 0..20u32 {
                let sql = if i % 3 == 0 {
                    "SELECT AVG(value) FROM sensors USE SNAPSHOT"
                } else {
                    "SELECT loc, value FROM sensors WHERE loc IN NORTH_EAST_QUADRANT"
                };
                svc.submit(&sn, i % 4, sql).unwrap();
            }
            let done = drain(&mut svc, &mut sn);
            (done, svc.stats(), sn.export_trace_jsonl())
        };
        let (a_done, a_stats, a_trace) = run();
        let (b_done, b_stats, b_trace) = run();
        assert_eq!(a_done, b_done);
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_trace, b_trace);
        assert!(a_trace.contains("\"plan_cache\""));
        assert!(a_trace.contains("\"serve_tick\""));
        assert!(a_trace.contains("\"serve_admit\""));
        assert!(a_trace.contains("\"serve_batch\""));
    }
}
