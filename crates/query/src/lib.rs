//! # snapshot-query
//!
//! The declarative face of snapshot queries (Section 3.1 of the
//! paper). TinyDB-style acquisitional SQL with the paper's
//! `USE SNAPSHOT` extension:
//!
//! ```sql
//! SELECT loc, temperature
//! FROM sensors
//! WHERE loc IN SOUTH_EAST_QUADRANT
//! SAMPLE INTERVAL 1s FOR 5min
//! USE SNAPSHOT
//! ```
//!
//! The pipeline is conventional: [`lexer`] tokenizes, [`parser`]
//! builds an [`ast::Query`], [`planner`] resolves named regions
//! against a [`catalog::RegionCatalog`] and lowers to the
//! programmatic [`snapshot_core::SnapshotQuery`], and [`executor`]
//! drives the sampling schedule against a
//! [`snapshot_core::SensorNetwork`] — one execution per sampling
//! epoch, advancing simulated time in between.
//!
//! ```
//! use snapshot_query::prelude::*;
//!
//! let q = parse("SELECT AVG(temperature) FROM sensors USE SNAPSHOT").unwrap();
//! assert!(q.use_snapshot);
//! let plan = plan(&q, &RegionCatalog::with_quadrants()).unwrap();
//! assert_eq!(plan.epochs, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod serve;

pub use ast::{History, Query};
pub use catalog::RegionCatalog;
pub use error::QueryError;
pub use executor::{
    execute_plan, execute_plan_history, plan_traced, HistoryEpoch, HistoryExecution,
    PlannedExecution,
};
pub use parser::parse;
pub use planner::{plan, QueryPlan};
pub use serve::{Completion, QueryService, ServeConfig, ServeError, ServeStats};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::ast::{History, Query};
    pub use crate::catalog::RegionCatalog;
    pub use crate::error::QueryError;
    pub use crate::executor::{
        execute_plan, execute_plan_history, plan_traced, HistoryEpoch, HistoryExecution,
        PlannedExecution,
    };
    pub use crate::parser::parse;
    pub use crate::planner::{plan, QueryPlan};
    pub use crate::serve::{Completion, QueryService, ServeConfig, ServeError, ServeStats};
}
