//! Executing plans against a sensor network.
//!
//! A plan with a sampling schedule runs once per epoch, advancing the
//! network's simulated clock by the interval between samples — the
//! continuous-query semantics of `SAMPLE INTERVAL 1s FOR 5min`.

use crate::ast::{History, Query};
use crate::catalog::RegionCatalog;
use crate::error::QueryError;
use crate::planner::{plan, QueryPlan};
use snapshot_core::{execute_at, QueryResult, SensorNetwork};
use snapshot_netsim::{NodeId, SpanKind};
use snapshot_store::SnapshotStore;

/// The results of a planned (possibly multi-epoch) execution.
#[derive(Debug, Clone)]
pub struct PlannedExecution {
    /// One result per sampling epoch, in time order.
    pub epochs: Vec<QueryResult>,
    /// Whether rows should be rendered with locations.
    pub project_loc: bool,
}

impl PlannedExecution {
    /// The final epoch's result (`None` only for a zero-epoch
    /// execution, which [`execute_plan`] never produces).
    pub fn last(&self) -> Option<&QueryResult> {
        self.epochs.last()
    }

    /// Mean number of participants per epoch.
    pub fn mean_participants(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|e| e.participants as f64)
            .sum::<f64>()
            / self.epochs.len() as f64
    }

    /// Mean coverage per epoch.
    pub fn mean_coverage(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.coverage).sum::<f64>() / self.epochs.len() as f64
    }

    /// Render the final epoch as text rows (for examples and the CLI).
    pub fn render_last(&self, sn: &SensorNetwork) -> String {
        let mut out = String::new();
        let Some(r) = self.last() else {
            return "-- no epochs executed\n".to_string();
        };
        match r.value {
            Some(v) => {
                out.push_str(&format!("aggregate = {v:.4}\n"));
            }
            None => {
                for &(id, v) in &r.rows {
                    if self.project_loc {
                        let p = sn.net().topology().position(id);
                        out.push_str(&format!("{id}\t({:.3},{:.3})\t{v:.4}\n", p.x, p.y));
                    } else {
                        out.push_str(&format!("{id}\t{v:.4}\n"));
                    }
                }
            }
        }
        out.push_str(&format!(
            "-- {} participants, coverage {:.0}%\n",
            r.participants,
            r.coverage * 100.0
        ));
        out
    }
}

/// Plan a parsed query under a `query_plan` telemetry span attached to
/// `sn`'s trace. Identical to [`plan`] otherwise — use it when the
/// network is tracing and planning time should appear in the span tree
/// next to execution time.
pub fn plan_traced(
    sn: &mut SensorNetwork,
    q: &Query,
    catalog: &RegionCatalog,
) -> Result<QueryPlan, QueryError> {
    let span = sn.net_mut().open_span(SpanKind::QueryPlan);
    let result = plan(q, catalog);
    sn.net_mut().close_span(span);
    result
}

/// Execute a plan against the network, collecting results at `sink`.
/// Advances the network's clock by `interval_ticks` between epochs.
// xtask-contract(deterministic)
pub fn execute_plan(sn: &mut SensorNetwork, plan: &QueryPlan, sink: NodeId) -> PlannedExecution {
    let span = sn.net_mut().open_span(SpanKind::QueryExec);
    let mut epochs = Vec::with_capacity(plan.epochs as usize);
    for e in 0..plan.epochs {
        if e > 0 {
            sn.advance(plan.interval_ticks as usize);
        }
        epochs.push(sn.query(&plan.query, sink));
    }
    sn.net_mut().close_span(span);
    PlannedExecution {
        epochs,
        project_loc: plan.project_loc,
    }
}

/// One stored version's answer within a time-travel execution.
#[derive(Debug, Clone)]
pub struct HistoryEpoch {
    /// Store version the answer came from.
    pub version: u64,
    /// Tick the checkpoint was taken at.
    pub tick: u64,
    /// The query result, byte-identical to a live query against the
    /// deployment at that tick.
    pub result: QueryResult,
}

/// The results of a time-travel (`AS OF` / `BETWEEN`) execution
/// against the snapshot store: one epoch per stored version in range,
/// oldest first.
#[derive(Debug, Clone)]
pub struct HistoryExecution {
    /// One answer per stored version, oldest first. Empty when a
    /// `BETWEEN` window holds no stored versions.
    pub epochs: Vec<HistoryEpoch>,
    /// Whether rows should be rendered with locations.
    pub project_loc: bool,
    /// Node positions carried from the newest checkpoint in range,
    /// so drill-through rows render with locations without a live
    /// network. Deployments are static, so one copy serves all epochs.
    pub positions: Vec<(f64, f64)>,
}

impl HistoryExecution {
    /// Render every epoch as text, one `-- version` header per stored
    /// version, matching [`PlannedExecution::render_last`]'s row format.
    pub fn render(&self) -> String {
        if self.epochs.is_empty() {
            return "-- no stored versions in range\n".to_string();
        }
        let mut out = String::new();
        for e in &self.epochs {
            out.push_str(&format!("-- version {} (tick {})\n", e.version, e.tick));
            match e.result.value {
                Some(v) => out.push_str(&format!("aggregate = {v:.4}\n")),
                None => {
                    for &(id, v) in &e.result.rows {
                        if self.project_loc {
                            let (x, y) = self
                                .positions
                                .get(id.index())
                                .copied()
                                .unwrap_or((f64::NAN, f64::NAN));
                            out.push_str(&format!("{id}\t({x:.3},{y:.3})\t{v:.4}\n"));
                        } else {
                            out.push_str(&format!("{id}\t{v:.4}\n"));
                        }
                    }
                }
            }
            out.push_str(&format!(
                "-- {} participants, coverage {:.0}%\n",
                e.result.participants,
                e.result.coverage * 100.0
            ));
        }
        out
    }
}

/// Execute a time-travel plan against the snapshot store — the `AS OF`
/// / `BETWEEN` path. Pure: no network, no clock, no energy accounting;
/// every answer is computed from stored checkpoints alone via
/// [`execute_at`], so it is byte-identical to the same query run live
/// at the checkpoint's tick (or a same-seed replay of it).
///
/// Errors are typed [`QueryError::History`] values: a plan without a
/// time-travel clause, an `AS OF` tick before the first stored
/// version, a corrupt store, or a checkpoint the replay rejects.
// xtask-contract(deterministic)
pub fn execute_plan_history(
    store: &SnapshotStore,
    plan: &QueryPlan,
    sink: NodeId,
) -> Result<HistoryExecution, QueryError> {
    let checkpoints = match plan.history {
        None => {
            return Err(QueryError::history(
                "plan has no AS OF / BETWEEN clause; use execute_plan for live queries",
            ));
        }
        Some(History::AsOf(tick)) => vec![store
            .checkpoint_as_of(tick)
            .map_err(|e| QueryError::history(e.to_string()))?],
        Some(History::Between(from, to)) => store
            .checkpoints_between(from, to)
            .map_err(|e| QueryError::history(e.to_string()))?,
    };
    let positions = checkpoints
        .last()
        .map(|(_, cp)| cp.positions.clone())
        .unwrap_or_default();
    let mut epochs = Vec::with_capacity(checkpoints.len());
    for (version, cp) in &checkpoints {
        let result = execute_at(cp, &plan.query, sink).map_err(|e| {
            QueryError::history(format!("version {version} (tick {}): {e}", cp.tick))
        })?;
        epochs.push(HistoryEpoch {
            version: *version,
            tick: cp.tick,
            result,
        });
    }
    Ok(HistoryExecution {
        epochs,
        project_loc: plan.project_loc,
        positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RegionCatalog;
    use crate::parser::parse;
    use crate::planner::plan;
    use snapshot_core::SnapshotConfig;
    use snapshot_datagen::{random_walk, RandomWalkConfig};
    use snapshot_netsim::{EnergyModel, LinkModel, Topology};

    fn small_network(seed: u64) -> SensorNetwork {
        let data = random_walk(&RandomWalkConfig {
            n_nodes: 20,
            n_classes: 2,
            steps: 50,
            ..RandomWalkConfig::paper_defaults(2, seed)
        })
        .unwrap();
        let topo = Topology::random_uniform(20, 2.0, seed).expect("valid deployment");
        let mut sn = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            SnapshotConfig::paper(1.0, 2048, seed),
            data.trace,
        );
        sn.train(0, 10);
        sn.set_time(20);
        let _ = sn.elect();
        sn
    }

    fn run(sn: &mut SensorNetwork, sql: &str) -> PlannedExecution {
        let q = parse(sql).unwrap();
        let p = plan(&q, &RegionCatalog::with_quadrants()).unwrap();
        execute_plan(sn, &p, NodeId(0))
    }

    #[test]
    fn single_shot_aggregate_runs_one_epoch() {
        let mut sn = small_network(5);
        let exec = run(&mut sn, "SELECT AVG(value) FROM sensors");
        assert_eq!(exec.epochs.len(), 1);
        assert!(exec.last().expect("one epoch").value.is_some());
    }

    #[test]
    fn sampling_schedule_runs_many_epochs_and_advances_time() {
        let mut sn = small_network(6);
        let before = sn.now();
        let exec = run(
            &mut sn,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 1s FOR 10s USE SNAPSHOT",
        );
        assert_eq!(exec.epochs.len(), 10);
        assert_eq!(sn.now(), before + 9);
    }

    #[test]
    fn snapshot_mode_uses_fewer_participants_through_sql() {
        let mut sn = small_network(7);
        let reg = run(&mut sn, "SELECT SUM(value) FROM sensors");
        let snap = run(&mut sn, "SELECT SUM(value) FROM sensors USE SNAPSHOT");
        assert!(snap.mean_participants() <= reg.mean_participants());
    }

    #[test]
    fn drill_through_renders_rows_with_locations() {
        let mut sn = small_network(8);
        let exec = run(&mut sn, "SELECT loc, value FROM sensors");
        let text = exec.render_last(&sn);
        assert!(text.contains("N0"));
        assert!(text.contains("participants"));
        // Location tuple present.
        assert!(text.contains('('));
    }

    #[test]
    fn quadrant_filter_restricts_targets() {
        let mut sn = small_network(9);
        let all = run(&mut sn, "SELECT COUNT(value) FROM sensors");
        let quad = run(
            &mut sn,
            "SELECT COUNT(value) FROM sensors WHERE loc IN NORTH_EAST_QUADRANT",
        );
        let all_count = all.last().expect("one epoch").ground_truth.unwrap();
        let quad_count = quad.last().expect("one epoch").ground_truth.unwrap();
        assert!(quad_count < all_count);
    }

    #[test]
    fn mean_coverage_is_reported() {
        let mut sn = small_network(10);
        let exec = run(
            &mut sn,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 1s FOR 5s",
        );
        assert!(exec.mean_coverage() > 0.9);
    }

    /// A store holding checkpoints of `small_network(seed)` at ticks
    /// 20, 25 and 30, plus the live network left at tick 30.
    fn stored_history(seed: u64, dir: &std::path::Path) -> (SnapshotStore, SensorNetwork) {
        let mut sn = small_network(seed);
        let mut store = SnapshotStore::create(dir.join("history.store")).unwrap();
        store.append_checkpoint(&sn.checkpoint()).unwrap();
        sn.advance(5);
        store.append_checkpoint(&sn.checkpoint()).unwrap();
        sn.advance(5);
        store.append_checkpoint(&sn.checkpoint()).unwrap();
        (store, sn)
    }

    fn history_plan(sql: &str) -> QueryPlan {
        plan(&parse(sql).unwrap(), &RegionCatalog::with_quadrants()).unwrap()
    }

    #[test]
    fn as_of_matches_the_live_answer_at_that_tick() {
        let dir = std::env::temp_dir().join("sq_exec_asof");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, mut sn) = stored_history(11, &dir);
        // The live network sits at tick 30 — same state the last
        // checkpoint froze.
        let p = history_plan("SELECT AVG(value) FROM sensors AS OF 30 USE SNAPSHOT");
        let hist = execute_plan_history(&store, &p, NodeId(0)).unwrap();
        assert_eq!(hist.epochs.len(), 1);
        assert_eq!(hist.epochs[0].tick, 30);
        let live = sn.query(&p.query, NodeId(0));
        assert_eq!(
            hist.epochs[0].result.value.map(f64::to_bits),
            live.value.map(f64::to_bits)
        );
        assert_eq!(hist.epochs[0].result.rows, live.rows);
    }

    #[test]
    fn as_of_picks_the_latest_version_at_or_before_the_tick() {
        let dir = std::env::temp_dir().join("sq_exec_asof_pick");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, _sn) = stored_history(12, &dir);
        let p = history_plan("SELECT COUNT(*) FROM sensors AS OF 27");
        let hist = execute_plan_history(&store, &p, NodeId(0)).unwrap();
        assert_eq!(hist.epochs[0].tick, 25);
        // Before the first checkpoint: typed history error, no panic.
        let p = history_plan("SELECT COUNT(*) FROM sensors AS OF 3");
        let err = execute_plan_history(&store, &p, NodeId(0)).unwrap_err();
        assert!(matches!(err, QueryError::History { .. }));
        assert!(err.to_string().contains("tick 3"));
    }

    #[test]
    fn between_yields_one_epoch_per_stored_version_oldest_first() {
        let dir = std::env::temp_dir().join("sq_exec_between");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, _sn) = stored_history(13, &dir);
        let p = history_plan("SELECT AVG(value) FROM sensors BETWEEN 20 AND 30");
        let hist = execute_plan_history(&store, &p, NodeId(0)).unwrap();
        assert_eq!(
            hist.epochs.iter().map(|e| e.tick).collect::<Vec<_>>(),
            vec![20, 25, 30]
        );
        let text = hist.render();
        assert!(text.contains("-- version 1 (tick 20)"));
        assert!(text.contains("aggregate ="));
        // An empty window renders a marker line, not an error.
        let p = history_plan("SELECT AVG(value) FROM sensors BETWEEN 100 AND 200");
        let hist = execute_plan_history(&store, &p, NodeId(0)).unwrap();
        assert!(hist.epochs.is_empty());
        assert_eq!(hist.render(), "-- no stored versions in range\n");
    }

    #[test]
    fn history_drill_through_renders_locations_from_the_store() {
        let dir = std::env::temp_dir().join("sq_exec_hist_loc");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, sn) = stored_history(14, &dir);
        let p = history_plan("SELECT loc, value FROM sensors AS OF 30");
        let hist = execute_plan_history(&store, &p, NodeId(0)).unwrap();
        let text = hist.render();
        assert!(text.contains('('));
        // Rendered identically to the live renderer's row format.
        let live = execute_plan(&mut sn.clone(), &p, NodeId(0));
        let live_text = live.render_last(&sn);
        for line in live_text.lines().filter(|l| !l.starts_with("--")) {
            assert!(text.contains(line), "missing row: {line}");
        }
    }

    #[test]
    fn a_live_plan_is_rejected_by_the_history_executor() {
        let dir = std::env::temp_dir().join("sq_exec_hist_reject");
        std::fs::create_dir_all(&dir).unwrap();
        let (store, _sn) = stored_history(15, &dir);
        let p = history_plan("SELECT AVG(value) FROM sensors");
        let err = execute_plan_history(&store, &p, NodeId(0)).unwrap_err();
        assert!(err.to_string().contains("no AS OF"));
    }
}
