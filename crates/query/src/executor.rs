//! Executing plans against a sensor network.
//!
//! A plan with a sampling schedule runs once per epoch, advancing the
//! network's simulated clock by the interval between samples — the
//! continuous-query semantics of `SAMPLE INTERVAL 1s FOR 5min`.

use crate::ast::Query;
use crate::catalog::RegionCatalog;
use crate::error::QueryError;
use crate::planner::{plan, QueryPlan};
use snapshot_core::{QueryResult, SensorNetwork};
use snapshot_netsim::{NodeId, SpanKind};

/// The results of a planned (possibly multi-epoch) execution.
#[derive(Debug, Clone)]
pub struct PlannedExecution {
    /// One result per sampling epoch, in time order.
    pub epochs: Vec<QueryResult>,
    /// Whether rows should be rendered with locations.
    pub project_loc: bool,
}

impl PlannedExecution {
    /// The final epoch's result (`None` only for a zero-epoch
    /// execution, which [`execute_plan`] never produces).
    pub fn last(&self) -> Option<&QueryResult> {
        self.epochs.last()
    }

    /// Mean number of participants per epoch.
    pub fn mean_participants(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|e| e.participants as f64)
            .sum::<f64>()
            / self.epochs.len() as f64
    }

    /// Mean coverage per epoch.
    pub fn mean_coverage(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.coverage).sum::<f64>() / self.epochs.len() as f64
    }

    /// Render the final epoch as text rows (for examples and the CLI).
    pub fn render_last(&self, sn: &SensorNetwork) -> String {
        let mut out = String::new();
        let Some(r) = self.last() else {
            return "-- no epochs executed\n".to_string();
        };
        match r.value {
            Some(v) => {
                out.push_str(&format!("aggregate = {v:.4}\n"));
            }
            None => {
                for &(id, v) in &r.rows {
                    if self.project_loc {
                        let p = sn.net().topology().position(id);
                        out.push_str(&format!("{id}\t({:.3},{:.3})\t{v:.4}\n", p.x, p.y));
                    } else {
                        out.push_str(&format!("{id}\t{v:.4}\n"));
                    }
                }
            }
        }
        out.push_str(&format!(
            "-- {} participants, coverage {:.0}%\n",
            r.participants,
            r.coverage * 100.0
        ));
        out
    }
}

/// Plan a parsed query under a `query_plan` telemetry span attached to
/// `sn`'s trace. Identical to [`plan`] otherwise — use it when the
/// network is tracing and planning time should appear in the span tree
/// next to execution time.
pub fn plan_traced(
    sn: &mut SensorNetwork,
    q: &Query,
    catalog: &RegionCatalog,
) -> Result<QueryPlan, QueryError> {
    let span = sn.net_mut().open_span(SpanKind::QueryPlan);
    let result = plan(q, catalog);
    sn.net_mut().close_span(span);
    result
}

/// Execute a plan against the network, collecting results at `sink`.
/// Advances the network's clock by `interval_ticks` between epochs.
// xtask-contract(deterministic)
pub fn execute_plan(sn: &mut SensorNetwork, plan: &QueryPlan, sink: NodeId) -> PlannedExecution {
    let span = sn.net_mut().open_span(SpanKind::QueryExec);
    let mut epochs = Vec::with_capacity(plan.epochs as usize);
    for e in 0..plan.epochs {
        if e > 0 {
            sn.advance(plan.interval_ticks as usize);
        }
        epochs.push(sn.query(&plan.query, sink));
    }
    sn.net_mut().close_span(span);
    PlannedExecution {
        epochs,
        project_loc: plan.project_loc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RegionCatalog;
    use crate::parser::parse;
    use crate::planner::plan;
    use snapshot_core::SnapshotConfig;
    use snapshot_datagen::{random_walk, RandomWalkConfig};
    use snapshot_netsim::{EnergyModel, LinkModel, Topology};

    fn small_network(seed: u64) -> SensorNetwork {
        let data = random_walk(&RandomWalkConfig {
            n_nodes: 20,
            n_classes: 2,
            steps: 50,
            ..RandomWalkConfig::paper_defaults(2, seed)
        })
        .unwrap();
        let topo = Topology::random_uniform(20, 2.0, seed).expect("valid deployment");
        let mut sn = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            SnapshotConfig::paper(1.0, 2048, seed),
            data.trace,
        );
        sn.train(0, 10);
        sn.set_time(20);
        let _ = sn.elect();
        sn
    }

    fn run(sn: &mut SensorNetwork, sql: &str) -> PlannedExecution {
        let q = parse(sql).unwrap();
        let p = plan(&q, &RegionCatalog::with_quadrants()).unwrap();
        execute_plan(sn, &p, NodeId(0))
    }

    #[test]
    fn single_shot_aggregate_runs_one_epoch() {
        let mut sn = small_network(5);
        let exec = run(&mut sn, "SELECT AVG(value) FROM sensors");
        assert_eq!(exec.epochs.len(), 1);
        assert!(exec.last().expect("one epoch").value.is_some());
    }

    #[test]
    fn sampling_schedule_runs_many_epochs_and_advances_time() {
        let mut sn = small_network(6);
        let before = sn.now();
        let exec = run(
            &mut sn,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 1s FOR 10s USE SNAPSHOT",
        );
        assert_eq!(exec.epochs.len(), 10);
        assert_eq!(sn.now(), before + 9);
    }

    #[test]
    fn snapshot_mode_uses_fewer_participants_through_sql() {
        let mut sn = small_network(7);
        let reg = run(&mut sn, "SELECT SUM(value) FROM sensors");
        let snap = run(&mut sn, "SELECT SUM(value) FROM sensors USE SNAPSHOT");
        assert!(snap.mean_participants() <= reg.mean_participants());
    }

    #[test]
    fn drill_through_renders_rows_with_locations() {
        let mut sn = small_network(8);
        let exec = run(&mut sn, "SELECT loc, value FROM sensors");
        let text = exec.render_last(&sn);
        assert!(text.contains("N0"));
        assert!(text.contains("participants"));
        // Location tuple present.
        assert!(text.contains('('));
    }

    #[test]
    fn quadrant_filter_restricts_targets() {
        let mut sn = small_network(9);
        let all = run(&mut sn, "SELECT COUNT(value) FROM sensors");
        let quad = run(
            &mut sn,
            "SELECT COUNT(value) FROM sensors WHERE loc IN NORTH_EAST_QUADRANT",
        );
        let all_count = all.last().expect("one epoch").ground_truth.unwrap();
        let quad_count = quad.last().expect("one epoch").ground_truth.unwrap();
        assert!(quad_count < all_count);
    }

    #[test]
    fn mean_coverage_is_reported() {
        let mut sn = small_network(10);
        let exec = run(
            &mut sn,
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 1s FOR 5s",
        );
        assert!(exec.mean_coverage() > 0.9);
    }
}
