//! Lowering parsed queries to executable plans.
//!
//! Planning resolves named regions through the [`RegionCatalog`],
//! validates the projection against the dialect's schema (`loc` plus
//! one measurement column per node), and produces the programmatic
//! [`SnapshotQuery`] plus the sampling schedule
//! (`interval_ticks`/`epochs`, from `SAMPLE INTERVAL … FOR …`).
//!
//! Planning is a *pure function* of `(query, catalog)` — no network,
//! no clock, no ambient state — which is load-bearing twice over: the
//! SQL path and the programmatic API provably agree
//! (`tests/query_dialect.rs` checks the lowering against hand-built
//! [`SnapshotQuery`] values), and the serving layer ([`crate::serve`])
//! may cache plans by normalized text and batch-plan cache misses on
//! a worker pool without observable effect. Everything reachable from
//! here is deterministic: errors are typed [`QueryError`]s with
//! source positions, never panics.

use crate::ast::{Condition, History, Projection, Query, Region};
use crate::catalog::RegionCatalog;
use crate::error::QueryError;
use snapshot_core::{QueryMode, SnapshotQuery, SpatialPredicate, ValueFilter};

/// An executable plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The per-epoch query to execute.
    pub query: SnapshotQuery,
    /// Whether node locations are projected (drill-through output).
    pub project_loc: bool,
    /// Ticks between samples.
    pub interval_ticks: u64,
    /// Number of sampling epochs.
    pub epochs: u64,
    /// Time-travel clause: the query plans against stored snapshot
    /// versions (`crate::history`) instead of a live scan.
    pub history: Option<History>,
}

/// Plan a parsed query.
pub fn plan(q: &Query, catalog: &RegionCatalog) -> Result<QueryPlan, QueryError> {
    if !q.table.eq_ignore_ascii_case("sensors") {
        return Err(QueryError::plan(format!(
            "unknown table `{}` (this dialect exposes only `sensors`)",
            q.table
        )));
    }

    let mut predicate = SpatialPredicate::All;
    let mut seen_spatial = false;
    let mut value_filter: Option<ValueFilter> = None;
    for cond in &q.conditions {
        match cond {
            Condition::Spatial(region) => {
                if seen_spatial {
                    return Err(QueryError::plan(
                        "at most one spatial condition is supported per query",
                    ));
                }
                seen_spatial = true;
                predicate = lower_region(region, catalog)?;
            }
            Condition::Value {
                column,
                op,
                literal,
            } => {
                if value_filter.is_some() {
                    return Err(QueryError::plan(
                        "at most one value condition is supported per query",
                    ));
                }
                if column.eq_ignore_ascii_case("loc") {
                    return Err(QueryError::plan(
                        "`loc` is filtered with `loc IN <region>`, not a comparison",
                    ));
                }
                if !is_known_column(column) {
                    return Err(QueryError::plan(format!("unknown column `{column}`")));
                }
                value_filter = Some(ValueFilter::new(*op, *literal));
            }
        }
    }

    let (aggregate, project_loc) = match &q.projection {
        Projection::All => (None, true),
        Projection::Columns(cols) => {
            for c in cols {
                if !is_known_column(c) {
                    return Err(QueryError::plan(format!(
                        "unknown column `{c}` (this dialect exposes `loc` and one measurement column)"
                    )));
                }
            }
            (None, cols.iter().any(|c| c.eq_ignore_ascii_case("loc")))
        }
        Projection::Aggregate { agg, column } => {
            if !column.eq_ignore_ascii_case("loc") && column != "*" && !is_known_column(column) {
                return Err(QueryError::plan(format!("unknown column `{column}`")));
            }
            if column.eq_ignore_ascii_case("loc") {
                return Err(QueryError::plan("cannot aggregate over `loc`"));
            }
            (Some(*agg), false)
        }
    };

    let mode = if q.use_snapshot {
        QueryMode::Snapshot
    } else {
        QueryMode::Regular
    };
    let (interval_ticks, epochs) = match q.sample {
        None => (1, 1),
        Some(s) => (s.interval_ticks, s.epochs()),
    };

    if let Some(history) = q.history {
        if q.sample.is_some() {
            return Err(QueryError::plan(
                "time-travel queries cannot carry a sampling schedule: \
                 `BETWEEN <t1> AND <t2>` already yields one epoch per stored version",
            ));
        }
        if let History::Between(from, to) = history {
            if from > to {
                return Err(QueryError::plan(format!(
                    "empty history window: BETWEEN {from} AND {to}"
                )));
            }
        }
    }

    Ok(QueryPlan {
        query: SnapshotQuery {
            predicate,
            aggregate,
            mode,
            prefer_representative_routing: false,
            value_filter,
        },
        project_loc,
        interval_ticks,
        epochs,
        history: q.history,
    })
}

fn lower_region(region: &Region, catalog: &RegionCatalog) -> Result<SpatialPredicate, QueryError> {
    match region {
        Region::Rect { x0, y0, x1, y1 } => {
            if x0 > x1 || y0 > y1 {
                return Err(QueryError::plan(format!(
                    "empty rectangle ({x0},{y0})..({x1},{y1})"
                )));
            }
            Ok(SpatialPredicate::Rect {
                x0: *x0,
                y0: *y0,
                x1: *x1,
                y1: *y1,
            })
        }
        Region::Circle { x, y, r } => {
            if *r < 0.0 {
                return Err(QueryError::plan(format!("negative radius {r}")));
            }
            Ok(SpatialPredicate::Circle {
                x: *x,
                y: *y,
                r: *r,
            })
        }
        Region::Named(name) => catalog.lookup(name).ok_or_else(|| {
            QueryError::plan(format!(
                "unknown region `{name}` (defined: {})",
                catalog.names().collect::<Vec<_>>().join(", ")
            ))
        }),
    }
}

/// The dialect's schema: `loc` plus any single measurement name
/// (deployments name their sensed quantity freely: `temperature`,
/// `wind_speed`, `value`, ...).
fn is_known_column(name: &str) -> bool {
    !name.is_empty() && name != "*"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use snapshot_core::Aggregate;

    fn plan_str(s: &str) -> Result<QueryPlan, QueryError> {
        plan(&parse(s).unwrap(), &RegionCatalog::with_quadrants())
    }

    #[test]
    fn the_papers_example_plans() {
        let p = plan_str(
            "SELECT loc, temperature FROM sensors WHERE loc IN SOUTH_EAST_QUADRANT \
             SAMPLE INTERVAL 1s FOR 5min USE SNAPSHOT",
        )
        .unwrap();
        assert_eq!(p.query.mode, QueryMode::Snapshot);
        assert_eq!(p.query.aggregate, None);
        assert!(p.project_loc);
        assert_eq!(p.epochs, 300);
        assert_eq!(p.interval_ticks, 1);
        assert!(matches!(p.query.predicate, SpatialPredicate::Rect { .. }));
    }

    #[test]
    fn aggregates_lower_to_core_aggregates() {
        let p = plan_str("SELECT SUM(wind_speed) FROM sensors").unwrap();
        assert_eq!(p.query.aggregate, Some(Aggregate::Sum));
        assert_eq!(p.query.mode, QueryMode::Regular);
        assert_eq!(p.epochs, 1);
    }

    #[test]
    fn unknown_table_is_rejected() {
        let err = plan_str("SELECT * FROM actuators").unwrap_err();
        assert!(err.to_string().contains("actuators"));
    }

    #[test]
    fn unknown_region_lists_alternatives() {
        let err = plan_str("SELECT * FROM sensors WHERE loc IN NOWHERE").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("NOWHERE"));
        assert!(msg.contains("SOUTH_EAST_QUADRANT"));
    }

    #[test]
    fn inverted_rect_is_rejected() {
        let err =
            plan_str("SELECT * FROM sensors WHERE loc IN RECT(0.5, 0.5, 0.1, 0.9)").unwrap_err();
        assert!(err.to_string().contains("empty rectangle"));
    }

    #[test]
    fn negative_radius_is_rejected() {
        let err = plan_str("SELECT * FROM sensors WHERE loc IN CIRCLE(0.5, 0.5, -1)").unwrap_err();
        assert!(err.to_string().contains("negative radius"));
    }

    #[test]
    fn aggregating_loc_is_rejected() {
        let err = plan_str("SELECT AVG(loc) FROM sensors").unwrap_err();
        assert!(err.to_string().contains("loc"));
    }

    #[test]
    fn value_predicates_lower_to_filters() {
        use snapshot_core::Comparison;
        let p = plan_str("SELECT AVG(wind) FROM sensors WHERE wind > 5 USE SNAPSHOT").unwrap();
        assert_eq!(
            p.query.value_filter,
            Some(ValueFilter::new(Comparison::Gt, 5.0))
        );
        assert!(matches!(p.query.predicate, SpatialPredicate::All));
    }

    #[test]
    fn combined_conditions_lower_together() {
        let p =
            plan_str("SELECT COUNT(*) FROM sensors WHERE loc IN SOUTH_WEST_QUADRANT AND wind >= 5")
                .unwrap();
        assert!(matches!(p.query.predicate, SpatialPredicate::Rect { .. }));
        assert!(p.query.value_filter.is_some());
    }

    #[test]
    fn duplicate_conditions_are_rejected() {
        let err = plan_str(
            "SELECT * FROM sensors WHERE loc IN SOUTH_WEST_QUADRANT AND loc IN NORTH_EAST_QUADRANT",
        )
        .unwrap_err();
        assert!(err.to_string().contains("one spatial"));
        let err = plan_str("SELECT * FROM sensors WHERE a > 1 AND b < 2").unwrap_err();
        assert!(err.to_string().contains("one value"));
    }

    #[test]
    fn comparing_loc_is_rejected() {
        let err =
            plan_str("SELECT * FROM sensors WHERE loc IN RECT(0,0,1,1) AND wind > 1").unwrap();
        let _ = err;
        let err =
            plan_str("SELECT * FROM sensors WHERE wind > 1 AND loc IN RECT(0,0,1,1)").unwrap();
        let _ = err;
        // `loc > 3` is a parse-level Value condition; the planner rejects it.
        // (The parser sees `loc` as a keyword, so this arrives as a parse error instead.)
        assert!(parse("SELECT * FROM sensors WHERE loc > 3").is_err());
    }

    #[test]
    fn time_travel_clauses_plan() {
        let p = plan_str("SELECT AVG(temperature) FROM sensors AS OF 120").unwrap();
        assert_eq!(p.history, Some(History::AsOf(120)));
        assert_eq!(p.epochs, 1);
        let p = plan_str("SELECT COUNT(*) FROM sensors BETWEEN 40 AND 80 USE SNAPSHOT").unwrap();
        assert_eq!(p.history, Some(History::Between(40, 80)));
        assert_eq!(p.query.mode, QueryMode::Snapshot);
    }

    #[test]
    fn inverted_history_window_is_rejected() {
        let err = plan_str("SELECT * FROM sensors BETWEEN 80 AND 40").unwrap_err();
        assert!(err.to_string().contains("empty history window"));
    }

    #[test]
    fn history_with_sampling_is_rejected() {
        let err = plan_str("SELECT AVG(wind) FROM sensors AS OF 10 SAMPLE INTERVAL 1s FOR 5min")
            .unwrap_err();
        assert!(err.to_string().contains("sampling schedule"));
    }

    #[test]
    fn count_star_plans() {
        let p = plan_str("SELECT COUNT(*) FROM sensors USE SNAPSHOT").unwrap();
        assert_eq!(p.query.aggregate, Some(Aggregate::Count));
        assert_eq!(p.query.mode, QueryMode::Snapshot);
    }
}
