//! Tokenizer for the query dialect.
//!
//! Keywords are case-insensitive, identifiers keep their spelling
//! (named regions like `SOUTH_EAST_QUADRANT` are identifiers), numbers
//! are `f64` literals, and durations (`1s`, `5min`, `250ms`) lex as a
//! number immediately followed by a unit identifier.

use crate::error::QueryError;

/// A token plus its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub pos: usize,
}

/// The dialect's tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (uppercased).
    Keyword(Keyword),
    /// An identifier (original spelling preserved).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=` (also `<>`)
    Ne,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    In,
    And,
    Sample,
    Interval,
    For,
    Use,
    Snapshot,
    Rect,
    Circle,
    Loc,
    As,
    Of,
    Between,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "IN" => Keyword::In,
            "AND" => Keyword::And,
            "SAMPLE" => Keyword::Sample,
            "INTERVAL" => Keyword::Interval,
            "FOR" => Keyword::For,
            "USE" => Keyword::Use,
            "SNAPSHOT" => Keyword::Snapshot,
            "RECT" => Keyword::Rect,
            "CIRCLE" => Keyword::Circle,
            "LOC" => Keyword::Loc,
            "AS" => Keyword::As,
            "OF" => Keyword::Of,
            "BETWEEN" => Keyword::Between,
            _ => return None,
        })
    }
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    pos: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    pos: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    pos: i,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    pos: i,
                });
                i += 1;
            }
            '<' => match bytes.get(i + 1).map(|&b| b as char) {
                Some('=') => {
                    out.push(Spanned {
                        token: Token::Le,
                        pos: i,
                    });
                    i += 2;
                }
                Some('>') => {
                    out.push(Spanned {
                        token: Token::Ne,
                        pos: i,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Spanned {
                        token: Token::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::lex(i, "expected `!=`".to_string()));
                }
            }
            '-' | '.' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut seen_dot = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !seen_dot {
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| QueryError::lex(start, format!("bad number `{text}`")))?;
                out.push(Spanned {
                    token: Token::Number(value),
                    pos: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                match Keyword::from_str(word) {
                    Some(k) => out.push(Spanned {
                        token: Token::Keyword(k),
                        pos: start,
                    }),
                    None => out.push(Spanned {
                        token: Token::Ident(word.to_owned()),
                        pos: start,
                    }),
                }
            }
            other => {
                return Err(QueryError::lex(
                    i,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select FROM Where uSe"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Where),
                Token::Keyword(Keyword::Use),
            ]
        );
    }

    #[test]
    fn time_travel_keywords_lex() {
        assert_eq!(
            kinds("as OF between"),
            vec![
                Token::Keyword(Keyword::As),
                Token::Keyword(Keyword::Of),
                Token::Keyword(Keyword::Between),
            ]
        );
    }

    #[test]
    fn identifiers_keep_their_spelling() {
        assert_eq!(
            kinds("temperature SOUTH_EAST_QUADRANT"),
            vec![
                Token::Ident("temperature".into()),
                Token::Ident("SOUTH_EAST_QUADRANT".into()),
            ]
        );
    }

    #[test]
    fn numbers_lex_including_negatives_and_decimals() {
        assert_eq!(
            kinds("1 -2.5 0.01"),
            vec![Token::Number(1.0), Token::Number(-2.5), Token::Number(0.01)]
        );
    }

    #[test]
    fn durations_lex_as_number_then_ident() {
        assert_eq!(
            kinds("1s 5min"),
            vec![
                Token::Number(1.0),
                Token::Ident("s".into()),
                Token::Number(5.0),
                Token::Ident("min".into()),
            ]
        );
    }

    #[test]
    fn punctuation_round_trips() {
        assert_eq!(
            kinds("avg ( temp ) , *"),
            vec![
                Token::Ident("avg".into()),
                Token::LParen,
                Token::Ident("temp".into()),
                Token::RParen,
                Token::Comma,
                Token::Star,
            ]
        );
    }

    #[test]
    fn comparison_operators_lex() {
        assert_eq!(
            kinds("< <= > >= != <> ="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Eq,
            ]
        );
    }

    #[test]
    fn bare_bang_is_rejected() {
        assert!(tokenize("wind ! 3").is_err());
    }

    #[test]
    fn garbage_is_rejected_with_position() {
        let err = tokenize("SELECT ; FROM").unwrap_err();
        assert_eq!(err, QueryError::lex(7, "unexpected character `;`"));
    }

    #[test]
    fn positions_point_at_token_starts() {
        let toks = tokenize("SELECT avg").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 7);
    }
}
