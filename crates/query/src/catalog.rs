//! Named spatial regions.
//!
//! The paper's example filters on `loc in SHOUTH_EAST_QUANDRANT`
//! (sic). Named regions make spatial predicates readable for
//! location-aware deployments; the catalog maps names to concrete
//! predicates, pre-populated with the four quadrants of the unit
//! square the paper's simulations use
//! ([`RegionCatalog::with_quadrants`], south = low `y`).
//!
//! Resolution happens at *planning* time ([`crate::planner::plan`]),
//! so an unknown name is a typed [`crate::QueryError`] before any
//! node is contacted, and a catalog edit never changes the meaning of
//! an already-compiled plan — which is what lets the serving layer
//! ([`crate::serve`]) cache plans keyed on query text alone. Names
//! are case-insensitive and stored in a `BTreeMap`, so
//! [`RegionCatalog::names`] listings are deterministic. QUERIES.md §4
//! is the user-facing reference.

use snapshot_core::SpatialPredicate;
use std::collections::BTreeMap;

/// A case-insensitive name -> region mapping.
#[derive(Debug, Clone, Default)]
pub struct RegionCatalog {
    regions: BTreeMap<String, SpatialPredicate>,
}

impl RegionCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        RegionCatalog::default()
    }

    /// A catalog with the four quadrants of the unit square
    /// (`NORTH_WEST_QUADRANT`, `NORTH_EAST_QUADRANT`,
    /// `SOUTH_WEST_QUADRANT`, `SOUTH_EAST_QUADRANT`), with south = low
    /// `y` and west = low `x`.
    pub fn with_quadrants() -> Self {
        let mut c = RegionCatalog::new();
        c.define(
            "SOUTH_WEST_QUADRANT",
            SpatialPredicate::Rect {
                x0: 0.0,
                y0: 0.0,
                x1: 0.5,
                y1: 0.5,
            },
        );
        c.define(
            "SOUTH_EAST_QUADRANT",
            SpatialPredicate::Rect {
                x0: 0.5,
                y0: 0.0,
                x1: 1.0,
                y1: 0.5,
            },
        );
        c.define(
            "NORTH_WEST_QUADRANT",
            SpatialPredicate::Rect {
                x0: 0.0,
                y0: 0.5,
                x1: 0.5,
                y1: 1.0,
            },
        );
        c.define(
            "NORTH_EAST_QUADRANT",
            SpatialPredicate::Rect {
                x0: 0.5,
                y0: 0.5,
                x1: 1.0,
                y1: 1.0,
            },
        );
        c
    }

    /// Define (or redefine) a named region.
    pub fn define(&mut self, name: &str, region: SpatialPredicate) {
        self.regions.insert(name.to_ascii_uppercase(), region);
    }

    /// Look up a region by name (case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<SpatialPredicate> {
        self.regions.get(&name.to_ascii_uppercase()).copied()
    }

    /// All defined names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.regions.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_netsim::topology::Position;

    #[test]
    fn quadrants_cover_the_unit_square() {
        let c = RegionCatalog::with_quadrants();
        assert_eq!(c.names().count(), 4);
        let p = Position::new(0.75, 0.25);
        assert!(c.lookup("south_east_quadrant").unwrap().matches(p));
        assert!(!c.lookup("NORTH_WEST_QUADRANT").unwrap().matches(p));
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let mut c = RegionCatalog::new();
        c.define("Parking_Lot", SpatialPredicate::All);
        assert!(c.lookup("PARKING_LOT").is_some());
        assert!(c.lookup("parking_lot").is_some());
        assert!(c.lookup("garage").is_none());
    }

    #[test]
    fn redefinition_overwrites() {
        let mut c = RegionCatalog::new();
        c.define("ZONE", SpatialPredicate::All);
        c.define(
            "zone",
            SpatialPredicate::Rect {
                x0: 0.0,
                y0: 0.0,
                x1: 0.1,
                y1: 0.1,
            },
        );
        let got = c.lookup("ZONE").unwrap();
        assert!(matches!(got, SpatialPredicate::Rect { .. }));
        assert_eq!(c.names().count(), 1);
    }
}
