//! Error type for the query pipeline.

use std::fmt;

/// Errors from lexing, parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The lexer met a character it cannot tokenize.
    Lex {
        /// Byte offset in the input.
        pos: usize,
        /// Explanation.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Byte offset in the input.
        pos: usize,
        /// Explanation.
        message: String,
    },
    /// Planning failed (unknown region, unsupported construct, bad
    /// sampling schedule).
    Plan {
        /// Explanation.
        message: String,
    },
    /// A time-travel query failed against the snapshot store (no
    /// version in range, corrupt store, checkpoint replay error).
    History {
        /// Explanation, including the offending tick/version where known.
        message: String,
    },
}

impl QueryError {
    pub(crate) fn lex(pos: usize, message: impl Into<String>) -> Self {
        QueryError::Lex {
            pos,
            message: message.into(),
        }
    }

    pub(crate) fn parse(pos: usize, message: impl Into<String>) -> Self {
        QueryError::Parse {
            pos,
            message: message.into(),
        }
    }

    pub(crate) fn plan(message: impl Into<String>) -> Self {
        QueryError::Plan {
            message: message.into(),
        }
    }

    pub(crate) fn history(message: impl Into<String>) -> Self {
        QueryError::History {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            QueryError::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            QueryError::Plan { message } => write!(f, "planning error: {message}"),
            QueryError::History { message } => write!(f, "history error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_positions() {
        let e = QueryError::lex(7, "bad char");
        assert!(e.to_string().contains("byte 7"));
        let e = QueryError::parse(3, "expected FROM");
        assert!(e.to_string().contains("FROM"));
        let e = QueryError::plan("unknown region");
        assert!(e.to_string().contains("unknown region"));
        let e = QueryError::history("no checkpoint at or before tick 7");
        assert!(e.to_string().contains("history error"));
    }
}
