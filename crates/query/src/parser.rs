//! Recursive-descent parser for the query dialect.
//!
//! ```text
//! query     := SELECT projection FROM ident
//!              [ history ]
//!              [ WHERE condition (AND condition)* ]
//!              [ SAMPLE INTERVAL duration [ FOR duration ] ]
//!              [ USE SNAPSHOT ]
//! history   := AS OF tick | BETWEEN tick AND tick
//! projection := '*' | agg '(' ident ')' | ident (',' ident)*
//! condition := LOC IN region
//!            | ident cmp number   -- e.g. temperature > 5
//! cmp       := '<' | '<=' | '>' | '>=' | '=' | '!=' | '<>'
//! region    := RECT '(' n ',' n ',' n ',' n ')'
//!            | CIRCLE '(' n ',' n ',' n ')'
//!            | ident
//! duration  := number ident       -- e.g. 1s, 5min, 250ms
//! tick      := number             -- a non-negative integer
//! ```
//!
//! `BETWEEN`'s `AND` is consumed inside the history clause, before the
//! optional `WHERE` is looked at, so it never collides with the
//! conjunction `AND` of the condition list.

use crate::ast::{Condition, History, Projection, Query, Region, Sample};
use crate::error::QueryError;
use crate::lexer::{tokenize, Keyword, Spanned, Token};
use snapshot_core::{Aggregate, Comparison};

/// Parse a query string.
///
/// ```
/// use snapshot_query::parse;
///
/// let q = parse(
///     "SELECT AVG(wind_speed) FROM sensors \
///      WHERE loc IN RECT(0, 0, 0.5, 0.5) AND wind_speed > 5 \
///      USE SNAPSHOT",
/// )
/// .unwrap();
/// assert!(q.use_snapshot);
/// assert_eq!(q.conditions.len(), 2);
/// ```
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let q = p.query()?;
    if let Some(tok) = p.peek() {
        return Err(QueryError::parse(
            tok.pos,
            format!("trailing input: {:?}", tok.token),
        ));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> usize {
        self.peek().map_or(self.input_len, |t| t.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if matches!(self.peek(), Some(Spanned { token: Token::Keyword(kk), .. }) if *kk == k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), QueryError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(QueryError::parse(self.here(), format!("expected {k:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) => Ok(s),
            Some(Spanned { token, pos }) => Err(QueryError::parse(
                pos,
                format!("expected identifier, got {token:?}"),
            )),
            None => Err(QueryError::parse(
                self.input_len,
                "expected identifier, got end of input",
            )),
        }
    }

    fn expect_number(&mut self) -> Result<f64, QueryError> {
        match self.next() {
            Some(Spanned {
                token: Token::Number(n),
                ..
            }) => Ok(n),
            Some(Spanned { token, pos }) => Err(QueryError::parse(
                pos,
                format!("expected number, got {token:?}"),
            )),
            None => Err(QueryError::parse(
                self.input_len,
                "expected number, got end of input",
            )),
        }
    }

    fn expect_token(&mut self, want: &Token, what: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(Spanned { token, .. }) if token == *want => Ok(()),
            Some(Spanned { token, pos }) => Err(QueryError::parse(
                pos,
                format!("expected {what}, got {token:?}"),
            )),
            None => Err(QueryError::parse(
                self.input_len,
                format!("expected {what}, got end of input"),
            )),
        }
    }

    /// A column name: any identifier, or the keyword `loc` (which the
    /// lexer reserves for WHERE clauses but is also a projectable
    /// column in the paper's examples).
    fn expect_column(&mut self) -> Result<String, QueryError> {
        if self.eat_keyword(Keyword::Loc) {
            return Ok("loc".to_owned());
        }
        self.expect_ident()
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword(Keyword::Select)?;
        let projection = self.projection()?;
        self.expect_keyword(Keyword::From)?;
        let table = self.expect_ident()?;

        let history = if self.eat_keyword(Keyword::As) {
            self.expect_keyword(Keyword::Of)?;
            Some(History::AsOf(self.tick()?))
        } else if self.eat_keyword(Keyword::Between) {
            let from = self.tick()?;
            self.expect_keyword(Keyword::And)?;
            let to = self.tick()?;
            Some(History::Between(from, to))
        } else {
            None
        };

        let mut conditions = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            loop {
                conditions.push(self.condition()?);
                if !self.eat_keyword(Keyword::And) {
                    break;
                }
            }
        }

        let sample = if self.eat_keyword(Keyword::Sample) {
            self.expect_keyword(Keyword::Interval)?;
            let interval = self.duration()?;
            let for_ticks = if self.eat_keyword(Keyword::For) {
                Some(self.duration()?)
            } else {
                None
            };
            Some(Sample {
                interval_ticks: interval.max(1),
                for_ticks,
            })
        } else {
            None
        };

        let use_snapshot = if self.eat_keyword(Keyword::Use) {
            self.expect_keyword(Keyword::Snapshot)?;
            true
        } else {
            false
        };

        Ok(Query {
            projection,
            table,
            conditions,
            sample,
            use_snapshot,
            history,
        })
    }

    /// A simulation tick: a non-negative integer literal.
    fn tick(&mut self) -> Result<u64, QueryError> {
        let at = self.here();
        let n = self.expect_number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(QueryError::parse(at, "ticks must be non-negative integers"));
        }
        Ok(n as u64)
    }

    fn condition(&mut self) -> Result<Condition, QueryError> {
        if self.eat_keyword(Keyword::Loc) {
            self.expect_keyword(Keyword::In)?;
            return Ok(Condition::Spatial(self.region()?));
        }
        let column = self.expect_ident()?;
        let op = self.comparison()?;
        let literal = self.expect_number()?;
        Ok(Condition::Value {
            column,
            op,
            literal,
        })
    }

    fn comparison(&mut self) -> Result<Comparison, QueryError> {
        match self.next() {
            Some(Spanned {
                token: Token::Lt, ..
            }) => Ok(Comparison::Lt),
            Some(Spanned {
                token: Token::Le, ..
            }) => Ok(Comparison::Le),
            Some(Spanned {
                token: Token::Gt, ..
            }) => Ok(Comparison::Gt),
            Some(Spanned {
                token: Token::Ge, ..
            }) => Ok(Comparison::Ge),
            Some(Spanned {
                token: Token::Eq, ..
            }) => Ok(Comparison::Eq),
            Some(Spanned {
                token: Token::Ne, ..
            }) => Ok(Comparison::Ne),
            Some(Spanned { token, pos }) => Err(QueryError::parse(
                pos,
                format!("expected comparison operator, got {token:?}"),
            )),
            None => Err(QueryError::parse(
                self.input_len,
                "expected comparison operator, got end of input",
            )),
        }
    }

    fn projection(&mut self) -> Result<Projection, QueryError> {
        if matches!(
            self.peek(),
            Some(Spanned {
                token: Token::Star,
                ..
            })
        ) {
            self.pos += 1;
            return Ok(Projection::All);
        }
        let first = self.expect_column()?;
        // Aggregate call?
        if matches!(
            self.peek(),
            Some(Spanned {
                token: Token::LParen,
                ..
            })
        ) {
            let agg = Aggregate::parse(&first).ok_or_else(|| {
                QueryError::parse(self.here(), format!("unknown aggregate `{first}`"))
            })?;
            self.pos += 1; // '('
            let column = if matches!(
                self.peek(),
                Some(Spanned {
                    token: Token::Star,
                    ..
                })
            ) {
                self.pos += 1;
                "*".to_owned()
            } else {
                self.expect_column()?
            };
            self.expect_token(&Token::RParen, "`)`")?;
            return Ok(Projection::Aggregate { agg, column });
        }
        // Column list.
        let mut cols = vec![first];
        while matches!(
            self.peek(),
            Some(Spanned {
                token: Token::Comma,
                ..
            })
        ) {
            self.pos += 1;
            cols.push(self.expect_column()?);
        }
        Ok(Projection::Columns(cols))
    }

    fn region(&mut self) -> Result<Region, QueryError> {
        if self.eat_keyword(Keyword::Rect) {
            self.expect_token(&Token::LParen, "`(`")?;
            let x0 = self.expect_number()?;
            self.expect_token(&Token::Comma, "`,`")?;
            let y0 = self.expect_number()?;
            self.expect_token(&Token::Comma, "`,`")?;
            let x1 = self.expect_number()?;
            self.expect_token(&Token::Comma, "`,`")?;
            let y1 = self.expect_number()?;
            self.expect_token(&Token::RParen, "`)`")?;
            return Ok(Region::Rect { x0, y0, x1, y1 });
        }
        if self.eat_keyword(Keyword::Circle) {
            self.expect_token(&Token::LParen, "`(`")?;
            let x = self.expect_number()?;
            self.expect_token(&Token::Comma, "`,`")?;
            let y = self.expect_number()?;
            self.expect_token(&Token::Comma, "`,`")?;
            let r = self.expect_number()?;
            self.expect_token(&Token::RParen, "`)`")?;
            return Ok(Region::Circle { x, y, r });
        }
        Ok(Region::Named(self.expect_ident()?))
    }

    /// A duration: number + unit identifier. 1 tick = 1 second.
    fn duration(&mut self) -> Result<u64, QueryError> {
        let at = self.here();
        let n = self.expect_number()?;
        if n < 0.0 {
            return Err(QueryError::parse(at, "durations must be non-negative"));
        }
        let unit = self.expect_ident()?;
        let seconds = match unit.to_ascii_lowercase().as_str() {
            "ms" => n / 1000.0,
            "s" | "sec" | "secs" | "second" | "seconds" => n,
            "min" | "mins" | "minute" | "minutes" => n * 60.0,
            "h" | "hr" | "hour" | "hours" => n * 3600.0,
            other => {
                return Err(QueryError::parse(
                    at,
                    format!("unknown time unit `{other}`"),
                ));
            }
        };
        Ok(seconds.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_papers_example_parses() {
        let q = parse(
            "SELECT loc, temperature FROM sensors \
             WHERE loc IN SOUTH_EAST_QUADRANT \
             SAMPLE INTERVAL 1s FOR 5min \
             USE SNAPSHOT",
        )
        .unwrap();
        assert_eq!(
            q.projection,
            Projection::Columns(vec!["loc".into(), "temperature".into()])
        );
        assert_eq!(q.table, "sensors");
        assert_eq!(
            q.conditions,
            vec![Condition::Spatial(Region::Named(
                "SOUTH_EAST_QUADRANT".into()
            ))]
        );
        let s = q.sample.unwrap();
        assert_eq!(s.interval_ticks, 1);
        assert_eq!(s.for_ticks, Some(300));
        assert!(q.use_snapshot);
    }

    #[test]
    fn aggregates_parse() {
        let q = parse("SELECT AVG(temperature) FROM sensors").unwrap();
        assert_eq!(
            q.projection,
            Projection::Aggregate {
                agg: Aggregate::Avg,
                column: "temperature".into()
            }
        );
        assert!(!q.use_snapshot);
        let q = parse("SELECT COUNT(*) FROM sensors").unwrap();
        assert_eq!(
            q.projection,
            Projection::Aggregate {
                agg: Aggregate::Count,
                column: "*".into()
            }
        );
    }

    #[test]
    fn star_projection_parses() {
        let q = parse("SELECT * FROM sensors").unwrap();
        assert_eq!(q.projection, Projection::All);
    }

    #[test]
    fn explicit_rect_and_circle_regions_parse() {
        let q = parse("SELECT * FROM sensors WHERE loc IN RECT(0.1, 0.2, 0.5, 0.6)").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Spatial(Region::Rect {
                x0: 0.1,
                y0: 0.2,
                x1: 0.5,
                y1: 0.6
            })]
        );
        let q = parse("SELECT * FROM sensors WHERE loc IN CIRCLE(0.5, 0.5, 0.25)").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Spatial(Region::Circle {
                x: 0.5,
                y: 0.5,
                r: 0.25
            })]
        );
    }

    #[test]
    fn value_predicates_parse() {
        let q = parse("SELECT * FROM sensors WHERE wind_speed > 10").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Value {
                column: "wind_speed".into(),
                op: Comparison::Gt,
                literal: 10.0
            }]
        );
        let q = parse("SELECT * FROM sensors WHERE temp <= -2.5").unwrap();
        assert_eq!(
            q.conditions,
            vec![Condition::Value {
                column: "temp".into(),
                op: Comparison::Le,
                literal: -2.5
            }]
        );
    }

    #[test]
    fn conjunctions_parse_in_order() {
        let q = parse(
            "SELECT AVG(wind) FROM sensors              WHERE loc IN NORTH_EAST_QUADRANT AND wind >= 5              USE SNAPSHOT",
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 2);
        assert!(matches!(q.conditions[0], Condition::Spatial(_)));
        assert!(matches!(q.conditions[1], Condition::Value { .. }));
    }

    #[test]
    fn as_of_parses() {
        let q = parse("SELECT AVG(value) FROM sensors AS OF 40 USE SNAPSHOT").unwrap();
        assert_eq!(q.history, Some(History::AsOf(40)));
        assert!(q.use_snapshot);
    }

    #[test]
    fn between_parses_and_keeps_where_and_distinct() {
        let q = parse(
            "SELECT AVG(value) FROM sensors BETWEEN 40 AND 90 \
             WHERE loc IN NORTH_EAST_QUADRANT AND value > 5",
        )
        .unwrap();
        assert_eq!(q.history, Some(History::Between(40, 90)));
        assert_eq!(q.conditions.len(), 2);
    }

    #[test]
    fn fractional_or_negative_ticks_are_rejected() {
        let err = parse("SELECT * FROM sensors AS OF 40.5").unwrap_err();
        assert!(err.to_string().contains("non-negative integers"));
        let err = parse("SELECT * FROM sensors BETWEEN -1 AND 10").unwrap_err();
        assert!(err.to_string().contains("non-negative integers"));
    }

    #[test]
    fn as_without_of_is_rejected() {
        let err = parse("SELECT * FROM sensors AS 40").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn dangling_and_is_rejected() {
        assert!(parse("SELECT * FROM sensors WHERE loc IN RECT(0,0,1,1) AND").is_err());
    }

    #[test]
    fn missing_comparison_operator_is_rejected() {
        let err = parse("SELECT * FROM sensors WHERE wind 10").unwrap_err();
        assert!(err.to_string().contains("comparison"));
    }

    #[test]
    fn missing_from_is_a_parse_error() {
        let err = parse("SELECT *").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        assert!(err.to_string().contains("From"));
    }

    #[test]
    fn unknown_aggregate_is_rejected() {
        let err = parse("SELECT MEDIAN(x) FROM sensors").unwrap_err();
        assert!(err.to_string().contains("MEDIAN"));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let err = parse("SELECT * FROM sensors garbage here").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn bad_duration_unit_is_rejected() {
        let err = parse("SELECT * FROM sensors SAMPLE INTERVAL 3 fortnights").unwrap_err();
        assert!(err.to_string().contains("fortnights"));
    }

    #[test]
    fn negative_duration_is_rejected() {
        let err = parse("SELECT * FROM sensors SAMPLE INTERVAL -1 s").unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }

    #[test]
    fn use_without_snapshot_is_an_error() {
        let err = parse("SELECT * FROM sensors USE").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn sub_second_intervals_clamp_to_one_tick() {
        let q = parse("SELECT * FROM sensors SAMPLE INTERVAL 250ms FOR 2s").unwrap();
        let s = q.sample.unwrap();
        assert_eq!(s.interval_ticks, 1, "sub-tick intervals clamp to 1");
    }
}
