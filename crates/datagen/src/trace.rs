//! Time-indexed measurement traces.
//!
//! A [`Trace`] is the contract between workload generators and the
//! simulation: `value(node, t)` is the measurement node `N_i` would
//! report at time `t`. Traces are dense row-major matrices
//! (`steps x nodes`), which at the paper's scale (100 nodes x 5000
//! steps) is well under a megabyte.

use crate::error::DatagenError;
use snapshot_netsim::NodeId;

/// A dense matrix of per-node, per-timestep measurements.
///
/// ```
/// use snapshot_datagen::Trace;
/// use snapshot_netsim::NodeId;
///
/// let trace = Trace::from_series(&[vec![1.0, 2.0], vec![10.0, 20.0]]).unwrap();
/// assert_eq!(trace.nodes(), 2);
/// assert_eq!(trace.value(NodeId(1), 0), 10.0);
/// assert!((trace.correlation(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    nodes: usize,
    steps: usize,
    /// Row-major: `data[t * nodes + i]` is node `i` at time `t`.
    data: Vec<f64>,
}

impl Trace {
    /// An all-zero trace of the given shape.
    pub fn zeros(nodes: usize, steps: usize) -> Self {
        Trace {
            nodes,
            steps,
            data: vec![0.0; nodes * steps],
        }
    }

    /// Build from per-node series (each inner vector is one node's
    /// full time series; all must share a length).
    ///
    /// # Errors
    /// [`DatagenError::InvalidParameter`] when the series lengths
    /// differ or no series are supplied.
    pub fn from_series(series: &[Vec<f64>]) -> Result<Self, DatagenError> {
        if series.is_empty() {
            return Err(DatagenError::InvalidParameter {
                name: "series",
                reason: "at least one node series is required".into(),
            });
        }
        let steps = series[0].len();
        if steps == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "series",
                reason: "series must contain at least one time step".into(),
            });
        }
        if series.iter().any(|s| s.len() != steps) {
            return Err(DatagenError::InvalidParameter {
                name: "series",
                reason: "all node series must have equal length".into(),
            });
        }
        let nodes = series.len();
        let mut data = vec![0.0; nodes * steps];
        for (i, s) in series.iter().enumerate() {
            for (t, v) in s.iter().enumerate() {
                data[t * nodes + i] = *v;
            }
        }
        Ok(Trace { nodes, steps, data })
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of time steps.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Measurement of `node` at time `t`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access (programmer error — simulation
    /// drivers control both indices).
    #[inline]
    pub fn value(&self, node: NodeId, t: usize) -> f64 {
        assert!(node.index() < self.nodes, "node {node} out of bounds");
        assert!(
            t < self.steps,
            "time {t} out of bounds (steps {})",
            self.steps
        );
        self.data[t * self.nodes + node.index()]
    }

    /// Checked access.
    pub fn get(&self, node: NodeId, t: usize) -> Result<f64, DatagenError> {
        if node.index() >= self.nodes {
            return Err(DatagenError::OutOfBounds {
                what: "node",
                index: node.index(),
                bound: self.nodes,
            });
        }
        if t >= self.steps {
            return Err(DatagenError::OutOfBounds {
                what: "time",
                index: t,
                bound: self.steps,
            });
        }
        Ok(self.data[t * self.nodes + node.index()])
    }

    /// Overwrite one cell.
    pub fn set(&mut self, node: NodeId, t: usize, v: f64) {
        assert!(node.index() < self.nodes && t < self.steps);
        self.data[t * self.nodes + node.index()] = v;
    }

    /// One node's full series, copied out.
    pub fn series(&self, node: NodeId) -> Vec<f64> {
        (0..self.steps).map(|t| self.value(node, t)).collect()
    }

    /// All measurements at one instant.
    pub fn snapshot_at(&self, t: usize) -> &[f64] {
        assert!(t < self.steps);
        &self.data[t * self.nodes..(t + 1) * self.nodes]
    }

    /// Mean of one node's series.
    pub fn mean(&self, node: NodeId) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.series(node).iter().sum::<f64>() / self.steps as f64
    }

    /// Population variance of one node's series.
    pub fn variance(&self, node: NodeId) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        let m = self.mean(node);
        self.series(node)
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f64>()
            / self.steps as f64
    }

    /// Mean over all nodes of the per-node means — the statistic the
    /// paper reports for the weather data ("the average value ... was
    /// 5.8").
    pub fn grand_mean(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        (0..self.nodes)
            .map(|i| self.mean(NodeId::from_index(i)))
            .sum::<f64>()
            / self.nodes as f64
    }

    /// Mean over all nodes of the per-node variances ("the average
    /// variance 2.8").
    pub fn mean_variance(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        (0..self.nodes)
            .map(|i| self.variance(NodeId::from_index(i)))
            .sum::<f64>()
            / self.nodes as f64
    }

    /// Pearson correlation between two node series (NaN-free: returns
    /// 0 when either series is constant).
    pub fn correlation(&self, a: NodeId, b: NodeId) -> f64 {
        let sa = self.series(a);
        let sb = self.series(b);
        let n = sa.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let ma = sa.iter().sum::<f64>() / n;
        let mb = sb.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in sa.iter().zip(&sb) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        if va == 0.0 || vb == 0.0 {
            0.0
        } else {
            cov / (va.sqrt() * vb.sqrt())
        }
    }

    /// A new trace holding only time steps `[from, to)` — used to
    /// split long runs into windows (Figure 14 updates every 100
    /// units).
    pub fn window(&self, from: usize, to: usize) -> Trace {
        assert!(from <= to && to <= self.steps, "bad window [{from},{to})");
        let steps = to - from;
        let mut data = Vec::with_capacity(steps * self.nodes);
        data.extend_from_slice(&self.data[from * self.nodes..to * self.nodes]);
        Trace {
            nodes: self.nodes,
            steps,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Trace {
        Trace::from_series(&[vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]).unwrap()
    }

    #[test]
    fn from_series_lays_out_row_major() {
        let t = small();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.steps(), 3);
        assert_eq!(t.value(NodeId(0), 1), 2.0);
        assert_eq!(t.value(NodeId(1), 2), 30.0);
        assert_eq!(t.snapshot_at(0), &[1.0, 10.0]);
    }

    #[test]
    fn from_series_rejects_ragged_input() {
        let err = Trace::from_series(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, DatagenError::InvalidParameter { .. }));
        let err = Trace::from_series(&[]).unwrap_err();
        assert!(matches!(err, DatagenError::InvalidParameter { .. }));
        // Zero-step series would underflow every time-clamping consumer.
        let err = Trace::from_series(&[vec![], vec![]]).unwrap_err();
        assert!(matches!(err, DatagenError::InvalidParameter { .. }));
    }

    #[test]
    fn checked_access_reports_bounds() {
        let t = small();
        assert!(t.get(NodeId(0), 0).is_ok());
        assert!(matches!(
            t.get(NodeId(2), 0),
            Err(DatagenError::OutOfBounds { what: "node", .. })
        ));
        assert!(matches!(
            t.get(NodeId(0), 3),
            Err(DatagenError::OutOfBounds { what: "time", .. })
        ));
    }

    #[test]
    fn series_roundtrips() {
        let t = small();
        assert_eq!(t.series(NodeId(1)), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = small();
        assert!((t.mean(NodeId(0)) - 2.0).abs() < 1e-12);
        // var([1,2,3]) = 2/3
        assert!((t.variance(NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.grand_mean() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_linear_series_correlate_fully() {
        let t = small(); // node1 = 10 * node0
        assert!((t.correlation(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_have_zero_correlation() {
        let t = Trace::from_series(&[vec![5.0, 5.0, 5.0], vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(t.correlation(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn window_slices_time() {
        let t = small();
        let w = t.window(1, 3);
        assert_eq!(w.steps(), 2);
        assert_eq!(w.value(NodeId(0), 0), 2.0);
        assert_eq!(w.value(NodeId(1), 1), 30.0);
    }

    #[test]
    fn set_overwrites_one_cell() {
        let mut t = small();
        t.set(NodeId(0), 0, 99.0);
        assert_eq!(t.value(NodeId(0), 0), 99.0);
        assert_eq!(t.value(NodeId(1), 0), 10.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unchecked_access_panics_loudly() {
        let t = small();
        let _ = t.value(NodeId(5), 0);
    }
}
