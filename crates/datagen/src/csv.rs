//! Trace CSV I/O.
//!
//! Traces serialize to a plain CSV layout — one row per time step, one
//! column per node, with a `t,n0,n1,...` header — so experiment
//! outputs can be inspected with standard tooling and, conversely, the
//! paper's original weather dataset (or any real deployment log) can
//! be imported if available.

use crate::error::DatagenError;
use crate::trace::Trace;
use snapshot_netsim::NodeId;
use std::io::{BufRead, BufReader, Read, Write};

/// Write a trace as CSV.
pub fn write_trace<W: Write>(trace: &Trace, out: &mut W) -> Result<(), DatagenError> {
    write!(out, "t")?;
    for i in 0..trace.nodes() {
        write!(out, ",n{i}")?;
    }
    writeln!(out)?;
    for t in 0..trace.steps() {
        write!(out, "{t}")?;
        for i in 0..trace.nodes() {
            write!(out, ",{}", trace.value(NodeId::from_index(i), t))?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Read a trace from CSV produced by [`write_trace`] (or any CSV with
/// a leading time column and one numeric column per node).
pub fn read_trace<R: Read>(input: R) -> Result<Trace, DatagenError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();

    let (_, header) = lines.next().ok_or(DatagenError::Parse {
        line: 1,
        reason: "empty input".into(),
    })?;
    let header = header?;
    let n_cols = header.split(',').count();
    if n_cols < 2 {
        return Err(DatagenError::Parse {
            line: 1,
            reason: format!("expected `t,n0,...` header, got `{header}`"),
        });
    }
    let nodes = n_cols - 1;

    let mut series: Vec<Vec<f64>> = vec![Vec::new(); nodes];
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n_cols {
            return Err(DatagenError::Parse {
                line: idx + 1,
                reason: format!("expected {n_cols} fields, got {}", fields.len()),
            });
        }
        for (i, field) in fields[1..].iter().enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| DatagenError::Parse {
                line: idx + 1,
                reason: format!("`{field}` is not a number"),
            })?;
            series[i].push(v);
        }
    }
    Trace::from_series(&series)
}

/// Read a single-column series (one value per line, `#`-comments and
/// blank lines ignored) — the shape of raw weather-station logs.
pub fn read_series<R: Read>(input: R) -> Result<Vec<f64>, DatagenError> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let v: f64 = trimmed.parse().map_err(|_| DatagenError::Parse {
            line: idx + 1,
            reason: format!("`{trimmed}` is not a number"),
        })?;
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_csv() {
        let trace =
            Trace::from_series(&[vec![1.5, 2.5], vec![-3.0, 4.0], vec![0.0, 100.25]]).unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn header_is_human_readable() {
        let trace = Trace::from_series(&[vec![1.0], vec![2.0]]).unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("t,n0,n1\n"));
        assert!(text.contains("0,1,2"));
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let bad = "t,n0\n0,1.0\n1,not_a_number\n";
        let err = read_trace(bad.as_bytes()).unwrap_err();
        match err {
            DatagenError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other}"),
        }
        let ragged = "t,n0,n1\n0,1.0\n";
        assert!(matches!(
            read_trace(ragged.as_bytes()),
            Err(DatagenError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_trace(&b""[..]).is_err());
        let only_time = "t\n0\n";
        assert!(read_trace(only_time.as_bytes()).is_err());
    }

    #[test]
    fn series_reader_skips_comments_and_blanks() {
        let text = "# wind speed, m/s\n5.8\n\n6.1\n# gust\n9.0\n";
        let s = read_series(text.as_bytes()).unwrap();
        assert_eq!(s, vec![5.8, 6.1, 9.0]);
    }

    #[test]
    fn series_reader_rejects_garbage() {
        assert!(read_series(&b"1.0\nxyz\n"[..]).is_err());
    }

    #[test]
    fn blank_lines_in_trace_csv_are_skipped() {
        let text = "t,n0\n0,1.0\n\n1,2.0\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.steps(), 2);
    }
}
