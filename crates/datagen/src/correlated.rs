//! Spatially-correlated sensor fields (extension workload).
//!
//! The paper's synthetic workload correlates nodes through *class
//! membership*, independent of where nodes sit. Real deployments —
//! the meteorological scenario of the introduction — correlate nodes
//! through *space*: nearby nodes read similar values. This generator
//! produces such a field so ablation experiments can check that the
//! election protocol also exploits spatial correlation (nearby nodes
//! elect shared representatives) rather than only class structure.
//!
//! Model: a small set of latent "weather cells" placed in the unit
//! square, each following an independent smooth random walk; a node's
//! reading is an inverse-distance-weighted blend of the cell signals
//! plus sensor noise. Nodes that are close share almost the same
//! blend weights and therefore track each other tightly.

use crate::error::DatagenError;
use crate::trace::Trace;
use snapshot_netsim::rng::derive_seed;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_netsim::topology::Position;

/// Parameters of the spatially-correlated field generator.
#[derive(Debug, Clone)]
pub struct CorrelatedFieldConfig {
    /// Number of latent weather cells.
    pub n_cells: usize,
    /// Time steps to generate.
    pub steps: usize,
    /// Base level of every cell signal.
    pub base: f64,
    /// Per-step innovation std-dev of each cell's random walk.
    pub cell_sigma: f64,
    /// Mean-reversion coefficient of each cell signal.
    pub cell_phi: f64,
    /// Std-dev of i.i.d. per-reading sensor noise.
    pub noise_sigma: f64,
    /// Inverse-distance weighting exponent (2 = inverse square).
    pub idw_power: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorrelatedFieldConfig {
    fn default() -> Self {
        CorrelatedFieldConfig {
            n_cells: 4,
            steps: 100,
            base: 20.0,
            cell_sigma: 0.5,
            cell_phi: 0.97,
            noise_sigma: 0.05,
            idw_power: 2.0,
            seed: 0,
        }
    }
}

/// Generate a trace for nodes at the given positions.
///
/// # Errors
/// [`DatagenError::InvalidParameter`] on degenerate configurations.
pub fn correlated_field(
    positions: &[Position],
    cfg: &CorrelatedFieldConfig,
) -> Result<Trace, DatagenError> {
    if positions.is_empty() {
        return Err(DatagenError::InvalidParameter {
            name: "positions",
            reason: "at least one node is required".into(),
        });
    }
    if cfg.n_cells == 0 {
        return Err(DatagenError::InvalidParameter {
            name: "n_cells",
            reason: "must be >= 1".into(),
        });
    }
    if cfg.steps == 0 {
        return Err(DatagenError::InvalidParameter {
            name: "steps",
            reason: "must be >= 1".into(),
        });
    }
    if !(0.0..1.0).contains(&cfg.cell_phi) {
        return Err(DatagenError::InvalidParameter {
            name: "cell_phi",
            reason: "must be in [0,1)".into(),
        });
    }

    let mut rng = DetRng::seed_from_u64(derive_seed(cfg.seed, 0xF1E1D));

    // Place the latent cells.
    let cells: Vec<Position> = (0..cfg.n_cells)
        .map(|_| Position::new(rng.random_f64(), rng.random_f64()))
        .collect();

    // Precompute normalized IDW weights per node.
    let weights: Vec<Vec<f64>> = positions
        .iter()
        .map(|p| {
            let raw: Vec<f64> = cells
                .iter()
                .map(|c| {
                    let d = p.distance(c).max(1e-3);
                    d.powf(-cfg.idw_power)
                })
                .collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / sum).collect()
        })
        .collect();

    // Evolve cell signals, blend per node.
    let mut cell_vals = vec![cfg.base; cfg.n_cells];
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.steps); positions.len()];
    for _ in 0..cfg.steps {
        for v in cell_vals.iter_mut() {
            *v = cfg.base + cfg.cell_phi * (*v - cfg.base) + cfg.cell_sigma * gaussian(&mut rng);
        }
        for (i, w) in weights.iter().enumerate() {
            let blended: f64 = w.iter().zip(&cell_vals).map(|(w, v)| w * v).sum();
            series[i].push(blended + cfg.noise_sigma * gaussian(&mut rng));
        }
    }
    Trace::from_series(&series)
}

fn gaussian<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_f64();
        let u2: f64 = rng.random_f64();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_netsim::NodeId;

    fn grid_positions(side: usize) -> Vec<Position> {
        let step = 1.0 / side as f64;
        let mut out = Vec::new();
        for r in 0..side {
            for c in 0..side {
                out.push(Position::new(
                    (c as f64 + 0.5) * step,
                    (r as f64 + 0.5) * step,
                ));
            }
        }
        out
    }

    #[test]
    fn nearby_nodes_correlate_more_than_distant_ones() {
        let positions = grid_positions(5); // 25 nodes
        let cfg = CorrelatedFieldConfig {
            steps: 400,
            seed: 2,
            ..CorrelatedFieldConfig::default()
        };
        let trace = correlated_field(&positions, &cfg).unwrap();
        // Node 0 (corner) vs its grid neighbor (1) and the far corner (24).
        let near = trace.correlation(NodeId(0), NodeId(1));
        let far = trace.correlation(NodeId(0), NodeId(24));
        assert!(near > far, "near {near} should exceed far {far}");
        assert!(
            near > 0.9,
            "adjacent grid nodes should track tightly, got {near}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let positions = grid_positions(3);
        let cfg = CorrelatedFieldConfig::default();
        let a = correlated_field(&positions, &cfg).unwrap();
        let b = correlated_field(&positions, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn values_hover_around_base() {
        let positions = grid_positions(4);
        let cfg = CorrelatedFieldConfig {
            steps: 500,
            ..CorrelatedFieldConfig::default()
        };
        let trace = correlated_field(&positions, &cfg).unwrap();
        let gm = trace.grand_mean();
        assert!((gm - 20.0).abs() < 3.0, "grand mean {gm} far from base 20");
    }

    #[test]
    fn rejects_degenerate_configs() {
        let positions = grid_positions(2);
        let bad = [
            CorrelatedFieldConfig {
                n_cells: 0,
                ..CorrelatedFieldConfig::default()
            },
            CorrelatedFieldConfig {
                steps: 0,
                ..CorrelatedFieldConfig::default()
            },
            CorrelatedFieldConfig {
                cell_phi: 1.0,
                ..CorrelatedFieldConfig::default()
            },
        ];
        for cfg in bad {
            assert!(correlated_field(&positions, &cfg).is_err());
        }
        assert!(correlated_field(&[], &CorrelatedFieldConfig::default()).is_err());
    }
}
