//! Periodic (diurnal) measurement fields.
//!
//! The paper's Section 3 makes a pointed claim for correlation models:
//! "by modeling these correlations, we are able to capture trends
//! (like periodicity), with very few samples". The reason is
//! structural: if every node tracks a shared periodic signal `s(t)`
//! with its own gain and offset, `x_i(t) = α_i s(t) + β_i`, then any
//! two nodes are *exactly* affinely related at every instant —
//! `x_j = (α_j/α_i) x_i + (β_j − β_i α_j/α_i)` — so a two-sample
//! linear model of a neighbor predicts the entire cycle, including
//! phases never observed during training. A model of the node's own
//! history (e.g. "predict the last value" or "predict the training
//! mean") has no such luck.
//!
//! This generator produces exactly that structure: a shared sinusoid
//! (one "day"), per-node gain/offset, optional sensor noise, plus an
//! optional phase-shifted subpopulation to break the affine relation
//! for some pairs (nodes with different phases are *not* affinely
//! related, so the election must sort nodes by phase group).

use crate::error::DatagenError;
use crate::trace::Trace;
use snapshot_netsim::rng::derive_seed;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;

/// Parameters of the periodic-field generator.
#[derive(Debug, Clone)]
pub struct PeriodicConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Time steps to generate.
    pub steps: usize,
    /// Period of the shared cycle, steps (a "day").
    pub period: f64,
    /// Mean level of the shared signal.
    pub level: f64,
    /// Amplitude of the shared signal.
    pub amplitude: f64,
    /// Range of per-node gains `α_i`.
    pub gain_range: (f64, f64),
    /// Range of per-node offsets `β_i`.
    pub offset_range: (f64, f64),
    /// Std-dev of i.i.d. sensor noise added per reading.
    pub noise_sigma: f64,
    /// Fraction of nodes placed on a quarter-period phase shift
    /// (a second micro-climate); 0 keeps everyone in phase.
    pub shifted_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for PeriodicConfig {
    fn default() -> Self {
        PeriodicConfig {
            n_nodes: 100,
            steps: 200,
            period: 96.0, // 15-minute samples over a day
            level: 20.0,
            amplitude: 6.0,
            gain_range: (0.6, 1.4),
            offset_range: (-3.0, 3.0),
            noise_sigma: 0.05,
            shifted_fraction: 0.0,
            seed: 0,
        }
    }
}

impl PeriodicConfig {
    fn validate(&self) -> Result<(), DatagenError> {
        if self.n_nodes == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "n_nodes",
                reason: "must be >= 1".into(),
            });
        }
        if self.steps == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "steps",
                reason: "must be >= 1".into(),
            });
        }
        if self.period.is_nan() || self.period <= 0.0 {
            return Err(DatagenError::InvalidParameter {
                name: "period",
                reason: "must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.shifted_fraction) {
            return Err(DatagenError::InvalidParameter {
                name: "shifted_fraction",
                reason: "must be a fraction in [0,1]".into(),
            });
        }
        if self.gain_range.0 > self.gain_range.1 || self.offset_range.0 > self.offset_range.1 {
            return Err(DatagenError::InvalidParameter {
                name: "gain_range/offset_range",
                reason: "lower bound exceeds upper".into(),
            });
        }
        if self.noise_sigma < 0.0 {
            return Err(DatagenError::InvalidParameter {
                name: "noise_sigma",
                reason: "must be >= 0".into(),
            });
        }
        Ok(())
    }
}

/// The generated field plus its ground-truth structure.
#[derive(Debug, Clone)]
pub struct PeriodicData {
    /// The measurement trace.
    pub trace: Trace,
    /// Per-node gain `α_i`.
    pub gain: Vec<f64>,
    /// Per-node offset `β_i`.
    pub offset: Vec<f64>,
    /// `true` for nodes on the shifted phase.
    pub shifted: Vec<bool>,
}

/// Generate a periodic field.
pub fn periodic(cfg: &PeriodicConfig) -> Result<PeriodicData, DatagenError> {
    cfg.validate()?;
    let mut rng = DetRng::seed_from_u64(derive_seed(cfg.seed, 0x9E810D1C));

    let gain: Vec<f64> = (0..cfg.n_nodes)
        .map(|_| rng.random_range(cfg.gain_range.0..=cfg.gain_range.1))
        .collect();
    let offset: Vec<f64> = (0..cfg.n_nodes)
        .map(|_| rng.random_range(cfg.offset_range.0..=cfg.offset_range.1))
        .collect();
    let shifted: Vec<bool> = (0..cfg.n_nodes)
        .map(|_| cfg.shifted_fraction > 0.0 && rng.random_bool(cfg.shifted_fraction))
        .collect();

    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.steps); cfg.n_nodes];
    for t in 0..cfg.steps {
        let phase = std::f64::consts::TAU * t as f64 / cfg.period;
        let s_main = cfg.level + cfg.amplitude * phase.sin();
        let s_shifted = cfg.level + cfg.amplitude * (phase + std::f64::consts::FRAC_PI_2).sin();
        for i in 0..cfg.n_nodes {
            let s = if shifted[i] { s_shifted } else { s_main };
            let noise = if cfg.noise_sigma > 0.0 {
                cfg.noise_sigma * gaussian(&mut rng)
            } else {
                0.0
            };
            series[i].push(gain[i] * s + offset[i] + noise);
        }
    }
    Ok(PeriodicData {
        trace: Trace::from_series(&series)?,
        gain,
        offset,
        shifted,
    })
}

fn gaussian<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_f64();
        let u2: f64 = rng.random_f64();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_netsim::NodeId;

    #[test]
    fn same_phase_nodes_are_affinely_related() {
        let cfg = PeriodicConfig {
            noise_sigma: 0.0,
            ..PeriodicConfig::default()
        };
        let data = periodic(&cfg).unwrap();
        // Pearson correlation of noiseless affine images is exactly 1.
        let c = data.trace.correlation(NodeId(0), NodeId(1));
        assert!((c - 1.0).abs() < 1e-9, "correlation {c}");
    }

    #[test]
    fn shifted_nodes_break_the_affine_relation() {
        let cfg = PeriodicConfig {
            noise_sigma: 0.0,
            shifted_fraction: 0.5,
            steps: 192, // two full periods
            ..PeriodicConfig::default()
        };
        let data = periodic(&cfg).unwrap();
        let main = (0..cfg.n_nodes).find(|&i| !data.shifted[i]).unwrap();
        let shifted = (0..cfg.n_nodes).find(|&i| data.shifted[i]).unwrap();
        let c = data
            .trace
            .correlation(NodeId::from_index(main), NodeId::from_index(shifted));
        assert!(
            c.abs() < 0.5,
            "quarter-phase-shifted sinusoids should be weakly correlated, got {c}"
        );
    }

    #[test]
    fn two_samples_predict_the_whole_cycle() {
        // The paper's claim in miniature: fit a line mapping node 0's
        // reading to node 1's from only two early samples, then
        // predict node 1 at every other instant of the cycle —
        // including phases never seen during "training".
        let cfg = PeriodicConfig {
            noise_sigma: 0.0,
            ..PeriodicConfig::default()
        };
        let data = periodic(&cfg).unwrap();
        let x = |t: usize| data.trace.value(NodeId(0), t);
        let y = |t: usize| data.trace.value(NodeId(1), t);
        // Two samples a few steps apart (distinct x values).
        let (t1, t2) = (0usize, 7usize);
        let a = (y(t2) - y(t1)) / (x(t2) - x(t1));
        let b = y(t1) - a * x(t1);
        for t in 0..cfg.steps {
            let predicted = a * x(t) + b;
            assert!(
                (predicted - y(t)).abs() < 1e-6,
                "t={t}: predicted {predicted}, actual {}",
                y(t)
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            PeriodicConfig {
                n_nodes: 0,
                ..PeriodicConfig::default()
            },
            PeriodicConfig {
                steps: 0,
                ..PeriodicConfig::default()
            },
            PeriodicConfig {
                period: 0.0,
                ..PeriodicConfig::default()
            },
            PeriodicConfig {
                shifted_fraction: 1.5,
                ..PeriodicConfig::default()
            },
            PeriodicConfig {
                noise_sigma: -1.0,
                ..PeriodicConfig::default()
            },
            PeriodicConfig {
                gain_range: (2.0, 1.0),
                ..PeriodicConfig::default()
            },
        ];
        for cfg in bad {
            assert!(periodic(&cfg).is_err());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PeriodicConfig::default();
        assert_eq!(periodic(&cfg).unwrap().trace, periodic(&cfg).unwrap().trace);
    }
}
