//! The paper's Section 6.1 synthetic workload.
//!
//! > "For each node, we generated values following a random walk
//! > pattern, each with a randomly assigned step size in the range
//! > (0...1]. The initial value of each node was chosen uniformly in
//! > range [0...1000). We then randomly partitioned the nodes into K
//! > classes. Nodes belonging to the same class i were making a random
//! > step (upwards or downwards) with the same probability P_move\[i\].
//! > These probabilities were chosen uniformly in range [0.2...1]."
//!
//! The crucial property: all nodes of a class share the *same random
//! decisions* about when and in which direction to move (otherwise
//! class membership would induce no correlation and electing one
//! representative per class — Figure 6's headline result for K=1 —
//! would be impossible). Each node applies the class's shared
//! direction sequence scaled by its own step size, which makes
//! same-class nodes exact affine images of one another: precisely the
//! structure the paper's linear models capture.

use crate::error::DatagenError;
use crate::trace::Trace;
use snapshot_netsim::rng::derive_seed;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;

/// Parameters of the Section 6.1 workload.
#[derive(Debug, Clone)]
pub struct RandomWalkConfig {
    /// Number of sensor nodes (paper: 100).
    pub n_nodes: usize,
    /// Number of behavior classes `K` (paper sweeps 1..=100).
    pub n_classes: usize,
    /// Number of time steps to generate (paper: 100).
    pub steps: usize,
    /// Range for initial values (paper: `[0, 1000)`).
    pub initial_range: (f64, f64),
    /// Range for per-node step sizes (paper: `(0, 1]`).
    pub step_range: (f64, f64),
    /// Range for per-class move probabilities (paper: `[0.2, 1]` —
    /// "we excluded values less than 0.2 to make data more volatile").
    pub p_move_range: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl RandomWalkConfig {
    /// The paper's defaults: 100 nodes, 100 steps, initial values in
    /// `[0,1000)`, step sizes in `(0,1]`, move probabilities in `[0.2,1]`.
    pub fn paper_defaults(n_classes: usize, seed: u64) -> Self {
        RandomWalkConfig {
            n_nodes: 100,
            n_classes,
            steps: 100,
            initial_range: (0.0, 1000.0),
            step_range: (0.0, 1.0),
            p_move_range: (0.2, 1.0),
            seed,
        }
    }

    fn validate(&self) -> Result<(), DatagenError> {
        if self.n_nodes == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "n_nodes",
                reason: "must be at least 1".into(),
            });
        }
        if self.n_classes == 0 || self.n_classes > self.n_nodes {
            return Err(DatagenError::InvalidParameter {
                name: "n_classes",
                reason: format!("must be in 1..={} (got {})", self.n_nodes, self.n_classes),
            });
        }
        if self.steps == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "steps",
                reason: "must be at least 1".into(),
            });
        }
        for (name, (lo, hi)) in [
            ("initial_range", self.initial_range),
            ("step_range", self.step_range),
            ("p_move_range", self.p_move_range),
        ] {
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(DatagenError::InvalidParameter {
                    name,
                    reason: format!("lower bound {lo} exceeds upper bound {hi}"),
                });
            }
        }
        if self.p_move_range.0 < 0.0 || self.p_move_range.1 > 1.0 {
            return Err(DatagenError::InvalidParameter {
                name: "p_move_range",
                reason: "probabilities must lie in [0, 1]".into(),
            });
        }
        Ok(())
    }
}

/// Result of the generator: the trace plus the class assignment
/// (ground truth used by experiments to interpret snapshot sizes).
#[derive(Debug, Clone)]
pub struct RandomWalkData {
    /// The measurement trace (`steps x n_nodes`).
    pub trace: Trace,
    /// `class_of[i]` is node `i`'s class in `0..n_classes`.
    pub class_of: Vec<usize>,
    /// Per-class move probabilities.
    pub p_move: Vec<f64>,
}

/// Generate the Section 6.1 workload.
///
/// # Errors
/// [`DatagenError::InvalidParameter`] on degenerate configurations.
pub fn random_walk(cfg: &RandomWalkConfig) -> Result<RandomWalkData, DatagenError> {
    cfg.validate()?;
    let mut rng = DetRng::seed_from_u64(derive_seed(cfg.seed, 0xDA7A));

    // Per-class move probability in [0.2, 1].
    let p_move: Vec<f64> = (0..cfg.n_classes)
        .map(|_| rng.random_range(cfg.p_move_range.0..=cfg.p_move_range.1))
        .collect();

    // Random partition of nodes into classes. Guarantee every class is
    // non-empty by seeding one node per class first, then assigning the
    // rest uniformly ("randomly partitioned the nodes into K classes").
    let mut class_of = vec![0usize; cfg.n_nodes];
    let mut order: Vec<usize> = (0..cfg.n_nodes).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    for (slot, &node) in order.iter().enumerate() {
        class_of[node] = if slot < cfg.n_classes {
            slot
        } else {
            rng.random_range(0..cfg.n_classes)
        };
    }

    // Per-node parameters.
    let init: Vec<f64> = (0..cfg.n_nodes)
        .map(|_| {
            rng.random_range(
                cfg.initial_range.0..cfg.initial_range.1.max(cfg.initial_range.0 + f64::EPSILON),
            )
        })
        .collect();
    let step: Vec<f64> = (0..cfg.n_nodes)
        .map(|_| {
            // (0, 1]: reject exact zeros.
            let mut s = rng.random_range(cfg.step_range.0..=cfg.step_range.1);
            if s == cfg.step_range.0 {
                s = cfg.step_range.1.min(cfg.step_range.0 + 1e-6);
            }
            s
        })
        .collect();

    // Shared per-class decision streams: at each step the class either
    // holds (with prob 1 - p_move) or moves +/-1; all members scale the
    // same decision by their own step size.
    let mut values = init;
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.steps); cfg.n_nodes];
    for _t in 0..cfg.steps {
        let decisions: Vec<f64> = (0..cfg.n_classes)
            .map(|c| {
                if rng.random_bool(p_move[c]) {
                    if rng.random_bool(0.5) {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    0.0
                }
            })
            .collect();
        for i in 0..cfg.n_nodes {
            values[i] += decisions[class_of[i]] * step[i];
            series[i].push(values[i]);
        }
    }

    Ok(RandomWalkData {
        trace: Trace::from_series(&series)?,
        class_of,
        p_move,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_netsim::NodeId;

    #[test]
    fn paper_defaults_are_as_published() {
        let cfg = RandomWalkConfig::paper_defaults(10, 1);
        assert_eq!(cfg.n_nodes, 100);
        assert_eq!(cfg.steps, 100);
        assert_eq!(cfg.initial_range, (0.0, 1000.0));
        assert_eq!(cfg.p_move_range, (0.2, 1.0));
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = RandomWalkConfig::paper_defaults(5, 77);
        let a = random_walk(&cfg).unwrap();
        let b = random_walk(&cfg).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.class_of, b.class_of);
        let mut cfg2 = cfg;
        cfg2.seed = 78;
        let c = random_walk(&cfg2).unwrap();
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn every_class_is_inhabited() {
        for k in [1, 2, 10, 50, 100] {
            let cfg = RandomWalkConfig::paper_defaults(k, 3);
            let data = random_walk(&cfg).unwrap();
            let mut seen = vec![false; k];
            for &c in &data.class_of {
                seen[c] = true;
            }
            assert!(seen.iter().all(|&s| s), "class empty for K={k}");
        }
    }

    #[test]
    fn same_class_nodes_are_affinely_related() {
        // Same class => identical direction sequence scaled by each
        // node's step size => Pearson correlation exactly +/-1... here
        // always +1 since both scale by positive step sizes.
        let cfg = RandomWalkConfig::paper_defaults(3, 11);
        let data = random_walk(&cfg).unwrap();
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (i, &c) in data.class_of.iter().enumerate() {
            by_class[c].push(i);
        }
        for members in &by_class {
            if members.len() < 2 {
                continue;
            }
            let a = NodeId::from_index(members[0]);
            let b = NodeId::from_index(members[1]);
            let corr = data.trace.correlation(a, b);
            assert!(
                corr > 0.999,
                "same-class correlation should be ~1, got {corr}"
            );
        }
    }

    #[test]
    fn move_probabilities_respect_configured_range() {
        let cfg = RandomWalkConfig::paper_defaults(20, 5);
        let data = random_walk(&cfg).unwrap();
        for &p in &data.p_move {
            assert!((0.2..=1.0).contains(&p), "p_move {p} out of range");
        }
    }

    #[test]
    fn initial_values_respect_configured_range() {
        let cfg = RandomWalkConfig::paper_defaults(1, 9);
        let data = random_walk(&cfg).unwrap();
        // After one step the value deviates at most step<=1 from init,
        // so just check the first row loosely.
        for i in 0..cfg.n_nodes {
            let v0 = data.trace.value(NodeId::from_index(i), 0);
            assert!(
                (-1.0..1001.0).contains(&v0),
                "initial value {v0} out of range"
            );
        }
    }

    #[test]
    fn walk_actually_moves() {
        let cfg = RandomWalkConfig::paper_defaults(1, 13);
        let data = random_walk(&cfg).unwrap();
        // p_move >= 0.2 means 100 steps essentially never all hold.
        let n0 = NodeId(0);
        let s = data.trace.series(n0);
        assert!(s.iter().any(|&v| (v - s[0]).abs() > 1e-9));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = RandomWalkConfig::paper_defaults(1, 1);
        cfg.n_classes = 0;
        assert!(random_walk(&cfg).is_err());
        let mut cfg = RandomWalkConfig::paper_defaults(1, 1);
        cfg.n_classes = 101; // more classes than nodes
        assert!(random_walk(&cfg).is_err());
        let mut cfg = RandomWalkConfig::paper_defaults(1, 1);
        cfg.steps = 0;
        assert!(random_walk(&cfg).is_err());
        let mut cfg = RandomWalkConfig::paper_defaults(1, 1);
        cfg.p_move_range = (0.5, 1.5);
        assert!(random_walk(&cfg).is_err());
        let mut cfg = RandomWalkConfig::paper_defaults(1, 1);
        cfg.initial_range = (10.0, 0.0);
        assert!(random_walk(&cfg).is_err());
    }
}
