//! Error type for workload generation and trace I/O.

use std::fmt;

/// Errors surfaced by the data generators and trace I/O.
#[derive(Debug)]
pub enum DatagenError {
    /// A generator parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A trace access referenced a node or time outside the trace.
    OutOfBounds {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The valid exclusive bound.
        bound: usize,
    },
    /// CSV parsing failed.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DatagenError::OutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (len {bound})")
            }
            DatagenError::Parse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            DatagenError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DatagenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatagenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatagenError {
    fn from(e: std::io::Error) -> Self {
        DatagenError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = DatagenError::InvalidParameter {
            name: "n_classes",
            reason: "must be >= 1".into(),
        };
        assert!(e.to_string().contains("n_classes"));
        let e = DatagenError::OutOfBounds {
            what: "node",
            index: 7,
            bound: 5,
        };
        assert!(e.to_string().contains('7'));
        let e = DatagenError::Parse {
            line: 3,
            reason: "not a float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_errors_wrap_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DatagenError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
