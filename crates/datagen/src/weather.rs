//! Weather-like wind-speed workload (Section 6.3 substitute).
//!
//! The paper uses wind-speed measurements at one-minute resolution for
//! the year 2002 from the University of Washington weather station,
//! carving "100 non-overlapping series of 100 values each" out of the
//! year and assigning one series per node. The reported statistics:
//! average value 5.8, average (per-series) variance 2.8.
//!
//! That dataset is no longer available, so this module generates a
//! synthetic year of wind speed with the properties that drive the
//! paper's results and then carves windows out of it exactly as the
//! paper did:
//!
//! * **Calm/storm regimes** — most of the year is *calm*: long,
//!   quantized plateaus where the reading barely moves for hours. This
//!   is what lets a representative predict a neighbor's reading within
//!   a tight threshold (T = 0.1) most of the time (Figure 11 reports a
//!   snapshot of 14% of the network at T = 0.1): models fitted on a
//!   plateau keep predicting it correctly 90 minutes later. A small
//!   fraction of the timeline is *stormy*: elevated levels, violent
//!   drift and gust bursts that carry essentially all of the
//!   per-window variance (calibrated to the paper's reported 2.8).
//! * **Gust bursts** — short triangular excursions of a few m/s during
//!   storms.
//!
//! The generator is deterministic in its seed; the module also exposes
//! a window-carving helper that accepts *any* master series, so the
//! real dataset can be substituted via [`crate::csv`] without touching
//! downstream code.

use crate::error::DatagenError;
use crate::trace::Trace;
use snapshot_netsim::rng::derive_seed;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;

/// Parameters of the weather-like workload.
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Number of sensor nodes, each receiving one window (paper: 100).
    pub n_nodes: usize,
    /// Length of each node's series (paper: 100 for the discovery
    /// experiments, 5000 for the maintenance experiments).
    pub window: usize,
    /// Long-run mean wind speed (paper's data: 5.8).
    pub mean: f64,
    /// Mean-reversion coefficient of the calm-regime level per step.
    pub base_phi: f64,
    /// Innovation std-dev of the calm-regime level per step (small:
    /// calm weather plateaus for hours).
    pub base_sigma: f64,
    /// Per-step probability that a storm begins while calm.
    pub storm_rate: f64,
    /// Mean storm duration, steps (geometric).
    pub storm_duration: f64,
    /// Level elevation during storms (m/s above the calm level).
    pub storm_boost: f64,
    /// Innovation std-dev of the level during storms.
    pub storm_sigma: f64,
    /// Per-step probability that a gust starts (storms only).
    pub gust_rate: f64,
    /// Gust peak amplitude range (m/s above base).
    pub gust_amplitude: (f64, f64),
    /// Gust duration range, steps.
    pub gust_duration: (usize, usize),
    /// Quantization step of the sensor (0 disables quantization).
    pub quantum: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for WeatherConfig {
    fn default() -> Self {
        WeatherConfig {
            n_nodes: 100,
            window: 100,
            mean: 5.8,
            base_phi: 0.98,
            base_sigma: 0.02,
            storm_rate: 0.0006,
            storm_duration: 300.0,
            storm_boost: 7.0,
            storm_sigma: 1.2,
            gust_rate: 0.05,
            gust_amplitude: (2.0, 6.0),
            gust_duration: (6, 16),
            quantum: 0.1,
            seed: 2002,
        }
    }
}

impl WeatherConfig {
    /// The paper's discovery-experiment shape: 100 nodes x 100 values.
    pub fn paper_defaults(seed: u64) -> Self {
        WeatherConfig {
            seed,
            ..WeatherConfig::default()
        }
    }

    /// The paper's maintenance-experiment shape: 100 nodes x 5000
    /// values ("we split the weather data into 100 series of 5,000
    /// data values each").
    pub fn maintenance_defaults(seed: u64) -> Self {
        WeatherConfig {
            window: 5000,
            seed,
            ..WeatherConfig::default()
        }
    }

    fn validate(&self) -> Result<(), DatagenError> {
        if self.n_nodes == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "n_nodes",
                reason: "must be >= 1".into(),
            });
        }
        if self.window == 0 {
            return Err(DatagenError::InvalidParameter {
                name: "window",
                reason: "must be >= 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.base_phi.min(0.999_999)) && self.base_phi >= 1.0 {
            return Err(DatagenError::InvalidParameter {
                name: "base_phi",
                reason: "must be in [0,1)".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.gust_rate) {
            return Err(DatagenError::InvalidParameter {
                name: "gust_rate",
                reason: "must be a probability".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.storm_rate) {
            return Err(DatagenError::InvalidParameter {
                name: "storm_rate",
                reason: "must be a probability".into(),
            });
        }
        if self.storm_duration.is_nan() || self.storm_duration < 1.0 {
            return Err(DatagenError::InvalidParameter {
                name: "storm_duration",
                reason: "must be >= 1 step".into(),
            });
        }
        if self.storm_sigma < 0.0 || self.base_sigma < 0.0 {
            return Err(DatagenError::InvalidParameter {
                name: "sigma",
                reason: "must be non-negative".into(),
            });
        }
        if self.gust_duration.0 == 0 || self.gust_duration.0 > self.gust_duration.1 {
            return Err(DatagenError::InvalidParameter {
                name: "gust_duration",
                reason: "must be a non-empty positive range".into(),
            });
        }
        if self.gust_amplitude.0 > self.gust_amplitude.1 {
            return Err(DatagenError::InvalidParameter {
                name: "gust_amplitude",
                reason: "lower bound exceeds upper".into(),
            });
        }
        Ok(())
    }
}

/// Generate one long master series of wind speed.
///
/// Exposed so tests and experiments can inspect the raw "year" before
/// window carving.
pub fn master_series(cfg: &WeatherConfig, len: usize) -> Result<Vec<f64>, DatagenError> {
    cfg.validate()?;
    let mut rng = DetRng::seed_from_u64(derive_seed(cfg.seed, 0x7EA7));

    // Storms lift the mean (level boost + strictly positive gusts);
    // compensate analytically so the grand mean lands on `cfg.mean`
    // (the paper's 5.8). Storm fraction of the timeline:
    // rate*duration / (1 + rate*duration).
    let storm_frac =
        cfg.storm_rate * cfg.storm_duration / (1.0 + cfg.storm_rate * cfg.storm_duration);
    let mean_amp = (cfg.gust_amplitude.0 + cfg.gust_amplitude.1) / 2.0;
    let mean_dur = (cfg.gust_duration.0 + cfg.gust_duration.1) as f64 / 2.0;
    let gust_busy = cfg.gust_rate * mean_dur / (1.0 + cfg.gust_rate * mean_dur);
    let storm_lift = cfg.storm_boost + gust_busy * mean_amp / 2.0;
    let calm_level = (cfg.mean - storm_frac * storm_lift).max(0.0);

    let mut stormy = false;
    let mut base = calm_level;
    let mut gust_left = 0usize; // steps remaining in the active gust
    let mut gust_peak = 0.0;
    let mut gust_total = 0usize;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        // Regime transitions (geometric durations).
        if stormy {
            if rng.random_bool(1.0 / cfg.storm_duration) {
                stormy = false;
            }
        } else if cfg.storm_rate > 0.0 && rng.random_bool(cfg.storm_rate) {
            stormy = true;
        }

        // Level dynamics: glassy plateaus while calm, violent drift
        // toward an elevated level while stormy.
        let (target, phi, sigma) = if stormy {
            (calm_level + cfg.storm_boost, 0.99, cfg.storm_sigma)
        } else {
            (calm_level, cfg.base_phi, cfg.base_sigma)
        };
        base = target + phi * (base - target) + sigma * gaussian(&mut rng);
        base = base.max(0.0);

        // Gust lifecycle (storms only): triangular rise/decay envelope.
        if stormy && gust_left == 0 && rng.random_bool(cfg.gust_rate) {
            gust_total = rng.random_range(cfg.gust_duration.0..=cfg.gust_duration.1);
            gust_left = gust_total;
            gust_peak = rng.random_range(cfg.gust_amplitude.0..=cfg.gust_amplitude.1);
        }
        let gust = if gust_left > 0 {
            let progress = (gust_total - gust_left) as f64 / gust_total as f64;
            gust_left -= 1;
            gust_peak * (1.0 - (2.0 * progress - 1.0).abs())
        } else {
            0.0
        };
        let mut v = (base + gust).max(0.0);
        if cfg.quantum > 0.0 {
            v = (v / cfg.quantum).round() * cfg.quantum;
        }
        out.push(v);
    }
    Ok(out)
}

/// Carve `n` non-overlapping windows of `window` values each out of a
/// master series, replicating the paper's sampling procedure.
///
/// # Errors
/// [`DatagenError::InvalidParameter`] when the master series is too
/// short to supply `n * window` values.
pub fn carve_windows(master: &[f64], n: usize, window: usize) -> Result<Trace, DatagenError> {
    if master.len() < n * window {
        return Err(DatagenError::InvalidParameter {
            name: "master",
            reason: format!(
                "master series of {} values cannot supply {n} non-overlapping windows of {window}",
                master.len()
            ),
        });
    }
    let series: Vec<Vec<f64>> = (0..n)
        .map(|i| master[i * window..(i + 1) * window].to_vec())
        .collect();
    Trace::from_series(&series)
}

/// Generate the full weather workload: a master "year" long enough for
/// `n_nodes` non-overlapping windows, carved into one series per node.
pub fn weather(cfg: &WeatherConfig) -> Result<Trace, DatagenError> {
    let master = master_series(cfg, cfg.n_nodes * cfg.window)?;
    carve_windows(&master, cfg.n_nodes, cfg.window)
}

/// Standard normal via Box-Muller (we avoid a distribution dependency).
fn gaussian<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_f64();
        let u2: f64 = rng.random_f64();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_netsim::NodeId;

    #[test]
    fn statistics_match_the_papers_dataset() {
        // Paper: "The average value (over the 100 series) of the
        // measurement was 5.8 and the average variance 2.8."
        let trace = weather(&WeatherConfig::paper_defaults(1999)).unwrap();
        let mean = trace.grand_mean();
        let var = trace.mean_variance();
        assert!((mean - 5.8).abs() < 0.6, "grand mean {mean}, want ~5.8");
        assert!((1.8..=4.0).contains(&var), "mean variance {var}, want ~2.8");
    }

    #[test]
    fn wind_speed_is_non_negative_and_quantized() {
        let cfg = WeatherConfig::paper_defaults(7);
        let master = master_series(&cfg, 5000).unwrap();
        for &v in &master {
            assert!(v >= 0.0);
            let q = (v / cfg.quantum).round() * cfg.quantum;
            assert!((v - q).abs() < 1e-9, "value {v} not quantized");
        }
    }

    #[test]
    fn series_are_plateau_heavy() {
        // Most minute-to-minute deltas should be small: this is the
        // property that makes tight thresholds feasible (Figure 11).
        let cfg = WeatherConfig::paper_defaults(3);
        let master = master_series(&cfg, 20_000).unwrap();
        let small = master
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() <= 0.2)
            .count();
        let frac = small as f64 / (master.len() - 1) as f64;
        assert!(frac > 0.7, "only {frac:.2} of deltas are small");
    }

    #[test]
    fn gusts_supply_real_excursions() {
        let cfg = WeatherConfig::paper_defaults(4);
        let master = master_series(&cfg, 20_000).unwrap();
        let max = master.iter().cloned().fold(f64::MIN, f64::max);
        let mean = master.iter().sum::<f64>() / master.len() as f64;
        assert!(max > mean + 2.0, "no gusts: max {max}, mean {mean}");
    }

    #[test]
    fn windows_do_not_overlap() {
        let master: Vec<f64> = (0..600).map(|i| i as f64).collect();
        let trace = carve_windows(&master, 3, 200).unwrap();
        assert_eq!(trace.value(NodeId(0), 0), 0.0);
        assert_eq!(trace.value(NodeId(1), 0), 200.0);
        assert_eq!(trace.value(NodeId(2), 199), 599.0);
    }

    #[test]
    fn carve_rejects_short_master() {
        let master = vec![0.0; 99];
        assert!(carve_windows(&master, 1, 100).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = weather(&WeatherConfig::paper_defaults(42)).unwrap();
        let b = weather(&WeatherConfig::paper_defaults(42)).unwrap();
        assert_eq!(a, b);
        let c = weather(&WeatherConfig::paper_defaults(43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn maintenance_shape_is_5000_long() {
        let cfg = WeatherConfig::maintenance_defaults(1);
        assert_eq!(cfg.window, 5000);
        // Keep the test fast: carve a smaller instance with the same code path.
        let cfg = WeatherConfig {
            n_nodes: 4,
            window: 500,
            ..cfg
        };
        let trace = weather(&cfg).unwrap();
        assert_eq!(trace.nodes(), 4);
        assert_eq!(trace.steps(), 500);
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            WeatherConfig {
                n_nodes: 0,
                ..WeatherConfig::default()
            },
            WeatherConfig {
                window: 0,
                ..WeatherConfig::default()
            },
            WeatherConfig {
                gust_rate: 1.5,
                ..WeatherConfig::default()
            },
            WeatherConfig {
                gust_duration: (5, 2),
                ..WeatherConfig::default()
            },
            WeatherConfig {
                storm_rate: -0.5,
                ..WeatherConfig::default()
            },
            WeatherConfig {
                storm_duration: 0.0,
                ..WeatherConfig::default()
            },
            WeatherConfig {
                storm_sigma: -1.0,
                ..WeatherConfig::default()
            },
        ];
        for cfg in bad {
            assert!(weather(&cfg).is_err(), "accepted invalid config {cfg:?}");
        }
    }

    #[test]
    fn calm_stretches_are_plateaus() {
        // With storms disabled the series should be almost perfectly
        // flat: that is the regime that makes tight thresholds work.
        let cfg = WeatherConfig {
            storm_rate: 0.0,
            ..WeatherConfig::paper_defaults(5)
        };
        let master = master_series(&cfg, 2000).unwrap();
        let max_delta = master
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        assert!(
            max_delta <= 0.3,
            "calm regime moved by {max_delta} in one minute"
        );
    }

    #[test]
    fn storms_carry_the_variance() {
        let calm_only = WeatherConfig {
            storm_rate: 0.0,
            ..WeatherConfig::paper_defaults(6)
        };
        let with_storms = WeatherConfig::paper_defaults(6);
        let var = |cfg: &WeatherConfig| {
            let m = master_series(cfg, 50_000).unwrap();
            let mean = m.iter().sum::<f64>() / m.len() as f64;
            m.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m.len() as f64
        };
        assert!(var(&with_storms) > 10.0 * var(&calm_only));
    }

    #[test]
    fn gaussian_has_roughly_standard_moments() {
        let mut rng = DetRng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian var {var}");
    }
}
