//! # snapshot-datagen
//!
//! Workload generators for the *Snapshot Queries* reproduction.
//!
//! The paper's evaluation uses two data sources:
//!
//! 1. **Synthetic random walks** (Section 6.1): 100 nodes partitioned
//!    into `K` classes; nodes of the same class step up or down with the
//!    same class-specific probability, so same-class nodes are strongly
//!    correlated and the network should discover roughly one
//!    representative per class. See [`random_walk()`](random_walk()).
//! 2. **Weather data** (Section 6.3): wind-speed measurements at
//!    one-minute resolution from the University of Washington weather
//!    station. That dataset is no longer distributable, so
//!    [`weather()`](weather()) provides a *calibrated synthetic substitute* matching
//!    the statistics the paper reports (mean ~5.8, variance ~2.8,
//!    smooth mean-reverting trajectories with gusts and diurnal drift)
//!    plus a CSV loader so the real data can be dropped in.
//!
//! All generators are deterministic in an explicit seed and produce a
//! [`trace::Trace`]: a time-indexed matrix of per-node measurements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod correlated;
pub mod csv;
pub mod error;
pub mod periodic;
pub mod random_walk;
pub mod trace;
pub mod weather;

pub use correlated::{correlated_field, CorrelatedFieldConfig};
pub use error::DatagenError;
pub use periodic::{periodic, PeriodicConfig, PeriodicData};
pub use random_walk::{random_walk, RandomWalkConfig};
pub use trace::Trace;
pub use weather::{weather, WeatherConfig};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::correlated::{correlated_field, CorrelatedFieldConfig};
    pub use crate::error::DatagenError;
    pub use crate::periodic::{periodic, PeriodicConfig, PeriodicData};
    pub use crate::random_walk::{random_walk, RandomWalkConfig};
    pub use crate::trace::Trace;
    pub use crate::weather::{weather, WeatherConfig};
}
