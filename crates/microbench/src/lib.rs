//! A tiny, dependency-free micro-benchmark harness.
//!
//! Implements the subset of the Criterion API that the workspace's
//! benches use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `Bencher::iter` / `iter_batched`, benchmark groups, `black_box`),
//! so the bench files read identically while building offline with no
//! external crates. Timing methodology is deliberately simple: a short
//! warm-up, then `sample_size` samples of an adaptively chosen
//! iteration count, reporting the median per-iteration time.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub mod counting_alloc {
    //! An opt-in counting global allocator.
    //!
    //! Bench binaries that register [`CountingAllocator`] as their
    //! `#[global_allocator]` get a deterministic *allocations per
    //! iteration* figure alongside every timing: the harness reads the
    //! global counter around the timed loops and divides by the
    //! iteration count. Unlike wall-clock medians, allocation counts
    //! are exactly reproducible on any machine, so the CI regression
    //! gate (`cargo xtask benchcmp`) treats them as hard numbers and
    //! wall-clock as advisory.
    //!
    //! When no counting allocator is registered the counter never
    //! moves and every benchmark reports `allocs_per_iter: 0`.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

    /// A pass-through wrapper over the system allocator that counts
    /// every allocation and reallocation.
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: CountingAllocator = CountingAllocator;
    /// ```
    #[derive(Debug)]
    pub struct CountingAllocator;

    // SAFETY: defers entirely to `System`; the wrapper only bumps
    // atomic counters and never touches the returned memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Total allocations (plus reallocations) observed so far; zero
    /// forever unless a [`CountingAllocator`] is registered.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The harness runs one
/// setup per routine invocation regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold many of.
    SmallInput,
    /// Setup output is expensive; batch conservatively.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// A parameterized benchmark label, e.g. `fit/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one label.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    allocs_per_iter: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
            allocs_per_iter: 0.0,
        }
    }

    /// Time `routine` repeatedly.
    #[allow(clippy::disallowed_methods)] // the bench harness is the one sanctioned wall-clock user
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so each
        // sample runs for roughly a millisecond.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        // Pre-size the sample vector so the harness itself does not
        // allocate inside the measured region (the allocation counter
        // must see only the routine's allocations).
        self.samples.reserve(self.sample_size);
        let allocs_before = counting_alloc::allocations();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
        let total_iters = self.sample_size as u64 * self.iters_per_sample;
        self.allocs_per_iter =
            (counting_alloc::allocations() - allocs_before) as f64 / total_iters.max(1) as f64;
    }

    /// Time `routine` on fresh input from `setup`, excluding setup
    /// time (and setup allocations) from the measurement.
    #[allow(clippy::disallowed_methods)] // the bench harness is the one sanctioned wall-clock user
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        self.iters_per_sample = 1;
        let mut allocs = 0u64;
        for _ in 0..self.sample_size {
            let input = setup();
            let a0 = counting_alloc::allocations();
            let t0 = Instant::now();
            black_box(routine(input));
            let elapsed = t0.elapsed();
            allocs += counting_alloc::allocations() - a0;
            self.samples.push(elapsed);
        }
        self.allocs_per_iter = allocs as f64 / (self.sample_size.max(1)) as f64;
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        ns[ns.len() / 2]
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// When the `MICROBENCH_JSON` environment variable names a file,
/// append one machine-readable line per benchmark:
/// `{"name":"...","median_ns":...,"iters":...,"allocs_per_iter":...}`.
/// CI compares these against the committed `BENCH_baseline.json` with
/// `cargo xtask benchcmp` (allocation counts gate hard, wall-clock is
/// advisory); failures to write are silently ignored (benchmarks
/// still print to stdout).
fn append_json_record(label: &str, median_ns: f64, iters: u64, allocs_per_iter: f64) {
    let Ok(path) = std::env::var("MICROBENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{median_ns:?},\"iters\":{iters},\
         \"allocs_per_iter\":{allocs_per_iter:?}}}\n"
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// The benchmark driver: registry of named benchmarks plus the
/// sampling configuration.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let median_ns = b.median_ns_per_iter();
        println!(
            "{label:<40} {:>12}/iter {:>10.1} allocs/iter",
            human_time(median_ns),
            b.allocs_per_iter
        );
        append_json_record(label, median_ns, b.iters_per_sample, b.allocs_per_iter);
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags benches don't parse;
            // with `--test` semantics we just run everything.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exercise the counting allocator in this crate's own test binary;
    // the workspace bench binaries register it the same way.
    #[global_allocator]
    static ALLOC: counting_alloc::CountingAllocator = counting_alloc::CountingAllocator;

    #[test]
    fn counting_allocator_observes_heap_traffic() {
        let a0 = counting_alloc::allocations();
        let b0 = counting_alloc::allocated_bytes();
        let v: Vec<u64> = Vec::with_capacity(32);
        black_box(&v);
        assert!(counting_alloc::allocations() > a0);
        assert!(counting_alloc::allocated_bytes() >= b0 + 32 * 8);
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut b = Bencher::new(3);
        b.iter(|| black_box(21u64 * 2));
        assert!(b.median_ns_per_iter() >= 0.0);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(4);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 4);
    }

    #[test]
    fn benchmark_id_formats_label() {
        assert_eq!(BenchmarkId::new("fit", 64).to_string(), "fit/64");
    }

    #[test]
    fn json_records_append_when_env_var_is_set() {
        let path =
            std::env::temp_dir().join(format!("microbench_json_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("MICROBENCH_JSON", &path);
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("json_probe", |b| b.iter(|| black_box(3u64 + 4)));
        std::env::remove_var("MICROBENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("JSON file written");
        let _ = std::fs::remove_file(&path);
        let line = text
            .lines()
            .find(|l| l.contains("\"json_probe\""))
            .expect("record for the benchmark");
        assert!(line.starts_with("{\"name\":\"json_probe\",\"median_ns\":"));
        assert!(line.contains("\"iters\":"));
        assert!(line.contains("\"allocs_per_iter\":"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn human_time_scales_units() {
        assert_eq!(human_time(12.0), "12.0 ns");
        assert_eq!(human_time(1_500.0), "1.50 µs");
        assert_eq!(human_time(2_500_000.0), "2.50 ms");
    }
}
