// Fixture: energy-accounting violations (scanned as a protocol file).
// Expected diagnostics (lint, line) are asserted by tests/fixtures.rs.

pub fn run(net: &mut Network<Msg>, tag: &'static str) {
    net.broadcast(0, Msg::Ping, 8, phase::HEARTBEAT);
    net.unicast(0, 1, Msg::Ping, 8, tag); // line 6: unaccounted_send
}

// This entry point sends through ambient state instead of taking the
// energy-accounted Network.
pub fn ambient(state: &mut State) { // line 11: unthreaded_network
    helper(state);
}

fn helper(state: &mut State) {
    state.net.broadcast(0, Msg::Ping, 8, "heartbeat");
}
