// Fixture: panic-freedom violations. Expected diagnostics
// (lint, line) are asserted exactly by tests/fixtures.rs.

pub fn take(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {
    let v = map.get(&k).unwrap(); // line 5: no_unwrap
    let w = map.get(&(k + 1)).expect("present"); // line 6: no_expect
    if *v > *w {
        panic!("inverted"); // line 8: no_panic
    }
    *v
}

pub fn classify(x: u32) -> u32 {
    match x {
        0 => 1,
        1 => todo!(), // line 16: no_panic
        _ => unreachable!(), // line 17: no_panic
    }
}

pub fn index(xs: &[u32], i: usize) -> u32 {
    xs[i] // line 22: slice_index (warn)
}

// xtask-allow(no_unwrap): fixture exercises a honored allow
pub fn allowed(x: Option<u32>) -> u32 { x.unwrap() }

// xtask-allow(no_expect): stale — nothing on this or the next line (line 28: unused_allow)
pub fn nothing_here() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
