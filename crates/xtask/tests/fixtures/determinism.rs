// Fixture: determinism violations. Expected diagnostics (lint, line)
// are asserted exactly by tests/fixtures.rs.

use std::collections::HashMap; // line 4: no_hash_collections
use std::time::Instant;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: std::collections::HashSet<u32> = Default::default(); // line 8: no_hash_collections
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // line 16: no_ambient_rng
    let x: f64 = rand::random(); // line 17: no_ambient_rng
    let _ = rng.gen_range(0.0..1.0);
    x
}

pub fn stamp() -> Instant {
    Instant::now() // line 23: no_wall_clock
}

pub fn wall() -> u64 {
    let t = std::time::SystemTime::now(); // line 27: no_wall_clock
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> { // line 31: no_hash_collections
    m.get(&k).copied()
}
