//! Contract fixture: a `zero_alloc` function that allocates directly
//! in its own body.

// xtask-contract(zero_alloc)
pub fn hot_path(x: u32) -> usize {
    let s = format!("{x}");
    s.len()
}
