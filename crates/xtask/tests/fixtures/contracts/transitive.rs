//! Contract fixture: the allocation sits two calls below the
//! contracted root, so the diagnostic must carry the full chain.

// xtask-contract(zero_alloc)
pub fn entry(v: &mut Vec<u32>) {
    middle(v);
}

fn middle(v: &mut Vec<u32>) {
    leaf(v);
}

fn leaf(v: &mut Vec<u32>) {
    v.push(1);
}
