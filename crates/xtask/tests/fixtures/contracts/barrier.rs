//! Contract fixture that must analyze CLEAN: an `alloc_cold` mark
//! stops the `zero_alloc` descent into guarded setup, and a justified
//! site-level allow covers the one amortized push on the hot path.

// xtask-contract(zero_alloc)
pub fn hot(buf: &mut Vec<u8>, first: bool) {
    if first {
        cold_setup(buf);
    }
    append(buf);
}

// xtask-contract(alloc_cold): one-time setup guarded by `first`
fn cold_setup(buf: &mut Vec<u8>) {
    buf.reserve(1024);
}

fn append(buf: &mut Vec<u8>) {
    // xtask-allow(contract_zero_alloc): capacity reserved once by cold_setup
    buf.push(1);
}
