//! Contract fixture (crate_b): the nondeterminism source reached by
//! crate_a's contracted entry point.

pub fn shuffle_seed(n: u64) -> u64 {
    let r: u64 = rand::random();
    n ^ r
}
