//! Contract fixture (crate_a): a deterministic contract whose
//! violation lives in a different crate.

// xtask-contract(deterministic)
pub fn tick_all(n: u64) -> u64 {
    shuffle_seed(n)
}
