//! Contract fixture: the contract is attached to a trait-method
//! *impl* (the trait declaration itself has no body to check).

pub trait Sink {
    fn record_sample(&mut self, v: u64);
}

pub struct Buffered {
    vals: Vec<u64>,
}

impl Sink for Buffered {
    // xtask-contract(zero_alloc)
    fn record_sample(&mut self, v: u64) {
        self.vals.push(v);
    }
}
