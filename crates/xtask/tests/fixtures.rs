//! End-to-end checks of `cargo xtask analyze`: the fixtures must
//! produce exactly the expected diagnostics, and the real workspace
//! must be clean.

use std::path::{Path, PathBuf};
use xtask::{analyze_source, Level};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn analyze_fixture(name: &str) -> (Vec<(String, u32, u32)>, usize) {
    let path = manifest_dir().join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let (diags, honored) = analyze_source(&path, &src, false);
    let rendered = diags
        .iter()
        .map(|d| {
            (
                d.lint.to_string(),
                d.line,
                match d.level {
                    Level::Deny => 0,
                    Level::Warn => 1,
                } as u32,
            )
        })
        .collect();
    (rendered, honored)
}

#[test]
fn panics_fixture_reports_exact_diagnostics() {
    let (diags, honored) = analyze_fixture("panics.rs");
    let expected: Vec<(String, u32, u32)> = [
        ("no_unwrap", 5, 0),
        ("no_expect", 6, 0),
        ("no_panic", 8, 0),
        ("no_panic", 16, 0),
        ("no_panic", 17, 0),
        ("slice_index", 22, 1),
        ("unused_allow", 28, 0),
    ]
    .iter()
    .map(|(l, ln, lv)| (l.to_string(), *ln, *lv))
    .collect();
    assert_eq!(diags, expected, "got: {diags:?}");
    assert_eq!(
        honored, 1,
        "the line-25 allow must suppress exactly one finding"
    );
}

#[test]
fn determinism_fixture_reports_exact_diagnostics() {
    let (diags, honored) = analyze_fixture("determinism.rs");
    let expected: Vec<(String, u32, u32)> = [
        ("no_hash_collections", 4, 0),
        ("no_hash_collections", 8, 0),
        ("no_ambient_rng", 16, 0),
        ("no_ambient_rng", 17, 0),
        ("no_wall_clock", 23, 0),
        ("no_wall_clock", 27, 0),
        ("no_hash_collections", 31, 0),
    ]
    .iter()
    .map(|(l, ln, lv)| (l.to_string(), *ln, *lv))
    .collect();
    assert_eq!(diags, expected, "got: {diags:?}");
    assert_eq!(honored, 0);
}

#[test]
fn sends_fixture_reports_exact_diagnostics() {
    // The energy lints only run for election/ and maintenance/ paths;
    // analyze_source takes the flag directly.
    let path = manifest_dir().join("tests/fixtures/sends.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let (diags, _) = analyze_source(&path, &src, true);
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.lint, d.line)).collect();
    assert_eq!(
        got,
        vec![("unaccounted_send", 6), ("unthreaded_network", 11)],
        "got: {diags:?}"
    );
}

#[test]
fn fixture_run_exits_nonzero_and_workspace_run_exits_zero() {
    let fixtures = manifest_dir().join("tests/fixtures");
    let report = xtask::analyze_paths(&[fixtures]).expect("fixtures scan");
    assert!(report.failed(false), "fixtures must fail the analyzer");
    assert!(report.deny_count() > 0);

    // Self-check: the real workspace is clean (this is the same
    // invariant CI enforces via `cargo xtask analyze --json`).
    let repo_root = manifest_dir()
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("repo root");
    let report = xtask::analyze_paths(&xtask::default_roots(&repo_root)).expect("workspace scan");
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.level == Level::Deny)
        .map(|d| d.render())
        .collect();
    assert!(
        denies.is_empty(),
        "workspace must be free of deny-level findings:\n{}",
        denies.join("\n")
    );
    assert!(
        report.files_scanned > 40,
        "expected to scan the four crates"
    );
}

#[test]
fn grid_module_is_scanned_and_clean() {
    // The grid spatial index is protocol-critical state (neighbor
    // lists feed every election), so it must sit inside the default
    // scan roots and hold the full deny-level invariant set —
    // including `no_hash_collections`, the lint that forced its
    // buckets into a BTreeMap.
    let repo_root = manifest_dir()
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("repo root");
    let grid = repo_root.join("crates/netsim/src/grid.rs");
    let src = std::fs::read_to_string(&grid).expect("grid module exists and is readable");

    let roots = xtask::default_roots(&repo_root);
    assert!(
        roots.iter().any(|r| grid.starts_with(r)),
        "grid.rs must live under a default analyzer root"
    );

    let (diags, _) = analyze_source(&grid, &src, false);
    let denies: Vec<String> = diags
        .iter()
        .filter(|d| d.level == Level::Deny)
        .map(|d| d.render())
        .collect();
    assert!(
        denies.is_empty(),
        "grid.rs must be free of deny-level findings:\n{}",
        denies.join("\n")
    );
}

#[test]
fn json_report_is_well_formed() {
    let fixtures = manifest_dir().join("tests/fixtures");
    let report = xtask::analyze_paths(&[fixtures]).expect("fixtures scan");
    let json = xtask::to_json(&report);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"diagnostics\""));
    assert!(json.contains("\"no_unwrap\""));
    assert!(json.contains("\"deny\""));
    // Balanced braces/brackets — cheap structural sanity without a
    // JSON parser dependency.
    let braces = json.matches('{').count();
    assert_eq!(braces, json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
