//! Doc-sync: the lint reference table in DESIGN.md §15 must match
//! `cargo xtask analyze --list-lints` exactly — name, level, and
//! summary — so the docs cannot drift from the analyzer.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("repo root")
}

/// Parse `name | level | summary` rows from `--list-lints` output.
fn parse_list_lints(out: &str) -> Vec<(String, String, String)> {
    out.lines()
        .filter_map(|line| {
            let mut parts = line.splitn(3, " | ");
            Some((
                parts.next()?.trim().to_string(),
                parts.next()?.trim().to_string(),
                parts.next()?.trim().to_string(),
            ))
        })
        .collect()
}

/// Parse the DESIGN.md §15 markdown table: `| `name` | level | summary |`.
fn parse_design_table(design: &str) -> Vec<(String, String, String)> {
    // Scope to §15 so tables in other sections can never alias in.
    let section = design
        .split("## 15.")
        .nth(1)
        .expect("DESIGN.md must have a §15");
    let section = section.split("\n## ").next().unwrap_or(section);
    section
        .lines()
        .filter(|l| l.trim_start().starts_with("| `"))
        .filter_map(|line| {
            let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
            if cells.len() != 3 {
                return None;
            }
            Some((
                cells[0].trim().trim_matches('`').to_string(),
                cells[1].trim().to_string(),
                cells[2].trim().to_string(),
            ))
        })
        .collect()
}

#[test]
fn design_lint_table_matches_list_lints_output() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--list-lints"])
        .output()
        .expect("xtask binary runs");
    assert!(out.status.success(), "--list-lints must exit 0");
    let listed = parse_list_lints(&String::from_utf8_lossy(&out.stdout));

    let design_path = repo_root().join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path).expect("DESIGN.md readable");
    let documented = parse_design_table(&design);

    assert_eq!(
        listed.len(),
        xtask::lint_infos().len(),
        "--list-lints must print every lint"
    );
    assert_eq!(
        documented, listed,
        "DESIGN.md §15 lint table and `analyze --list-lints` disagree \
         (left: docs, right: analyzer) — update whichever is stale"
    );
}

#[test]
fn design_documents_the_contract_workflow() {
    let design =
        std::fs::read_to_string(repo_root().join("DESIGN.md")).expect("DESIGN.md readable");
    // The §15 prose must cover the annotation grammar and the audit
    // knobs a contributor needs to interact with the analyzer.
    for needle in [
        "xtask-contract(zero_alloc)",
        "alloc_cold",
        "--allow-audit",
        "--sarif",
        "[allow-budget]",
    ] {
        assert!(
            design.contains(needle),
            "DESIGN.md must document `{needle}`"
        );
    }
}
