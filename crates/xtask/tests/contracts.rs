//! End-to-end checks of the contract-propagation analyzer: one
//! fixture per violation class, a mutation test that seeds an
//! allocation into a copy of the real delivery hot path, and a
//! workspace self-check that the annotated call trees analyze clean.

use std::path::{Path, PathBuf};
use xtask::{analyze_sources, Level, LintMode, SourceFile};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn repo_root() -> PathBuf {
    manifest_dir()
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("repo root")
}

/// Load a contract fixture in symbols-only mode (no token lints), so
/// every diagnostic the report carries came from the contract pass.
fn fixture(name: &str) -> SourceFile {
    let path = manifest_dir().join("tests/fixtures/contracts").join(name);
    SourceFile {
        src: std::fs::read_to_string(&path).expect("fixture readable"),
        path,
        lint: LintMode::SymbolsOnly,
    }
}

#[test]
fn direct_allocation_in_contracted_fn_is_denied() {
    let report = analyze_sources(vec![fixture("direct_alloc.rs")], None);
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "got: {diags:?}");
    assert_eq!(diags[0].lint, "contract_zero_alloc");
    assert_eq!(diags[0].level, Level::Deny);
    assert!(
        diags[0].message.contains("hot_path"),
        "{}",
        diags[0].message
    );
    assert!(diags[0].message.contains("format!"), "{}", diags[0].message);
}

#[test]
fn transitive_allocation_two_hops_down_carries_full_chain() {
    let report = analyze_sources(vec![fixture("transitive.rs")], None);
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "got: {diags:?}");
    assert_eq!(diags[0].lint, "contract_zero_alloc");
    // The blame chain must name every hop from the contracted root to
    // the allocation site.
    for hop in ["entry", "middle", "leaf", "push"] {
        assert!(
            diags[0].message.contains(hop),
            "chain must name `{hop}`: {}",
            diags[0].message
        );
    }
}

#[test]
fn cross_crate_nondeterminism_is_denied_at_the_source() {
    // Remap the fixture paths so crate attribution sees two distinct
    // crates (`crate_a`, `crate_b`) rather than both files landing in
    // the xtask crate via the real `crates/xtask/...` prefix.
    let mut caller = fixture("crate_a/caller.rs");
    caller.path = PathBuf::from("/fixtures/crate_a/caller.rs");
    let mut callee = fixture("crate_b/callee.rs");
    callee.path = PathBuf::from("/fixtures/crate_b/callee.rs");

    let report = analyze_sources(vec![caller, callee], None);
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "got: {diags:?}");
    assert_eq!(diags[0].lint, "contract_deterministic");
    assert!(
        diags[0].path.ends_with("callee.rs"),
        "diagnostic must point at the violating crate: {:?}",
        diags[0].path
    );
    for hop in ["tick_all", "shuffle_seed", "rand::random"] {
        assert!(
            diags[0].message.contains(hop),
            "chain must name `{hop}`: {}",
            diags[0].message
        );
    }
}

#[test]
fn contract_on_trait_method_impl_is_enforced() {
    let report = analyze_sources(vec![fixture("trait_impl.rs")], None);
    let diags = &report.diagnostics;
    assert_eq!(diags.len(), 1, "got: {diags:?}");
    assert_eq!(diags[0].lint, "contract_zero_alloc");
    assert!(
        diags[0].message.contains("record_sample"),
        "{}",
        diags[0].message
    );
}

#[test]
fn alloc_cold_barrier_and_site_allow_analyze_clean() {
    let report = analyze_sources(vec![fixture("barrier.rs")], None);
    assert!(
        report.diagnostics.is_empty(),
        "barrier fixture must be clean, got: {:?}",
        report.diagnostics
    );
    // The suppressions still show up where the audit can see them.
    assert_eq!(report.cold_count(), 1);
    assert_eq!(
        report.allow_counts.get("contract_zero_alloc").copied(),
        Some(1)
    );
}

/// Mutation test: seed a `format!` two calls below `Network::deliver`
/// in a copy of the real source and require the analyzer to reject it
/// with a blame chain naming all three hops. The pristine file is the
/// control — it must analyze contract-clean, so the seeded diagnostic
/// is attributable to the mutation alone.
#[test]
fn seeded_allocation_in_delivery_path_is_rejected_with_blame_chain() {
    let sim_path = repo_root().join("crates/netsim/src/sim.rs");
    let pristine = std::fs::read_to_string(&sim_path).expect("sim.rs readable");

    let analyze = |src: String| {
        analyze_sources(
            vec![SourceFile {
                path: sim_path.clone(),
                src,
                lint: LintMode::SymbolsOnly,
            }],
            None,
        )
    };

    // Control: the unmutated delivery path honors its contracts.
    let control = analyze(pristine.clone());
    assert!(
        control.diagnostics.is_empty(),
        "pristine sim.rs must analyze clean: {:?}",
        control.diagnostics
    );

    // Mutant: deliver -> mutation_route_one -> mutation_format_leaf,
    // where the leaf formats into a fresh String.
    let anchor = "let mut delivered = 0;";
    let mutated = pristine.replacen(
        anchor,
        "let mut delivered = 0;\n        mutation_route_one(&mut delivered);",
        1,
    );
    assert_ne!(mutated, pristine, "anchor line must exist in deliver()");
    let mutated = format!(
        "{mutated}\n{}",
        r#"
fn mutation_route_one(count: &mut usize) {
    mutation_format_leaf(count);
}

fn mutation_format_leaf(count: &mut usize) {
    let s = format!("{count:?}");
    *count += s.len();
}
"#
    );

    let report = analyze(mutated);
    let violations: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == "contract_zero_alloc")
        .collect();
    assert_eq!(
        violations.len(),
        1,
        "exactly the seeded allocation must be rejected: {violations:?}"
    );
    let msg = &violations[0].message;
    for hop in [
        "deliver",
        "mutation_route_one",
        "mutation_format_leaf",
        "format!",
    ] {
        assert!(msg.contains(hop), "blame chain must name `{hop}`: {msg}");
    }
}

/// Workspace self-check: the annotated hot paths really carry their
/// contracts and the whole workspace analyzes deny-clean with them on.
#[test]
fn workspace_hot_paths_carry_contracts_and_analyze_clean() {
    let report = xtask::analyze_workspace(&repo_root()).expect("workspace scan");

    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.level == Level::Deny)
        .map(|d| d.render())
        .collect();
    assert!(
        denies.is_empty(),
        "workspace must be free of deny-level findings:\n{}",
        denies.join("\n")
    );

    let has = |kind: &str, function: &str| {
        report
            .contracts
            .iter()
            .any(|c| c.kind == kind && c.function == function)
    };
    // The PR-3 delivery path and PR-5 incremental-move path hold their
    // allocation contracts statically, not just under the bench gate.
    assert!(has("zero_alloc", "deliver"), "deliver must be zero_alloc");
    assert!(
        has("zero_alloc", "set_position"),
        "set_position must be zero_alloc"
    );
    assert!(
        has("zero_alloc", "relocate"),
        "grid move must be zero_alloc"
    );
    // Protocol surfaces are contracted deterministic.
    assert!(has("deterministic", "deliver"));
    assert!(has("deterministic", "run_full_election"));
    assert!(has("deterministic", "execute_plan"));
    assert!(
        report.cold_count() >= 3,
        "the sanctioned cold paths must be marked"
    );
}
