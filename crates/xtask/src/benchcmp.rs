//! `cargo xtask benchcmp` — compare two `MICROBENCH_JSON` files and
//! gate on regressions.
//!
//! The microbench harness (crates/microbench) appends one JSON object
//! per benchmark: `{"name":"...","median_ns":...,"iters":...,
//! "allocs_per_iter":...}`. This module diffs a committed baseline
//! against a fresh run:
//!
//! - **`allocs_per_iter` gates hard.** Allocation counts are
//!   deterministic — independent of CPU load, frequency scaling or the
//!   shared-runner lottery — so any growth beyond the tolerance fails
//!   the comparison. A baseline of exactly 0 is a contract: the
//!   current run must also be 0 (the deliver-path "zero per-envelope
//!   heap allocation" invariant from DESIGN.md §12).
//! - **`median_ns` is advisory.** Wall-clock on shared CI runners is
//!   noisy; regressions beyond the tolerance are reported as warnings
//!   only and never affect the exit status.
//! - **A baseline bench missing from the current run fails** — the
//!   gate must not silently shrink. New benches in the current run are
//!   reported informationally (commit a refreshed baseline to adopt
//!   them).

use std::fmt::Write as _;

/// One parsed benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark label, e.g. `deliver_dense_broadcast_100`.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Heap allocations per iteration (deterministic).
    pub allocs_per_iter: f64,
}

/// Outcome of one comparison.
#[derive(Debug, Clone, Default)]
pub struct CmpReport {
    /// Hard failures (allocation regressions, missing benches).
    pub failures: Vec<String>,
    /// Advisory warnings (wall-clock regressions).
    pub warnings: Vec<String>,
    /// Informational notes (new benches, improvements).
    pub notes: Vec<String>,
}

impl CmpReport {
    /// Whether the gate should fail.
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Render the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            let _ = writeln!(out, "FAIL  {f}");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warn  {w}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note  {n}");
        }
        let _ = writeln!(
            out,
            "benchcmp: {} failure(s), {} warning(s)",
            self.failures.len(),
            self.warnings.len()
        );
        out
    }
}

fn find_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn find_string(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Labels are ascii identifiers plus '/'; the harness escapes
    // backslashes and quotes, so scan for the first unescaped quote.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Parse a `MICROBENCH_JSON` file's contents (one JSON object per
/// line; blank lines ignored). Later records with the same name win,
/// matching the harness's append semantics.
pub fn parse_records(contents: &str) -> Vec<BenchRecord> {
    let mut records: Vec<BenchRecord> = Vec::new();
    for line in contents.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(name), Some(median_ns), Some(allocs_per_iter)) = (
            find_string(line, "name"),
            find_number(line, "median_ns"),
            find_number(line, "allocs_per_iter"),
        ) else {
            continue;
        };
        if let Some(existing) = records.iter_mut().find(|r| r.name == name) {
            existing.median_ns = median_ns;
            existing.allocs_per_iter = allocs_per_iter;
        } else {
            records.push(BenchRecord {
                name,
                median_ns,
                allocs_per_iter,
            });
        }
    }
    records
}

/// Compare `current` against `baseline` with a fractional `tolerance`
/// (0.15 = 15%). See the module docs for the gating rules.
pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord], tolerance: f64) -> CmpReport {
    let mut report = CmpReport::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|r| r.name == base.name) else {
            report.failures.push(format!(
                "{}: present in baseline but missing from current run",
                base.name
            ));
            continue;
        };
        // Allocation counts are deterministic: gate hard. A zero
        // baseline allows zero, full stop; a nonzero baseline allows
        // the tolerance plus one allocation of absolute slack so a
        // 2-alloc bench does not fail on rounding.
        let alloc_limit = if base.allocs_per_iter == 0.0 {
            0.0
        } else {
            base.allocs_per_iter * (1.0 + tolerance) + 1.0
        };
        if cur.allocs_per_iter > alloc_limit {
            report.failures.push(format!(
                "{}: allocs/iter {} exceeds baseline {} (limit {:.1})",
                base.name, cur.allocs_per_iter, base.allocs_per_iter, alloc_limit
            ));
        }
        // Wall-clock is advisory on shared runners.
        if cur.median_ns > base.median_ns * (1.0 + tolerance) {
            report.warnings.push(format!(
                "{}: median {:.0} ns is {:+.1}% vs baseline {:.0} ns (advisory)",
                base.name,
                cur.median_ns,
                (cur.median_ns / base.median_ns - 1.0) * 100.0,
                base.median_ns
            ));
        } else if cur.median_ns < base.median_ns * (1.0 - tolerance) {
            report.notes.push(format!(
                "{}: median improved {:.1}% ({:.0} ns -> {:.0} ns); consider refreshing the baseline",
                base.name,
                (1.0 - cur.median_ns / base.median_ns) * 100.0,
                base.median_ns,
                cur.median_ns
            ));
        }
    }
    for cur in current {
        if !baseline.iter().any(|r| r.name == cur.name) {
            report.notes.push(format!(
                "{}: new bench not in baseline (commit a refreshed BENCH_baseline.json to gate it)",
                cur.name
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, median_ns: f64, allocs: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_owned(),
            median_ns,
            allocs_per_iter: allocs,
        }
    }

    #[test]
    fn parses_harness_output_lines() {
        let text = "\
{\"name\":\"deliver_dense_broadcast_100\",\"median_ns\":70560.0,\"iters\":50,\"allocs_per_iter\":0.0}\n\
\n\
{\"name\":\"model_fit/32\",\"median_ns\":1234.5,\"iters\":100,\"allocs_per_iter\":2.0}\n";
        let records = parse_records(text);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "deliver_dense_broadcast_100");
        assert_eq!(records[0].allocs_per_iter, 0.0);
        assert_eq!(records[1].name, "model_fit/32");
        assert_eq!(records[1].median_ns, 1234.5);
    }

    #[test]
    fn duplicate_names_keep_the_last_record() {
        let text = "\
{\"name\":\"a\",\"median_ns\":10.0,\"iters\":1,\"allocs_per_iter\":1.0}\n\
{\"name\":\"a\",\"median_ns\":20.0,\"iters\":1,\"allocs_per_iter\":3.0}\n";
        let records = parse_records(text);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].median_ns, 20.0);
        assert_eq!(records[0].allocs_per_iter, 3.0);
    }

    #[test]
    fn allocation_regressions_fail_hard() {
        let base = [rec("a", 100.0, 10.0)];
        let cur = [rec("a", 100.0, 13.0)];
        let report = compare(&base, &cur, 0.15);
        assert!(report.failed());
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn zero_alloc_baseline_is_a_contract() {
        let base = [rec("deliver", 100.0, 0.0)];
        let ok = compare(&base, &[rec("deliver", 100.0, 0.0)], 0.15);
        assert!(!ok.failed());
        let bad = compare(&base, &[rec("deliver", 100.0, 0.5)], 0.15);
        assert!(bad.failed());
    }

    #[test]
    fn wall_clock_regressions_warn_but_pass() {
        let base = [rec("a", 100.0, 2.0)];
        let cur = [rec("a", 400.0, 2.0)];
        let report = compare(&base, &cur, 0.15);
        assert!(!report.failed());
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn missing_bench_fails_and_new_bench_notes() {
        let base = [rec("gone", 100.0, 0.0)];
        let cur = [rec("fresh", 100.0, 0.0)];
        let report = compare(&base, &cur, 0.15);
        assert!(report.failed());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn small_alloc_counts_get_absolute_slack() {
        // 2 -> 3 allocs is within the +1 absolute slack even though
        // it is a 50% relative increase.
        let base = [rec("a", 100.0, 2.0)];
        let cur = [rec("a", 100.0, 3.0)];
        assert!(!compare(&base, &cur, 0.15).failed());
        let cur = [rec("a", 100.0, 4.0)];
        assert!(compare(&base, &cur, 0.15).failed());
    }
}
