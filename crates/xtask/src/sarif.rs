//! Machine-readable emission: SARIF 2.1.0 and GitHub Actions workflow
//! commands.
//!
//! SARIF is the interchange format GitHub's code-scanning UI ingests;
//! the `::error file=…,line=…` workflow commands render findings
//! inline on the PR diff even without code-scanning enabled. Both are
//! hand-rolled over the same minimal JSON helpers as `--json` — the
//! analyzer stays dependency-free.

use crate::{json_escape, lint_infos, Diagnostic, Level, Report};

/// Render a report as a minimal SARIF 2.1.0 log with one run and one
/// rule per lint.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"xtask-analyze\",\n          \"informationUri\": \"https://example.org/snapshot-queries\",\n          \"rules\": [\n",
    );
    let infos = lint_infos();
    for (i, info) in infos.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            info.name,
            json_escape(info.summary),
            if info.level == "deny" { "error" } else { "warning" },
            if i + 1 < infos.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
            d.lint,
            match d.level {
                Level::Deny => "error",
                Level::Warn => "warning",
            },
            json_escape(&d.message),
            json_escape(&d.path.display().to_string()),
            d.line,
            d.col,
            if i + 1 < report.diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}");
    out
}

/// Escape a workflow-command *message* (`%`, newlines).
fn escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escape a workflow-command *property value* (additionally `,`, `:`).
fn escape_property(s: &str) -> String {
    escape_data(s).replace(',', "%2C").replace(':', "%3A")
}

/// Render one diagnostic as a GitHub Actions workflow command
/// (`::error file=…,line=…,col=…,title=…::message`).
pub fn to_github_annotation(d: &Diagnostic) -> String {
    format!(
        "::{} file={},line={},col={},title={}::{}",
        match d.level {
            Level::Deny => "error",
            Level::Warn => "warning",
        },
        escape_property(&d.path.display().to_string()),
        d.line,
        d.col,
        escape_property(d.lint),
        escape_data(&format!("{} ({})", d.message, d.suggestion)),
    )
}

/// Render every diagnostic in the report as workflow commands, one per
/// line.
pub fn to_github_annotations(report: &Report) -> String {
    report
        .diagnostics
        .iter()
        .map(to_github_annotation)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(message: &str) -> Diagnostic {
        Diagnostic {
            lint: "no_unwrap",
            level: Level::Deny,
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 3,
            col: 7,
            message: message.to_string(),
            suggestion: "fix it",
        }
    }

    #[test]
    fn sarif_contains_schema_rules_and_results() {
        let mut r = Report::default();
        r.diagnostics.push(diag("boom"));
        let s = to_sarif(&r);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"no_unwrap\""));
        assert!(s.contains("\"startLine\": 3"));
        // One rule entry per known lint.
        assert_eq!(
            s.matches("\"shortDescription\"").count(),
            crate::LINT_NAMES.len()
        );
    }

    #[test]
    fn github_annotation_escapes_message_and_properties() {
        let d = diag("50% broken\nsecond line");
        let a = to_github_annotation(&d);
        assert!(a.starts_with("::error file=crates/x/src/a.rs,line=3,col=7,title=no_unwrap::"));
        assert!(a.contains("50%25 broken%0Asecond line"));
        assert!(!a.contains('\n'));
    }

    #[test]
    fn warn_levels_map_to_warning_commands() {
        let mut d = diag("careful");
        d.level = Level::Warn;
        assert!(to_github_annotation(&d).starts_with("::warning "));
    }
}
