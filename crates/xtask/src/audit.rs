//! Suppression-budget audit (`cargo xtask analyze --allow-audit`).
//!
//! Every `xtask-allow` and every `xtask-contract(alloc_cold)` is a
//! hole punched in a lint. Individually each is justified; in
//! aggregate they rot — so the total is budgeted in `xtask.toml` at
//! the repo root (next to `clippy.toml`, which mirrors the same
//! policy for clippy). The audit fails when the honored-suppression
//! count exceeds the committed budget, forcing the budget bump into
//! the same diff as the new allow where a reviewer can see both.

use crate::Report;
use std::collections::BTreeMap;

/// Parsed `[allow-budget]` section of `xtask.toml`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Maximum total suppressions (honored allows + alloc_cold marks).
    pub total: usize,
    /// Optional per-lint ceilings; `alloc_cold` budgets the cold
    /// marks.
    pub per_lint: BTreeMap<String, usize>,
}

/// Parse the `[allow-budget]` section from `xtask.toml` text. Keys are
/// `total = N` plus optional `lint_name = N` ceilings. Unknown
/// sections are ignored so the file can grow other knobs later.
pub fn parse_budget(text: &str) -> Option<Budget> {
    let mut budget = Budget::default();
    let mut in_section = false;
    let mut seen = false;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[allow-budget]";
            continue;
        }
        if !in_section {
            continue;
        }
        let mut parts = line.splitn(2, '=');
        let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let Ok(n) = value.parse::<usize>() else {
            continue;
        };
        seen = true;
        if key == "total" {
            budget.total = n;
        } else {
            budget.per_lint.insert(key.to_string(), n);
        }
    }
    seen.then_some(budget)
}

/// Outcome of one audit.
#[derive(Debug)]
pub struct AuditResult {
    /// Human-readable table.
    pub rendered: String,
    /// True when a ceiling was exceeded.
    pub failed: bool,
}

/// Audit a report's suppression counts against the budget.
pub fn audit(report: &Report, budget: &Budget) -> AuditResult {
    let mut counts: BTreeMap<&str, usize> = report
        .allow_counts
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let cold = report.cold_count();
    if cold > 0 {
        counts.insert("alloc_cold", cold);
    }
    let total: usize = counts.values().sum();

    let mut rendered = String::from("suppression audit (honored allows + alloc_cold marks)\n");
    let mut failed = false;
    for (lint, n) in &counts {
        let ceiling = budget.per_lint.get(*lint);
        let status = match ceiling {
            Some(c) if n > c => {
                failed = true;
                "OVER"
            }
            Some(_) => "ok",
            None => "-",
        };
        let ceiling_str = ceiling.map_or("-".to_string(), |c| c.to_string());
        rendered.push_str(&format!(
            "  {lint:<24} {n:>3} / {ceiling_str:<4} {status}\n"
        ));
    }
    let total_status = if total > budget.total {
        failed = true;
        "OVER"
    } else {
        "ok"
    };
    rendered.push_str(&format!(
        "  {:<24} {:>3} / {:<4} {}\n",
        "total", total, budget.total, total_status
    ));
    if failed {
        rendered.push_str(
            "audit FAILED: prune a suppression or raise the budget in xtask.toml \
             ([allow-budget]) in the same reviewed diff\n",
        );
    }
    AuditResult { rendered, failed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContractSummary, Report};
    use std::path::PathBuf;

    fn report(allows: &[(&str, usize)], cold: usize) -> Report {
        let mut r = Report::default();
        for (lint, n) in allows {
            r.allow_counts.insert(lint.to_string(), *n);
        }
        for i in 0..cold {
            r.contracts.push(ContractSummary {
                kind: "alloc_cold".into(),
                function: format!("sink{i}"),
                path: PathBuf::from("x.rs"),
                line: 1,
            });
        }
        r
    }

    #[test]
    fn parses_budget_section() {
        let b = parse_budget(
            "# comment\n[allow-budget]\ntotal = 12  # inline comment\nno_expect = 4\n\n\
             [other]\ntotal = 99\n",
        )
        .expect("budget parsed");
        assert_eq!(b.total, 12);
        assert_eq!(b.per_lint.get("no_expect"), Some(&4));
        assert_eq!(b.per_lint.len(), 1);
    }

    #[test]
    fn missing_section_is_none() {
        assert!(parse_budget("[other]\ntotal = 3\n").is_none());
    }

    #[test]
    fn total_over_budget_fails() {
        let r = report(&[("no_expect", 3)], 2);
        let b = Budget {
            total: 4,
            per_lint: BTreeMap::new(),
        };
        let out = audit(&r, &b);
        assert!(out.failed);
        assert!(out.rendered.contains("total"));
        assert!(out.rendered.contains("OVER"));
    }

    #[test]
    fn per_lint_ceiling_fails_even_under_total() {
        let r = report(&[("no_expect", 3)], 0);
        let mut per_lint = BTreeMap::new();
        per_lint.insert("no_expect".to_string(), 2);
        let out = audit(
            &r,
            &Budget {
                total: 10,
                per_lint,
            },
        );
        assert!(out.failed);
    }

    #[test]
    fn under_budget_passes_and_counts_cold_marks() {
        let r = report(&[("no_expect", 2)], 3);
        let out = audit(
            &r,
            &Budget {
                total: 5,
                per_lint: BTreeMap::new(),
            },
        );
        assert!(!out.failed, "{}", out.rendered);
        assert!(out.rendered.contains("alloc_cold"));
    }
}
