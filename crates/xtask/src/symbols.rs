//! Workspace-wide symbol table and call graph.
//!
//! The contract passes ([`crate::contracts`]) need to answer "what can
//! `Network::deliver` reach, through any call chain, in any crate?" —
//! a question the file-local scan in [`crate::callgraph`] cannot. This
//! module parses every scanned file into [`FnDecl`]s (name, location,
//! call sites, allocation and nondeterminism sites) and resolves call
//! sites to candidate declarations with three precision guards:
//!
//! 1. **Dependency direction** — an edge from crate A may only bind to
//!    a function in A itself or a crate A (transitively) depends on,
//!    per the workspace `Cargo.toml` manifests. This is what keeps a
//!    protocol function's `.record(…)` from "reaching" a
//!    similarly-named helper in the bench harness: `core` does not
//!    depend on `bench`, so no such edge exists.
//! 2. **Scope narrowing** — among the surviving candidates, same-file
//!    declarations win over same-crate declarations, which win over
//!    the rest. This mirrors how unqualified names actually resolve in
//!    practice without a type checker.
//! 3. **Ubiquitous-trait-method exclusion** — `clone`, `fmt`, `eq` and
//!    friends are implemented by nearly every type, so binding a
//!    `.clone()` call to *some* `fn clone` in the workspace would be
//!    wrong far more often than right. Declarations with these names
//!    are kept out of the table entirely; `.clone()` is still audited,
//!    but as a direct *site* in the calling function (see
//!    [`alloc_site_patterns`]), not as a call edge.
//!
//! The result is deliberately conservative in both directions the
//! analyzer can afford: a spurious edge can only produce a diagnostic
//! if the target actually contains a violation site (suppressed with a
//! justified site-level allow), and a missed edge is no worse than the
//! pre-contract state of the world — the dynamic bench gates remain
//! the backstop.

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Trait-method names too ubiquitous to bind call edges through (see
/// module docs).
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "drop",
    "deref",
    "deref_mut",
    "from",
    "into",
    "next",
    // Every std container has `clear`; a `.clear()` on a recycled Vec
    // must not bind to a workspace type's own `fn clear`.
    "clear",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// What kind of contract-relevant pattern a [`Site`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Allocates (or may allocate) on the heap.
    Alloc,
    /// Leaks nondeterminism (hash order, ambient RNG, wall clock,
    /// unmanaged threads).
    Nondet,
}

/// A contract-relevant pattern found in a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Which contract family the pattern violates.
    pub kind: SiteKind,
    /// Pattern rendered for diagnostics, e.g. `` `format!` `` or
    /// `` `.push(…)` ``.
    pub what: &'static str,
    /// One-phrase consequence, e.g. "allocates a fresh String".
    pub why: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function declaration parsed from the token stream.
#[derive(Debug)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// File the declaration is in.
    pub path: PathBuf,
    /// Crate directory name (`netsim`, `core`, …; `root` for the
    /// top-level `src/`, the parent directory name for out-of-tree
    /// fixtures).
    pub crate_name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Allocation / nondeterminism sites in body order.
    pub sites: Vec<Site>,
}

/// The workspace symbol table: every parsed function plus name and
/// dependency indexes for call resolution.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All declarations, in (file, source) order.
    pub fns: Vec<FnDecl>,
    /// name → indexes into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// crate dir name → transitive dependency closure (crate dir
    /// names, including itself). Crates absent from the map bind
    /// unrestricted (fixture sources have no manifest).
    deps: BTreeMap<String, BTreeSet<String>>,
}

/// The crate a scanned file belongs to: the component after `crates`
/// when present, `root` for the repo's own `src/`, otherwise the
/// parent directory name.
pub fn crate_of(path: &Path) -> String {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    for (i, c) in comps.iter().enumerate() {
        if c == "crates" && i + 1 < comps.len() {
            return comps[i + 1].clone();
        }
        if c == "src" && i > 0 && comps[i - 1] == "repo" {
            return "root".into();
        }
    }
    // `<repo>/src/lib.rs` without a recognizable repo dir name, or a
    // fixture: fall back to the parent directory.
    comps
        .iter()
        .rev()
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "root".into())
}

impl SymbolTable {
    /// Feed one lexed file into the table. `excluded` marks test-only
    /// token regions (never scanned).
    pub fn add_file(&mut self, path: &Path, lexed: &Lexed, excluded: &[bool]) {
        let crate_name = crate_of(path);
        parse_fns(path, &crate_name, &lexed.tokens, excluded, &mut self.fns);
    }

    /// Record one crate's transitive dependency closure (crate dir
    /// names, including the crate itself).
    pub fn set_deps(&mut self, crate_name: &str, closure: BTreeSet<String>) {
        self.deps.insert(crate_name.to_string(), closure);
    }

    /// Build the name index. Call once after the last `add_file`.
    pub fn finish(&mut self) {
        self.by_name.clear();
        for (i, f) in self.fns.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_default().push(i);
        }
    }

    /// Declarations with the given name, unfiltered.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Find a function by name within a specific file.
    pub fn find_in_file(&self, name: &str, path: &Path) -> Option<usize> {
        self.named(name)
            .iter()
            .copied()
            .find(|&i| self.fns[i].path == path)
    }

    /// Resolve one call site from `caller` to candidate declarations,
    /// applying the dependency-direction filter and scope narrowing
    /// described in the module docs.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let from = &self.fns[caller];
        let mut candidates: Vec<usize> = self
            .named(&call.name)
            .iter()
            .copied()
            .filter(|&i| i != caller)
            .collect();
        if let Some(closure) = self.deps.get(&from.crate_name) {
            candidates.retain(|&i| {
                let to = &self.fns[i].crate_name;
                // Targets without a manifest (fixtures) stay bindable.
                closure.contains(to) || !self.deps.contains_key(to)
            });
        }
        if candidates.iter().any(|&i| self.fns[i].path == from.path) {
            candidates.retain(|&i| self.fns[i].path == from.path);
        } else if candidates
            .iter()
            .any(|&i| self.fns[i].crate_name == from.crate_name)
        {
            candidates.retain(|&i| self.fns[i].crate_name == from.crate_name);
        }
        candidates
    }
}

/// Parse the manifest text of one crate, returning the *direct*
/// in-workspace dependencies as crate dir names. Recognizes both
/// `snapshot-foo.workspace = true` and `snapshot-foo = { … }` forms
/// under `[dependencies]` (dev- and build-dependencies are ignored:
/// test code is not scanned).
pub fn manifest_deps(manifest: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.starts_with('#') {
            continue;
        }
        let key: &str = line
            .split(|c: char| c == '.' || c == '=' || c.is_whitespace())
            .next()
            .unwrap_or("");
        if let Some(dir) = key.strip_prefix("snapshot-") {
            deps.insert(dir.to_string());
        }
    }
    deps
}

/// Load the dependency closures of every workspace crate into `table`
/// by reading `crates/*/Cargo.toml` plus the root manifest. Missing or
/// unreadable manifests are skipped (the affected crate then binds
/// unrestricted, which is only less precise, never unsound for the
/// workspace's own layout).
pub fn load_workspace_deps(repo_root: &Path, table: &mut SymbolTable) {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = repo_root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.filter_map(Result::ok) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Ok(text) = std::fs::read_to_string(entry.path().join("Cargo.toml")) {
                direct.insert(name, manifest_deps(&text));
            }
        }
    }
    if let Ok(text) = std::fs::read_to_string(repo_root.join("Cargo.toml")) {
        // The root manifest holds both [workspace.dependencies] and the
        // root package's own [dependencies]; manifest_deps only reads
        // the latter.
        direct.insert("root".into(), manifest_deps(&text));
    }
    for name in direct.keys().cloned().collect::<Vec<_>>() {
        let mut closure = BTreeSet::new();
        let mut stack = vec![name.clone()];
        while let Some(cur) = stack.pop() {
            if !closure.insert(cur.clone()) {
                continue;
            }
            if let Some(ds) = direct.get(&cur) {
                stack.extend(ds.iter().cloned());
            }
        }
        table.set_deps(&name, closure);
    }
}

/// Heap-allocation patterns recognized as [`SiteKind::Alloc`] sites,
/// split by how they appear in tokens.
mod alloc_site_patterns {
    /// `name!(…)` macros that build heap values.
    pub const MACROS: &[(&str, &str)] = &[
        ("`format!`", "allocates a fresh String"),
        ("`vec!`", "allocates a fresh Vec"),
    ];

    /// `.name(…)` method patterns that definitely allocate.
    pub const METHODS_DEFINITE: &[(&str, &str)] = &[
        ("`.to_vec()`", "copies into a fresh Vec"),
        ("`.to_string()`", "copies into a fresh String"),
        ("`.to_owned()`", "copies into a fresh owned value"),
        ("`.collect()`", "materializes an iterator into a container"),
        ("`.with_capacity(…)`", "allocates backing storage up front"),
    ];

    /// `.name(…)` method patterns that allocate unless the receiver's
    /// capacity was recycled (amortized-growth sites). These are the
    /// sites the zero-alloc bench gates prove warm; a justified
    /// site-level allow documents each one.
    pub const METHODS_AMORTIZED: &[(&str, &str)] = &[
        (
            "`.push(…)`",
            "grows the receiver when capacity is exhausted",
        ),
        (
            "`.push_str(…)`",
            "grows the receiver when capacity is exhausted",
        ),
        (
            "`.push_back(…)`",
            "grows the receiver when capacity is exhausted",
        ),
        (
            "`.insert(…)`",
            "may allocate container nodes or grow storage",
        ),
        (
            "`.extend(…)`",
            "grows the receiver when capacity is exhausted",
        ),
        (
            "`.extend_from_slice(…)`",
            "grows the receiver when capacity is exhausted",
        ),
        ("`.append(…)`", "may move elements into fresh storage"),
        ("`.reserve(…)`", "grows backing storage"),
        ("`.clone()`", "clones into the heap for owning types"),
    ];

    /// `Path::name(…)` qualified-call patterns.
    pub const QUALIFIED: &[(&str, &str, &str)] = &[
        ("Box", "new", "boxes a fresh heap value"),
        ("String", "from", "allocates a fresh String"),
        ("Vec", "with_capacity", "allocates backing storage up front"),
        (
            "String",
            "with_capacity",
            "allocates backing storage up front",
        ),
    ];
}

fn method_site(name: &str) -> Option<(&'static str, &'static str)> {
    for &(what, why) in alloc_site_patterns::METHODS_DEFINITE
        .iter()
        .chain(alloc_site_patterns::METHODS_AMORTIZED)
    {
        // `what` renders as `.name(…)` / `.name()`; match on the bare
        // name inside.
        let bare = what
            .trim_start_matches("`.")
            .split('(')
            .next()
            .unwrap_or("");
        if bare == name {
            return Some((what, why));
        }
    }
    None
}

/// Parse every non-test `fn` in the token stream into `out`,
/// recording call sites and contract-relevant sites per body.
fn parse_fns(
    path: &Path,
    crate_name: &str,
    tokens: &[Token],
    excluded: &[bool],
    out: &mut Vec<FnDecl>,
) {
    let mut i = 0;
    while i < tokens.len() {
        if excluded[i] || tokens[i].kind.ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.kind.ident() else {
            i += 1;
            continue;
        };
        // Signature runs to the body `{` or a trait-declaration `;`;
        // angle depth guards against `where T: Fn() -> Vec<{…}>`-ish
        // token soup closing early.
        let mut j = i + 2;
        let mut body_open = None;
        let mut angle_depth = 0i32;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle_depth += 1,
                TokenKind::Punct('>') => angle_depth -= 1,
                TokenKind::Punct('{') if angle_depth <= 0 => {
                    body_open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if angle_depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(tokens, open);
        if !UBIQUITOUS_METHODS.contains(&name) {
            let mut decl = FnDecl {
                name: name.to_string(),
                path: path.to_path_buf(),
                crate_name: crate_name.to_string(),
                line: name_tok.line,
                calls: Vec::new(),
                sites: Vec::new(),
            };
            scan_body(tokens, open + 1, close, &mut decl);
            out.push(decl);
        }
        i = close + 1;
    }
}

fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Record call sites and alloc/nondet sites inside one function body.
fn scan_body(tokens: &[Token], start: usize, end: usize, decl: &mut FnDecl) {
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        let Some(name) = t.kind.ident() else {
            j += 1;
            continue;
        };
        let next_is = |c: char| tokens.get(j + 1).is_some_and(|t| t.kind.is_punct(c));
        let prev_is = |c: char| j > 0 && tokens[j - 1].kind.is_punct(c);
        let site = |what, why, kind| Site {
            kind,
            what,
            why,
            line: t.line,
            col: t.col,
        };

        // Macro allocation sites: `format!(`, `vec![`.
        if next_is('!') {
            for &(what, why) in alloc_site_patterns::MACROS {
                if what.trim_start_matches('`').trim_end_matches("!`") == name {
                    decl.sites.push(site(what, why, SiteKind::Alloc));
                }
            }
            j += 1;
            continue;
        }

        // Method sites: `.push(`, `.collect::<…>(`, … — the paren is
        // not required so turbofish forms still match.
        if prev_is('.') {
            if let Some((what, why)) = method_site(name) {
                decl.sites.push(site(what, why, SiteKind::Alloc));
            }
        }

        // Qualified allocation sites: `Box::new(`, `String::from(`, …
        // matched on the *first* segment so the second is consumed
        // below as an ordinary call token.
        if next_is(':') && tokens.get(j + 2).is_some_and(|t| t.kind.is_punct(':')) {
            if let Some(seg2) = tokens.get(j + 3).and_then(|t| t.kind.ident()) {
                for &(ty, method, why) in alloc_site_patterns::QUALIFIED {
                    if ty == name && method == seg2 {
                        let what: &'static str = match (ty, method) {
                            ("Box", "new") => "`Box::new(…)`",
                            ("String", "from") => "`String::from(…)`",
                            _ => "`with_capacity(…)`",
                        };
                        decl.sites.push(site(what, why, SiteKind::Alloc));
                    }
                }
                // Nondeterminism: qualified forms.
                match (name, seg2) {
                    ("rand", "random") => decl.sites.push(site(
                        "`rand::random`",
                        "draws from the ambient thread RNG",
                        SiteKind::Nondet,
                    )),
                    ("Instant", "now") | ("SystemTime", "now") => decl.sites.push(site(
                        "`::now()` wall clock",
                        "leaks wall-clock time into simulated state",
                        SiteKind::Nondet,
                    )),
                    ("thread", "spawn") => decl.sites.push(site(
                        "`thread::spawn`",
                        "spawns an unmanaged thread outside the sanctioned bench pool",
                        SiteKind::Nondet,
                    )),
                    _ => {}
                }
            }
        }

        // Nondeterminism: bare identifiers.
        match name {
            "HashMap" | "HashSet" => decl.sites.push(site(
                "`HashMap`/`HashSet`",
                "iteration order is nondeterministic (RandomState)",
                SiteKind::Nondet,
            )),
            "thread_rng" => decl.sites.push(site(
                "`thread_rng`",
                "draws from ambient OS entropy",
                SiteKind::Nondet,
            )),
            _ => {}
        }

        // Call edges: `name(` plain or method, skipping keywords,
        // ubiquitous trait methods, and macro-like uses handled above.
        let is_call = next_is('(');
        if is_call && !UBIQUITOUS_METHODS.contains(&name) && !is_keyword(name) {
            decl.calls.push(CallSite {
                name: name.to_string(),
                line: t.line,
                col: t.col,
            });
        }
        j += 1;
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "move"
            | "loop"
            | "else"
            | "in"
            | "as"
            | "use"
            | "pub"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::test_regions;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (path, src) in files {
            let lexed = lex(src);
            let excluded = test_regions(&lexed.tokens);
            t.add_file(Path::new(path), &lexed, &excluded);
        }
        t.finish();
        t
    }

    #[test]
    fn crate_of_classifies_paths() {
        assert_eq!(crate_of(Path::new("crates/netsim/src/sim.rs")), "netsim");
        assert_eq!(
            crate_of(Path::new("/root/repo/crates/core/src/lib.rs")),
            "core"
        );
        assert_eq!(crate_of(Path::new("/root/repo/src/lib.rs")), "root");
        assert_eq!(crate_of(Path::new("fixtures/crate_a/lib.rs")), "crate_a");
    }

    #[test]
    fn parses_fns_with_calls_and_sites() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "fn a(v: &mut Vec<u8>) { helper(1); v.push(2); let s = format!(\"x\"); }\n\
             fn helper(n: u8) -> u8 { n }\n",
        )]);
        assert_eq!(t.fns.len(), 2);
        let a = &t.fns[0];
        assert_eq!(a.name, "a");
        // `helper(…)` is an edge; `.push(…)` is both an alloc *site*
        // and an edge (a workspace method named `push` must still be
        // traversed — resolution decides whether it binds).
        let call_names: Vec<&str> = a.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(call_names, vec!["helper", "push"]);
        let whats: Vec<&str> = a.sites.iter().map(|s| s.what).collect();
        assert!(whats.contains(&"`.push(…)`"), "{whats:?}");
        assert!(whats.contains(&"`format!`"), "{whats:?}");
    }

    #[test]
    fn ubiquitous_trait_methods_are_not_declared_or_called() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "impl Clone for S { fn clone(&self) -> S { S } }\n\
             fn f(s: &S) -> S { s.clone() }\n",
        )]);
        assert_eq!(t.fns.len(), 1, "clone decl must be excluded");
        let f = &t.fns[0];
        assert!(f.calls.is_empty(), "clone call must not be an edge");
        // …but the clone *site* is still recorded.
        assert!(f.sites.iter().any(|s| s.what == "`.clone()`"));
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate() {
        let t = table(&[
            (
                "crates/a/src/m.rs",
                "fn f() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/a/src/n.rs", "fn helper() {}\n"),
            ("crates/b/src/o.rs", "fn helper() {}\n"),
        ]);
        let f = t.named("f")[0];
        let bound = t.resolve(f, &t.fns[f].calls[0]);
        assert_eq!(bound.len(), 1);
        assert_eq!(t.fns[bound[0]].path, Path::new("crates/a/src/m.rs"));
    }

    #[test]
    fn dependency_direction_filters_edges() {
        let mut t = table(&[
            ("crates/core/src/m.rs", "fn f() { helper(); }\n"),
            ("crates/bench/src/o.rs", "fn helper() {}\n"),
        ]);
        // core's closure does not include bench.
        t.set_deps(
            "core",
            ["core", "netsim"].iter().map(|s| s.to_string()).collect(),
        );
        t.set_deps(
            "bench",
            ["bench", "core"].iter().map(|s| s.to_string()).collect(),
        );
        let f = t.named("f")[0];
        assert!(t.resolve(f, &t.fns[f].calls[0]).is_empty());
    }

    #[test]
    fn manifest_deps_reads_both_dependency_forms() {
        let toml = "[package]\nname = \"snapshot-core\"\n\n[dependencies]\n\
                    snapshot-netsim.workspace = true\n\
                    snapshot-datagen = { workspace = true }\n\n\
                    [dev-dependencies]\nsnapshot-bench.workspace = true\n";
        let deps = manifest_deps(toml);
        assert!(deps.contains("netsim"));
        assert!(deps.contains("datagen"));
        assert!(!deps.contains("bench"), "dev-deps must be ignored");
    }

    #[test]
    fn nondet_sites_are_recorded() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "fn f() { let m: HashMap<u8,u8> = make(); let t = Instant::now(); \
             thread::spawn(|| {}); }\n",
        )]);
        let f = &t.fns[0];
        let nondet: Vec<&str> = f
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Nondet)
            .map(|s| s.what)
            .collect();
        assert_eq!(
            nondet,
            vec![
                "`HashMap`/`HashSet`",
                "`::now()` wall clock",
                "`thread::spawn`"
            ]
        );
    }

    #[test]
    fn test_regions_are_not_parsed() {
        let t = table(&[(
            "crates/x/src/a.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { format!(\"x\"); } }\n",
        )]);
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "lib");
    }
}
