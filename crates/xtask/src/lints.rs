//! Token-pattern lints: panic-freedom, determinism, and the
//! cross-file fault/telemetry coverage check.

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, Level};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Compute which token indices sit inside test-only regions:
/// `#[cfg(test)]`-gated items and `#[test]` functions. Lints skip
/// these — tests may unwrap freely.
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Find the start of the gated item's block: the next `{`
            // not preceded by a terminating `;` (e.g. `#[cfg(test)]
            // use foo;` gates a single statement, no block).
            let mut j = attr_end;
            let mut block_start = None;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::Punct(';') => break,
                    TokenKind::Punct('{') => {
                        block_start = Some(j);
                        break;
                    }
                    _ => j += 1,
                }
            }
            if let Some(open) = block_start {
                let close = matching_brace(tokens, open);
                for slot in excluded.iter_mut().take(close + 1).skip(i) {
                    *slot = true;
                }
                i = close + 1;
                continue;
            }
            // Blockless gated item: exclude through the `;`.
            for slot in excluded.iter_mut().take(j + 1).skip(i) {
                *slot = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    excluded
}

/// If tokens at `i` begin `#[cfg(test)]`-like or `#[test]` attributes,
/// return the index just past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.kind.is_punct('#') || !tokens.get(i + 1)?.kind.is_punct('[') {
        return None;
    }
    // Find the matching `]` (attributes can nest brackets in theory;
    // parens are common).
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut close = None;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let close = close?;
    let inner: Vec<&str> = tokens[i + 2..close]
        .iter()
        .filter_map(|t| t.kind.ident())
        .collect();
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` all gate test
    // code. (`#[cfg(not(test))]` would be mis-excluded, but the
    // workspace never uses it and the analyzer's self-check would
    // surface it.)
    let gates_tests = inner.first() == Some(&"test")
        || (inner.first() == Some(&"cfg") && inner.contains(&"test") && !inner.contains(&"not"));
    if gates_tests {
        Some(close + 1)
    } else {
        None
    }
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

fn diag(
    path: &Path,
    t: &Token,
    lint: &'static str,
    level: Level,
    message: String,
    suggestion: &'static str,
) -> Diagnostic {
    Diagnostic {
        lint,
        level,
        path: path.to_path_buf(),
        line: t.line,
        col: t.col,
        message,
        suggestion,
    }
}

/// Keywords that can legally precede `[` without forming an index
/// expression (`impl [T; 4]`, `for x in [1, 2]`, …).
const NON_VALUE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Panic-freedom lints: `.unwrap()`, `.expect(`, panic-family macros,
/// and slice-index expressions.
pub fn panic_freedom(
    path: &Path,
    tokens: &[Token],
    excluded: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('.') => {
                let (Some(name_tok), Some(paren)) = (tokens.get(i + 1), tokens.get(i + 2)) else {
                    continue;
                };
                if !paren.kind.is_punct('(') {
                    continue;
                }
                match name_tok.kind.ident() {
                    Some("unwrap") => diags.push(diag(
                        path,
                        name_tok,
                        "no_unwrap",
                        Level::Deny,
                        ".unwrap() can panic under fault injection".into(),
                        "return a typed error through the crate's error enum, or justify with \
                         `// xtask-allow(no_unwrap): reason`",
                    )),
                    Some("expect") => diags.push(diag(
                        path,
                        name_tok,
                        "no_expect",
                        Level::Deny,
                        ".expect(…) can panic under fault injection".into(),
                        "return a typed error through the crate's error enum, or justify with \
                         `// xtask-allow(no_expect): reason`",
                    )),
                    _ => {}
                }
            }
            TokenKind::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && tokens.get(i + 1).is_some_and(|n| n.kind.is_punct('!'))
                    && !tokens
                        .get(i.wrapping_sub(1))
                        .is_some_and(|p| p.kind.is_punct('.') || p.kind.is_punct(':')) =>
            {
                diags.push(diag(
                    path,
                    t,
                    "no_panic",
                    Level::Deny,
                    format!("`{name}!` aborts the simulation instead of degrading"),
                    "convert to a typed error, or justify with `// xtask-allow(no_panic): reason`",
                ));
            }
            TokenKind::Punct('[') if i > 0 && !excluded[i - 1] => {
                let prev = &tokens[i - 1];
                let is_value = match &prev.kind {
                    TokenKind::Ident(id) => !NON_VALUE_KEYWORDS.contains(&id.as_str()),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
                if is_value {
                    diags.push(diag(
                        path,
                        t,
                        "slice_index",
                        Level::Warn,
                        "slice-index expression can panic on out-of-bounds".into(),
                        "prefer .get()/.get_mut() with a typed error, iterators, or justify with \
                         `// xtask-allow(slice_index): reason`",
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Determinism lints: hash-ordered collections, ambient RNG, wall
/// clocks.
pub fn determinism(path: &Path, tokens: &[Token], excluded: &[bool], diags: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        if excluded[i] {
            continue;
        }
        let t = &tokens[i];
        let Some(name) = t.kind.ident() else { continue };
        match name {
            "HashMap" | "HashSet" => diags.push(diag(
                path,
                t,
                "no_hash_collections",
                Level::Deny,
                format!("`{name}` iteration order is nondeterministic (RandomState)"),
                "use BTreeMap/BTreeSet (deterministic order), or justify with \
                 `// xtask-allow(no_hash_collections): reason`",
            )),
            "thread_rng" => diags.push(diag(
                path,
                t,
                "no_ambient_rng",
                Level::Deny,
                "`thread_rng` draws from ambient OS entropy; runs become unreproducible".into(),
                "thread a seeded `netsim::rng::DetRng` through the call path",
            )),
            "rand"
                if tokens.get(i + 1).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 3).and_then(|n| n.kind.ident()) == Some("random") =>
            {
                diags.push(diag(
                    path,
                    t,
                    "no_ambient_rng",
                    Level::Deny,
                    "`rand::random` uses the ambient thread RNG; runs become unreproducible".into(),
                    "thread a seeded `netsim::rng::DetRng` through the call path",
                ));
            }
            "Instant" | "SystemTime"
                if tokens.get(i + 1).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 3).and_then(|n| n.kind.ident()) == Some("now") =>
            {
                diags.push(diag(
                    path,
                    t,
                    "no_wall_clock",
                    Level::Deny,
                    format!("`{name}::now` leaks wall-clock time into simulated state"),
                    "use the simulator's logical clock (`netsim::clock::SimClock`); wall time \
                     belongs only in `crates/bench`",
                ));
            }
            // Only the qualified form is denied: the sanctioned bench
            // pool spawns through `std::thread::scope`'s `scope.spawn`,
            // a *method* call this pattern deliberately does not match.
            "thread"
                if tokens.get(i + 1).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|c| c.kind.is_punct(':'))
                    && tokens.get(i + 3).and_then(|n| n.kind.ident()) == Some("spawn") =>
            {
                diags.push(diag(
                    path,
                    t,
                    "no_thread_spawn",
                    Level::Deny,
                    "`thread::spawn` creates an unmanaged thread; interleaving leaks into results"
                        .into(),
                    "use the permit-bounded pool in `bench::runner` (scoped spawns), or keep the \
                     code single-threaded",
                ));
            }
            _ => {}
        }
    }
}

/// Cross-file fault/telemetry coverage (`fault_event_coverage`).
///
/// The fault-injection engine is only auditable if every fault the
/// scenario engine can apply leaves a mark in the telemetry trace.
/// This pass collects the variants of the simulator's `FaultKind`
/// enum wherever it is declared, then checks that each variant is
/// matched (as `FaultKind::Variant`) in non-test code of at least one
/// file that also references the `FaultInjected` telemetry event —
/// i.e. fault-*application* code, not the scenario parser. A variant
/// that is applied without an emission site makes traces lie by
/// omission, so uncovered variants are deny-level.
///
/// Unlike the token lints above, this check spans files and therefore
/// runs once per analysis pass; `xtask-allow` cannot suppress it —
/// the fix is always to emit the event.
#[derive(Debug, Default)]
pub struct FaultCoverage {
    /// Declared variants: name plus declaration site.
    variants: Vec<(String, PathBuf, u32, u32)>,
    /// Variants seen as `FaultKind::V` in emitting, non-test code.
    covered: BTreeSet<String>,
}

impl FaultCoverage {
    /// Feed one file's tokens into the accumulator.
    pub fn scan(&mut self, path: &Path, tokens: &[Token], excluded: &[bool]) {
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("enum")
                && tokens.get(i + 1).and_then(|t| t.kind.ident()) == Some("FaultKind")
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct('{'))
            {
                collect_enum_variants(path, tokens, i + 2, &mut self.variants);
            }
        }

        // Usages only count in files whose non-test code references the
        // `FaultInjected` event — the application path, not the parser.
        let emits = tokens
            .iter()
            .zip(excluded)
            .any(|(t, &ex)| !ex && t.kind.ident() == Some("FaultInjected"));
        if !emits {
            return;
        }
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("FaultKind")
                && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            {
                if let Some(v) = tokens.get(i + 3).and_then(|t| t.kind.ident()) {
                    self.covered.insert(v.to_string());
                }
            }
        }
    }

    /// Emit a deny-level diagnostic for every declared variant that no
    /// emitting file applies.
    pub fn finish(self, diags: &mut Vec<Diagnostic>) {
        let FaultCoverage { variants, covered } = self;
        for (name, path, line, col) in variants {
            if covered.contains(&name) {
                continue;
            }
            diags.push(Diagnostic {
                lint: "fault_event_coverage",
                level: Level::Deny,
                path,
                line,
                col,
                message: format!(
                    "`FaultKind::{name}` is never applied in code that emits the \
                     `FaultInjected` telemetry event"
                ),
                suggestion: "handle the variant in the simulator's fault-application path and \
                             emit `Event::FaultInjected` there (see `netsim/src/sim.rs`)",
            });
        }
    }
}

/// Walk an enum body starting at its opening `{`, recording each
/// variant name with its declaration site (skipping attributes, field
/// blocks and tuple payloads).
fn collect_enum_variants(
    path: &Path,
    tokens: &[Token],
    open: usize,
    variants: &mut Vec<(String, PathBuf, u32, u32)>,
) {
    let mut depth = 0usize;
    let mut expecting = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                if depth == 1 {
                    expecting = true;
                }
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return;
                }
            }
            TokenKind::Punct(',') if depth == 1 => expecting = true,
            TokenKind::Punct('#')
                if depth == 1
                    && expecting
                    && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('[')) =>
            {
                let mut brackets = 0usize;
                i += 1;
                while i < tokens.len() {
                    if tokens[i].kind.is_punct('[') {
                        brackets += 1;
                    } else if tokens[i].kind.is_punct(']') {
                        brackets -= 1;
                        if brackets == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            }
            TokenKind::Ident(name) if depth == 1 && expecting => {
                variants.push((name.clone(), path.to_path_buf(), t.line, t.col));
                expecting = false;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Cross-file event/replay coverage (`event_replay_coverage`).
///
/// The trace tooling (`snapshot-trace`, the span profiler, the perf
/// budget gate) is only trustworthy if every telemetry `Event` variant
/// the workspace can emit is understood when a trace is replayed. This
/// pass collects the variants of the telemetry `Event` enum wherever
/// it is declared, then checks that each is matched (as
/// `Event::Variant`) in non-test code of at least one file that also
/// references `TraceSummary` — the replay path, not the emitters. A
/// variant that records but never replays silently vanishes from
/// every report and budget check, so uncovered variants are
/// deny-level.
///
/// Like [`FaultCoverage`], this check spans files, runs once per
/// analysis pass, and cannot be suppressed with `xtask-allow` — the
/// fix is always to handle the variant in `telemetry/src/replay.rs`.
#[derive(Debug, Default)]
pub struct EventReplayCoverage {
    /// Declared variants: name plus declaration site.
    variants: Vec<(String, PathBuf, u32, u32)>,
    /// Variants seen as `Event::V` in replaying, non-test code.
    covered: BTreeSet<String>,
}

impl EventReplayCoverage {
    /// Feed one file's tokens into the accumulator.
    pub fn scan(&mut self, path: &Path, tokens: &[Token], excluded: &[bool]) {
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("enum")
                && tokens.get(i + 1).and_then(|t| t.kind.ident()) == Some("Event")
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct('{'))
            {
                collect_enum_variants(path, tokens, i + 2, &mut self.variants);
            }
        }

        // Usages only count in files whose non-test code references
        // `TraceSummary` — the replay path, not emitters or parsers.
        let replays = tokens
            .iter()
            .zip(excluded)
            .any(|(t, &ex)| !ex && t.kind.ident() == Some("TraceSummary"));
        if !replays {
            return;
        }
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("Event")
                && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            {
                // Filter method references like `Event::tick` — only
                // capitalized idents are variants.
                if let Some(v) = tokens.get(i + 3).and_then(|t| t.kind.ident()) {
                    if v.chars().next().is_some_and(char::is_uppercase) {
                        self.covered.insert(v.to_string());
                    }
                }
            }
        }
    }

    /// Emit a deny-level diagnostic for every declared variant no
    /// replaying file handles.
    pub fn finish(self, diags: &mut Vec<Diagnostic>) {
        let EventReplayCoverage { variants, covered } = self;
        for (name, path, line, col) in variants {
            if covered.contains(&name) {
                continue;
            }
            diags.push(Diagnostic {
                lint: "event_replay_coverage",
                level: Level::Deny,
                path,
                line,
                col,
                message: format!(
                    "`Event::{name}` is recorded but never handled in code that replays \
                     traces (`TraceSummary`)"
                ),
                suggestion: "match the variant in `telemetry/src/replay.rs` (even an explicit \
                             ignore arm) so replayed summaries account for it",
            });
        }
    }
}

/// Cross-file wake-source coverage (`wake_source_coverage`).
///
/// The event-driven core (DESIGN.md §16) rests on one invariant: every
/// event source — message delivery, timer expiry, fault application,
/// mobility — wakes the nodes it touches, so wake-list drains visit
/// exactly the nodes a full scan would have found active. This pass
/// collects the variants of the scheduler's `WakeReason` enum wherever
/// it is declared, then checks that each appears as a literal
/// `WakeReason::V` *inside the argument list of a `wake(…)` call* in
/// non-test code. References elsewhere (the `ALL` table, counter match
/// arms) do not register a wake and do not count. A source that fires
/// without a wake silently exempts its nodes from every wake-list
/// drain — the scan/wake equivalence argument breaks — so uncovered
/// variants are deny-level.
///
/// Like [`FaultCoverage`], this check spans files, runs once per
/// analysis pass, and cannot be suppressed with `xtask-allow` — the
/// fix is always to register the wake where the event source fires.
#[derive(Debug, Default)]
pub struct WakeSourceCoverage {
    /// Declared variants: name plus declaration site.
    variants: Vec<(String, PathBuf, u32, u32)>,
    /// Variants seen as `WakeReason::V` inside `wake(…)` argument
    /// lists in non-test code.
    covered: BTreeSet<String>,
}

impl WakeSourceCoverage {
    /// Feed one file's tokens into the accumulator.
    pub fn scan(&mut self, path: &Path, tokens: &[Token], excluded: &[bool]) {
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("enum")
                && tokens.get(i + 1).and_then(|t| t.kind.ident()) == Some("WakeReason")
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct('{'))
            {
                collect_enum_variants(path, tokens, i + 2, &mut self.variants);
            }
        }

        // Coverage sites are the argument lists of `wake(…)` calls.
        // The declaration `fn wake(…, reason: WakeReason)` cannot
        // false-match: its parameter type has no `::` path.
        let mut i = 0;
        while i < tokens.len() {
            if excluded[i]
                || tokens[i].kind.ident() != Some("wake")
                || !tokens.get(i + 1).is_some_and(|t| t.kind.is_punct('('))
            {
                i += 1;
                continue;
            }
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < tokens.len() && depth > 0 {
                if tokens[j].kind.is_punct('(') {
                    depth += 1;
                } else if tokens[j].kind.is_punct(')') {
                    depth -= 1;
                } else if !excluded[j]
                    && tokens[j].kind.ident() == Some("WakeReason")
                    && tokens.get(j + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|t| t.kind.is_punct(':'))
                {
                    if let Some(v) = tokens.get(j + 3).and_then(|t| t.kind.ident()) {
                        if v.chars().next().is_some_and(char::is_uppercase) {
                            self.covered.insert(v.to_string());
                        }
                    }
                }
                j += 1;
            }
            i = j;
        }
    }

    /// Emit a deny-level diagnostic for every declared variant no
    /// event source registers.
    pub fn finish(self, diags: &mut Vec<Diagnostic>) {
        let WakeSourceCoverage { variants, covered } = self;
        for (name, path, line, col) in variants {
            if covered.contains(&name) {
                continue;
            }
            diags.push(Diagnostic {
                lint: "wake_source_coverage",
                level: Level::Deny,
                path,
                line,
                col,
                message: format!(
                    "`WakeReason::{name}` is declared but no event source registers it \
                     via a `wake(…, WakeReason::{name})` call"
                ),
                suggestion: "wake the affected node where the event source fires (message/\
                             fault/mobility sources live in `netsim/src/sim.rs`; timer expiry \
                             in `netsim/src/scheduler.rs::fire_due`)",
            });
        }
    }
}

/// Cross-file store-error coverage (`store_error_coverage`).
///
/// The snapshot store's failure surface is its API: every `StoreError`
/// variant promises callers a precise, typed account of what broke in
/// a store file. That promise has two halves, and this pass checks
/// both. Each declared variant must be **constructed** in non-test
/// code outside its declaring file — a variant nothing raises is a
/// dead error path that readers will waste time defending against —
/// and **handled** in non-test code of a file that references
/// `VerifyReport`, the verify/replay path where `remediation` maps
/// every failure to an operator hint. A variant missing either half is
/// deny-level. (Display arms live in the declaring file and count for
/// neither half.)
///
/// Like [`FaultCoverage`], this check spans files, runs once per
/// analysis pass, and cannot be suppressed with `xtask-allow` — the
/// fix is to raise the variant where the failure is detected and to
/// handle it in `snapshot-store/src/verify.rs`.
#[derive(Debug, Default)]
pub struct StoreErrorCoverage {
    /// Declared variants: name plus declaration site.
    variants: Vec<(String, PathBuf, u32, u32)>,
    /// Variants seen as `StoreError::V` in non-test code outside the
    /// declaring file.
    constructed: BTreeSet<String>,
    /// Variants seen as `StoreError::V` in non-test code of files
    /// referencing `VerifyReport`.
    handled: BTreeSet<String>,
}

impl StoreErrorCoverage {
    /// Feed one file's tokens into the accumulator.
    pub fn scan(&mut self, path: &Path, tokens: &[Token], excluded: &[bool]) {
        let mut declares = false;
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("enum")
                && tokens.get(i + 1).and_then(|t| t.kind.ident()) == Some("StoreError")
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct('{'))
            {
                declares = true;
                collect_enum_variants(path, tokens, i + 2, &mut self.variants);
            }
        }

        // Handler sites only count in files whose non-test code
        // references `VerifyReport` — the verify/replay path, not the
        // raisers.
        let handles = tokens
            .iter()
            .zip(excluded)
            .any(|(t, &ex)| !ex && t.kind.ident() == Some("VerifyReport"));
        if declares && !handles {
            // Only the Display impl's arms live here; they satisfy
            // neither half.
            return;
        }
        for i in 0..tokens.len() {
            if excluded[i] {
                continue;
            }
            if tokens[i].kind.ident() == Some("StoreError")
                && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
            {
                if let Some(v) = tokens.get(i + 3).and_then(|t| t.kind.ident()) {
                    if v.chars().next().is_some_and(char::is_uppercase) {
                        // The classes are disjoint: a handler file's
                        // match arms are not construction sites (the
                        // tokens cannot tell a struct literal from a
                        // binding pattern), so raising must happen in
                        // a file that does neither.
                        if handles {
                            self.handled.insert(v.to_string());
                        } else if !declares {
                            self.constructed.insert(v.to_string());
                        }
                    }
                }
            }
        }
    }

    /// Emit a deny-level diagnostic for every declared variant missing
    /// a construction site or a verify/replay handler.
    pub fn finish(self, diags: &mut Vec<Diagnostic>) {
        let StoreErrorCoverage {
            variants,
            constructed,
            handled,
        } = self;
        for (name, path, line, col) in variants {
            if !constructed.contains(&name) {
                diags.push(Diagnostic {
                    lint: "store_error_coverage",
                    level: Level::Deny,
                    path: path.clone(),
                    line,
                    col,
                    message: format!(
                        "`StoreError::{name}` is declared but never constructed in non-test \
                         code — a dead error path"
                    ),
                    suggestion: "raise the variant where the failure is detected (the decode \
                                 scan in `snapshot-store/src/store.rs`, the field parsers in \
                                 `format.rs`), or delete it",
                });
            }
            if !handled.contains(&name) {
                diags.push(Diagnostic {
                    lint: "store_error_coverage",
                    level: Level::Deny,
                    path,
                    line,
                    col,
                    message: format!(
                        "`StoreError::{name}` has no handler in the verify/replay path \
                         (non-test code referencing `VerifyReport`)"
                    ),
                    suggestion: "handle the variant in `snapshot-store/src/verify.rs` — \
                                 `remediation` must map every failure to an operator hint",
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint_names(src: &str) -> Vec<&'static str> {
        let lexed = lex(src);
        let excluded = test_regions(&lexed.tokens);
        let mut diags = Vec::new();
        panic_freedom(Path::new("m.rs"), &lexed.tokens, &excluded, &mut diags);
        determinism(Path::new("m.rs"), &lexed.tokens, &excluded, &mut diags);
        diags.into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn finds_unwrap_and_expect() {
        assert_eq!(
            lint_names("fn f(x: Option<u8>) { x.unwrap(); x.expect(\"boom\"); }"),
            vec!["no_unwrap", "no_expect"]
        );
    }

    #[test]
    fn finds_panic_macros_but_not_method_calls() {
        assert_eq!(
            lint_names("fn f() { panic!(\"x\"); unreachable!(); todo!(); }"),
            vec!["no_panic", "no_panic", "no_panic"]
        );
        // A method *named* panic is not the macro.
        assert!(lint_names("fn f(x: T) { x.panic(); }").is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
            fn lib() -> u8 { 0 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
        "#;
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn test_attr_fn_is_exempt_but_code_after_is_not() {
        let src = r#"
            #[test]
            fn t() { Some(1).unwrap(); }
            fn lib(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        assert_eq!(lint_names(src), vec!["no_unwrap"]);
    }

    #[test]
    fn slice_index_is_warned_but_types_are_not() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { let _a: [u8; 2] = [0, 1]; v[i] }";
        assert_eq!(lint_names(src), vec!["slice_index"]);
    }

    #[test]
    fn attributes_are_not_index_expressions() {
        assert!(lint_names("#[derive(Debug)]\nstruct S { x: Vec<[f64; 2]> }").is_empty());
    }

    #[test]
    fn chained_index_after_call_is_caught() {
        assert_eq!(lint_names("fn f() -> u8 { g()[0] }"), vec!["slice_index"]);
    }

    #[test]
    fn finds_hash_collections() {
        assert_eq!(
            lint_names("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}"),
            vec!["no_hash_collections", "no_hash_collections"]
        );
    }

    #[test]
    fn finds_ambient_rng_and_clocks() {
        assert_eq!(
            lint_names("fn f() { let r = thread_rng(); let x: f64 = rand::random(); }"),
            vec!["no_ambient_rng", "no_ambient_rng"]
        );
        assert_eq!(
            lint_names("fn f() { let t = Instant::now(); let s = SystemTime::now(); }"),
            vec!["no_wall_clock", "no_wall_clock"]
        );
    }

    #[test]
    fn qualified_thread_spawn_is_denied_but_scoped_spawn_is_not() {
        assert_eq!(
            lint_names("fn f() { thread::spawn(|| {}); std::thread::spawn(|| {}); }"),
            vec!["no_thread_spawn", "no_thread_spawn"]
        );
        // The sanctioned pool spawns through a scope handle.
        assert!(lint_names("fn f(s: &Scope) { s.spawn(|| {}); scope.spawn(|| {}); }").is_empty());
    }

    #[test]
    fn rand_random_with_args_via_detrng_is_clean() {
        assert!(lint_names("fn f(rng: &mut DetRng) { rng.random_range(0..4usize); }").is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = r#"
            // calls .unwrap() and panic! and HashMap
            fn f() { let s = "thread_rng Instant::now"; let _ = s; }
        "#;
        assert!(lint_names(src).is_empty());
    }

    fn coverage(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut cov = FaultCoverage::default();
        for (name, src) in files {
            let lexed = lex(src);
            let excluded = test_regions(&lexed.tokens);
            cov.scan(Path::new(name), &lexed.tokens, &excluded);
        }
        let mut diags = Vec::new();
        cov.finish(&mut diags);
        diags
    }

    const FAULT_DECL: &str = "pub enum FaultKind { Crash { target: u32 }, Drain(f64) }";

    #[test]
    fn fault_variants_applied_by_emitting_file_are_clean() {
        let apply = "fn apply(k: FaultKind) { match k { \
                     FaultKind::Crash { .. } => emit(Event::FaultInjected {}), \
                     FaultKind::Drain(_) => emit(Event::FaultInjected {}), } }";
        let d = coverage(&[("fault.rs", FAULT_DECL), ("sim.rs", apply)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn uncovered_fault_variant_is_denied() {
        let apply = "fn apply(k: FaultKind) { \
                     if let FaultKind::Crash { .. } = k { emit(Event::FaultInjected {}) } }";
        let d = coverage(&[("fault.rs", FAULT_DECL), ("sim.rs", apply)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "fault_event_coverage");
        assert_eq!(d[0].level, Level::Deny);
        assert!(d[0].message.contains("Drain"), "{}", d[0].message);
    }

    #[test]
    fn usage_in_non_emitting_file_does_not_count_as_coverage() {
        // The scenario parser constructs every variant but emits no
        // telemetry — that must not satisfy the lint.
        let parser = "fn parse() -> FaultKind { FaultKind::Crash { target: 0 } } \
                      fn mk() -> FaultKind { FaultKind::Drain(1.0) }";
        let d = coverage(&[("fault.rs", FAULT_DECL), ("parse.rs", parser)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn test_region_usage_does_not_count_as_coverage() {
        let apply = "#[cfg(test)] mod tests { fn t() { let _ = (\
                     FaultKind::Crash { target: 0 }, FaultKind::Drain(0.0), \
                     Event::FaultInjected {}); } }";
        assert_eq!(
            coverage(&[("fault.rs", FAULT_DECL), ("sim.rs", apply)]).len(),
            2
        );
    }

    #[test]
    fn no_fault_enum_means_no_coverage_findings() {
        assert!(coverage(&[("other.rs", "fn f() { let x = 1; }")]).is_empty());
    }

    #[test]
    fn variant_attributes_and_field_blocks_parse_correctly() {
        let decl = "enum FaultKind { #[doc = \"boom\"] Crash { target: u32, down: u64 }, \
                    Blackout { x: f64, y: f64 } }";
        let d = coverage(&[("fault.rs", decl)]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("Crash"));
        assert!(d[1].message.contains("Blackout"));
    }

    fn replay_coverage(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut cov = EventReplayCoverage::default();
        for (name, src) in files {
            let lexed = lex(src);
            let excluded = test_regions(&lexed.tokens);
            cov.scan(Path::new(name), &lexed.tokens, &excluded);
        }
        let mut diags = Vec::new();
        cov.finish(&mut diags);
        diags
    }

    const EVENT_DECL: &str = "pub enum Event { MsgSent { tick: u64 }, SpanOpen { id: u64 } }";

    #[test]
    fn event_variants_handled_by_replaying_file_are_clean() {
        let replay = "impl TraceSummary { fn feed(e: &Event) { match e { \
                      Event::MsgSent { .. } => {}, Event::SpanOpen { .. } => {}, } } }";
        let d = replay_coverage(&[("event.rs", EVENT_DECL), ("replay.rs", replay)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreplayed_event_variant_is_denied() {
        let replay = "impl TraceSummary { fn feed(e: &Event) { \
                      if let Event::MsgSent { .. } = e {} } }";
        let d = replay_coverage(&[("event.rs", EVENT_DECL), ("replay.rs", replay)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "event_replay_coverage");
        assert_eq!(d[0].level, Level::Deny);
        assert!(d[0].message.contains("SpanOpen"), "{}", d[0].message);
    }

    #[test]
    fn event_usage_outside_the_replay_path_does_not_count() {
        // Emitters construct every variant but never replay — that
        // must not satisfy the lint.
        let emitter = "fn emit() { record(Event::MsgSent { tick: 0 }); \
                       record(Event::SpanOpen { id: 1 }); }";
        let d = replay_coverage(&[("event.rs", EVENT_DECL), ("sim.rs", emitter)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn event_method_references_are_not_variants() {
        // `Event::tick` (a method path, lowercase) must not be
        // mistaken for coverage of some variant.
        let replay = "impl TraceSummary { fn feed(es: &mut [Event]) { \
                      es.sort_by_key(Event::tick); \
                      if let Some(Event::MsgSent { .. }) = es.first() {} \
                      if let Some(Event::SpanOpen { .. }) = es.first() {} } }";
        assert!(replay_coverage(&[("event.rs", EVENT_DECL), ("replay.rs", replay)]).is_empty());
    }

    fn wake_coverage(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut cov = WakeSourceCoverage::default();
        for (name, src) in files {
            let lexed = lex(src);
            let excluded = test_regions(&lexed.tokens);
            cov.scan(Path::new(name), &lexed.tokens, &excluded);
        }
        let mut diags = Vec::new();
        cov.finish(&mut diags);
        diags
    }

    const WAKE_DECL: &str = "pub enum WakeReason { Message, Timer }";

    #[test]
    fn wake_reasons_registered_at_wake_calls_are_clean() {
        let src = "fn deliver(s: &mut Scheduler) { \
                   s.wake(NodeId::from_index(0), WakeReason::Message); \
                   s.wake(NodeId(1), WakeReason::Timer); }";
        let d = wake_coverage(&[("scheduler.rs", WAKE_DECL), ("sim.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unregistered_wake_reason_is_denied() {
        let src = "fn deliver(s: &mut Scheduler) { s.wake(NodeId(0), WakeReason::Message); }";
        let d = wake_coverage(&[("scheduler.rs", WAKE_DECL), ("sim.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "wake_source_coverage");
        assert_eq!(d[0].level, Level::Deny);
        assert!(d[0].message.contains("Timer"), "{}", d[0].message);
    }

    #[test]
    fn wake_reason_outside_a_wake_call_does_not_count() {
        // The `ALL` table names every variant, and the `wake` fn
        // declaration mentions the type — neither registers a wake.
        let src = "const ALL: [WakeReason; 2] = [WakeReason::Message, WakeReason::Timer]; \
                   fn wake(node: NodeId, reason: WakeReason) -> bool { true }";
        let d = wake_coverage(&[("scheduler.rs", WAKE_DECL), ("table.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn test_region_wakes_do_not_count_as_coverage() {
        let src = "#[cfg(test)] mod tests { fn t(s: &mut Scheduler) { \
                   s.wake(NodeId(0), WakeReason::Message); \
                   s.wake(NodeId(0), WakeReason::Timer); } }";
        let d = wake_coverage(&[("scheduler.rs", WAKE_DECL), ("sim.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    fn store_coverage(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut cov = StoreErrorCoverage::default();
        for (name, src) in files {
            let lexed = lex(src);
            let excluded = test_regions(&lexed.tokens);
            cov.scan(Path::new(name), &lexed.tokens, &excluded);
        }
        let mut diags = Vec::new();
        cov.finish(&mut diags);
        diags
    }

    const STORE_DECL: &str =
        "pub enum StoreError { Corrupt { offset: u64 }, Truncated { offset: u64 } } \
         impl fmt::Display for StoreError { fn fmt(&self) { match self { \
         StoreError::Corrupt { .. } => {}, StoreError::Truncated { .. } => {}, } } }";

    #[test]
    fn constructed_and_handled_store_variants_are_clean() {
        let raise = "fn scan() -> StoreError { if torn { StoreError::Truncated { offset } } \
                     else { StoreError::Corrupt { offset } } }";
        let handle = "pub fn remediation(e: &StoreError) -> &str { let _: VerifyReport; match e { \
                      StoreError::Corrupt { .. } => \"restore\", \
                      StoreError::Truncated { .. } => \"rebuild\", } }";
        let d = store_coverage(&[
            ("error.rs", STORE_DECL),
            ("store.rs", raise),
            ("verify.rs", handle),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unconstructed_store_variant_is_denied() {
        let raise = "fn scan() -> StoreError { StoreError::Corrupt { offset: 0 } }";
        let handle = "pub fn remediation(e: &StoreError) -> &str { let _: VerifyReport; match e { \
                      StoreError::Corrupt { .. } => \"restore\", \
                      StoreError::Truncated { .. } => \"rebuild\", } }";
        let d = store_coverage(&[
            ("error.rs", STORE_DECL),
            ("store.rs", raise),
            ("verify.rs", handle),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "store_error_coverage");
        assert_eq!(d[0].level, Level::Deny);
        assert!(d[0].message.contains("Truncated"), "{}", d[0].message);
        assert!(
            d[0].message.contains("never constructed"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn unhandled_store_variant_is_denied() {
        let raise = "fn scan() -> StoreError { if torn { StoreError::Truncated { offset } } \
                     else { StoreError::Corrupt { offset } } }";
        let handle = "pub fn remediation(e: &StoreError) -> &str { let _: VerifyReport; \
                      if let StoreError::Corrupt { .. } = e { \"restore\" } else { \"?\" } }";
        let d = store_coverage(&[
            ("error.rs", STORE_DECL),
            ("store.rs", raise),
            ("verify.rs", handle),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Truncated"), "{}", d[0].message);
        assert!(d[0].message.contains("no handler"), "{}", d[0].message);
    }

    #[test]
    fn display_arms_in_the_declaring_file_satisfy_neither_half() {
        // STORE_DECL alone names every variant in its Display impl;
        // both halves must still be reported missing for both variants.
        let d = store_coverage(&[("error.rs", STORE_DECL)]);
        assert_eq!(d.len(), 4, "{d:?}");
    }

    #[test]
    fn handler_file_usage_does_not_count_as_construction() {
        // Token-level scans cannot tell a struct literal from a match
        // binding, so occurrences in the VerifyReport file only count
        // as handling — raising must happen elsewhere.
        let verify = "pub fn verify() -> VerifyReport { \
                      let _ = StoreError::Corrupt { offset: 0 }; \
                      let _ = StoreError::Truncated { offset: 0 }; todo!() }";
        let d = store_coverage(&[("error.rs", STORE_DECL), ("verify.rs", verify)]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("never constructed")));
    }

    #[test]
    fn no_store_enum_means_no_store_findings() {
        assert!(store_coverage(&[("other.rs", "fn f() { let x = 1; }")]).is_empty());
    }
}
