//! Energy-accounting lints for the protocol directories.
//!
//! The paper's headline result is the ≤6-messages/node election
//! budget (§4). The repo audits that budget through
//! `NetStats::sent_in_phase`, which only works when (a) every send
//! carries a *static* phase tag and (b) every public protocol entry
//! point threads the energy-accounted `Network` through its signature
//! rather than emitting messages through ambient state. This module
//! enforces both with a file-local call-graph scan over `election/`
//! and `maintenance/` sources.

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, Level};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Method names that emit radio traffic through the simulator.
const SEND_METHODS: &[&str] = &["broadcast", "unicast", "send"];

/// One function parsed out of the token stream.
#[derive(Debug, Default)]
struct FnInfo {
    is_pub: bool,
    has_network_param: bool,
    name_line: u32,
    name_col: u32,
    /// Local functions this one calls.
    calls: BTreeSet<String>,
    /// Lines of direct send calls whose phase argument is not static.
    dynamic_sends: Vec<(u32, u32, String)>,
    /// True when the body contains any direct send call.
    sends_directly: bool,
}

/// Parse the top-level-ish functions of a file (any nesting — local
/// helper closures are attributed to the enclosing function, which is
/// what the budget audit wants).
fn parse_fns(tokens: &[Token], excluded: &[bool]) -> BTreeMap<String, FnInfo> {
    let mut fns = BTreeMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if excluded[i] || tokens[i].kind.ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.kind.ident() else {
            i += 1;
            continue;
        };
        // Visibility: look back past attributes for `pub`.
        let mut is_pub = false;
        let mut back = i;
        while back > 0 {
            back -= 1;
            match &tokens[back].kind {
                TokenKind::Ident(id) if id == "pub" => {
                    is_pub = true;
                    break;
                }
                // `pub(crate) fn` / `pub(super) fn`: step over the
                // visibility scope parens.
                TokenKind::Punct(')') | TokenKind::Punct('(') => continue,
                TokenKind::Ident(id) if id == "crate" || id == "super" || id == "in" => continue,
                _ => break,
            }
        }
        // Signature runs to the body `{` or a trait-decl `;`.
        let mut j = i + 2;
        let mut has_network_param = false;
        let mut body_open = None;
        let mut angle_depth = 0i32;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Ident(id) if id == "Network" => has_network_param = true,
                TokenKind::Punct('<') => angle_depth += 1,
                TokenKind::Punct('>') => angle_depth -= 1,
                TokenKind::Punct('{') if angle_depth <= 0 => {
                    body_open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if angle_depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(tokens, open);
        let mut info = FnInfo {
            is_pub,
            has_network_param,
            name_line: name_tok.line,
            name_col: name_tok.col,
            ..FnInfo::default()
        };
        scan_body(tokens, open + 1, close, &mut info);
        fns.insert(name.to_string(), info);
        i = close + 1;
    }
    fns
}

fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Record calls and send sites inside one function body.
fn scan_body(tokens: &[Token], start: usize, end: usize, info: &mut FnInfo) {
    let mut j = start;
    while j < end {
        let Some(name) = tokens[j].kind.ident() else {
            j += 1;
            continue;
        };
        let is_call = tokens.get(j + 1).is_some_and(|t| t.kind.is_punct('('));
        if !is_call {
            j += 1;
            continue;
        }
        let is_method = j > 0 && tokens[j - 1].kind.is_punct('.');
        if SEND_METHODS.contains(&name) && is_method {
            info.sends_directly = true;
            if !phase_arg_is_static(tokens, j + 1, end) {
                info.dynamic_sends
                    .push((tokens[j].line, tokens[j].col, name.to_string()));
            }
        } else if !is_method {
            // Plain call: candidate edge to a local function.
            info.calls.insert(name.to_string());
        }
        j += 1;
    }
}

/// Check that the *last* argument of the call whose `(` is at `open`
/// is a static phase tag: a string literal, a `Phase::X` / `phase::X`
/// path, or an ALL_CAPS constant.
fn phase_arg_is_static(tokens: &[Token], open: usize, limit: usize) -> bool {
    let mut depth = 0i32;
    let mut last_arg_start = open + 1;
    let mut close = None;
    let mut j = open;
    while j < limit {
        match &tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            // Ignore a trailing comma (directly before the close):
            // `broadcast(…, phase::X,\n)` still ends in the phase arg.
            TokenKind::Punct(',')
                if depth == 1 && !tokens.get(j + 1).is_some_and(|t| t.kind.is_punct(')')) =>
            {
                last_arg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(close) = close else { return false };
    if close <= last_arg_start {
        // Zero-argument send: nothing to audit.
        return false;
    }
    let arg = &tokens[last_arg_start..close];
    arg.iter().any(|t| match &t.kind {
        TokenKind::Str => true,
        TokenKind::Ident(id) => {
            id == "phase"
                || id == "Phase"
                || (id.len() > 1
                    && id
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()))
        }
        _ => false,
    })
}

/// Does `name` transitively reach a direct send, following local call
/// edges only?
fn reaches_send(name: &str, fns: &BTreeMap<String, FnInfo>, seen: &mut BTreeSet<String>) -> bool {
    if !seen.insert(name.to_string()) {
        return false;
    }
    let Some(info) = fns.get(name) else {
        return false;
    };
    if info.sends_directly {
        return true;
    }
    info.calls
        .iter()
        .any(|callee| reaches_send(callee, fns, seen))
}

/// The energy-accounting lints (see module docs).
pub fn energy_accounting(
    path: &Path,
    tokens: &[Token],
    excluded: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let fns = parse_fns(tokens, excluded);
    for (name, info) in &fns {
        for (line, col, method) in &info.dynamic_sends {
            diags.push(Diagnostic {
                lint: "unaccounted_send",
                level: Level::Deny,
                path: path.to_path_buf(),
                line: *line,
                col: *col,
                message: format!(
                    "`{method}` in `{name}` lacks a static phase tag; the per-phase message \
                     budget cannot be audited"
                ),
                suggestion: "pass a string literal or `phase::CONST` as the phase argument so \
                             NetStats::sent_in_phase can attribute the traffic",
            });
        }
        if info.is_pub {
            let mut seen = BTreeSet::new();
            if reaches_send(name, &fns, &mut seen) && !info.has_network_param {
                diags.push(Diagnostic {
                    lint: "unthreaded_network",
                    level: Level::Deny,
                    path: path.to_path_buf(),
                    line: info.name_line,
                    col: info.name_col,
                    message: format!(
                        "pub fn `{name}` sends messages but does not take the energy-accounted \
                         `Network` as a parameter"
                    ),
                    suggestion: "thread `&mut Network<…>` through the public API so every send \
                                 draws tx energy and is recorded in NetStats",
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::test_regions;

    fn lint_names(src: &str) -> Vec<(&'static str, u32)> {
        let lexed = lex(src);
        let excluded = test_regions(&lexed.tokens);
        let mut diags = Vec::new();
        energy_accounting(
            Path::new("election/m.rs"),
            &lexed.tokens,
            &excluded,
            &mut diags,
        );
        diags.into_iter().map(|d| (d.lint, d.line)).collect()
    }

    #[test]
    fn static_phase_tags_pass() {
        let src = r#"
            pub fn run(net: &mut Network<Msg>) {
                net.broadcast(i, msg, bytes, phase::INVITATION);
                net.unicast(i, j, msg, bytes, "heartbeat");
            }
        "#;
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn dynamic_phase_tag_is_flagged() {
        let src = r#"
            pub fn run(net: &mut Network<Msg>, tag: &'static str) {
                net.broadcast(i, msg, bytes, tag);
            }
        "#;
        assert_eq!(lint_names(src), vec![("unaccounted_send", 3)]);
    }

    #[test]
    fn pub_fn_sending_without_network_param_is_flagged() {
        let src = r#"
            pub fn run(state: &mut AmbientState) {
                helper(state);
            }
            fn helper(state: &mut AmbientState) {
                state.net.broadcast(i, msg, bytes, "x");
            }
        "#;
        assert_eq!(lint_names(src), vec![("unthreaded_network", 2)]);
    }

    #[test]
    fn transitive_send_through_local_helper_is_tracked() {
        let src = r#"
            pub fn entry(net: &mut Network<Msg>) { helper(net); }
            fn helper(net: &mut Network<Msg>) { net.broadcast(a, b, c, "tag"); }
        "#;
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn non_sending_pub_fns_are_unconstrained() {
        let src = "pub fn pure(x: u32) -> u32 { x + 1 }";
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn trailing_comma_does_not_hide_the_phase_tag() {
        let src = r#"
            pub fn run(net: &mut Network<Msg>) {
                net.broadcast(
                    j,
                    Msg::Invite { value: values[j.index()], epoch },
                    Msg::Invite { value: 0.0, epoch }.wire_bytes(),
                    phase::INVITATION,
                );
            }
        "#;
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn phase_enum_variant_counts_as_static() {
        let src = r#"
            pub fn run(net: &mut Network<Msg>) {
                net.broadcast(i, msg, bytes, Phase::Invitation);
                net.unicast(i, j, msg, bytes, Phase::Heartbeat);
            }
        "#;
        assert!(lint_names(src).is_empty());
    }

    #[test]
    fn all_caps_const_counts_as_static() {
        let src = r#"
            pub fn run(net: &mut Network<Msg>) {
                net.broadcast(i, msg, bytes, HEARTBEAT_PHASE);
            }
        "#;
        assert!(lint_names(src).is_empty());
    }
}
