//! Contract attachment and transitive propagation.
//!
//! `// xtask-contract(kind)` annotations bind to the next `fn`
//! declaration below them in the same file (within a few lines, so a
//! doc comment block between annotation and item stays legal). Three
//! kinds exist:
//!
//! * `zero_alloc` — the function, and everything it can reach through
//!   the call graph, must contain no allocation site. Amortized-growth
//!   sites (`.push(…)` into recycled capacity) are still *reported*
//!   and must carry a site-level `xtask-allow(contract_zero_alloc)`
//!   documenting why capacity is warm — the static pass makes every
//!   such site visible, the dynamic bench gate proves the claim.
//! * `deterministic` — the reachable set must contain no
//!   nondeterminism source (hash collections, ambient RNG, wall
//!   clock, unmanaged `thread::spawn`).
//! * `alloc_cold` — a *barrier* for `zero_alloc` propagation: the
//!   function is a dynamically-gated cold path (telemetry sinks,
//!   tick-boundary fault application) that may allocate, so traversal
//!   stops at its boundary instead of descending. The reason is
//!   mandatory — a cold mark is a suppression and is counted by the
//!   allow audit. `alloc_cold` does **not** stop `deterministic`
//!   propagation: being off the hot path is no excuse for leaking
//!   wall-clock time into protocol state.
//!
//! Violations render the full blame chain, one hop per call edge:
//!
//! ```text
//! error[contract_zero_alloc]: `deliver` is contracted zero_alloc but reaches `format!` (allocates a fresh String)
//!   --> crates/netsim/src/sim.rs:540:17
//!   = note: chain: deliver (crates/netsim/src/sim.rs:493) → route_one (crates/netsim/src/sim.rs:530) → `format!` (crates/netsim/src/sim.rs:540)
//! ```
//!
//! The diagnostic is positioned at the violating *site*, so one
//! site-level allow suppresses it for every contracted root that
//! reaches it.

use crate::lexer::Lexed;
use crate::symbols::{SiteKind, SymbolTable};
use crate::{Diagnostic, Level};
use std::collections::BTreeMap;
use std::path::Path;

/// Maximum lines between an annotation and the `fn` it binds to.
const ATTACH_WINDOW: u32 = 10;

/// One attached contract, for reporting.
#[derive(Debug, Clone)]
pub struct AttachedContract {
    /// Contract kind (`zero_alloc`, `deterministic`, `alloc_cold`).
    pub kind: String,
    /// Function the contract binds to (index into the symbol table).
    pub fn_index: usize,
    /// Justification (non-empty for `alloc_cold`).
    pub reason: String,
}

/// All contracts attached across the workspace.
#[derive(Debug, Default)]
pub struct ContractSet {
    /// Every attached contract in file order.
    pub attached: Vec<AttachedContract>,
}

impl ContractSet {
    fn fns_with(&self, kind: &str) -> Vec<usize> {
        self.attached
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.fn_index)
            .collect()
    }

    /// True when the function is marked `alloc_cold`.
    pub fn is_cold(&self, fn_index: usize) -> bool {
        self.attached
            .iter()
            .any(|c| c.kind == "alloc_cold" && c.fn_index == fn_index)
    }

    /// Count of `alloc_cold` marks (they budget like allows).
    pub fn cold_count(&self) -> usize {
        self.attached
            .iter()
            .filter(|c| c.kind == "alloc_cold")
            .count()
    }
}

/// Attach one file's `xtask-contract` annotations to symbol-table
/// functions. Emits `bad_contract` for unknown kinds, reason-less
/// `alloc_cold`, and annotations with no `fn` below them; annotations
/// whose `fn` is in a test region (absent from the table) are ignored
/// silently — contracts are statements about library code.
pub fn attach(
    path: &Path,
    lexed: &Lexed,
    table: &SymbolTable,
    set: &mut ContractSet,
    diags: &mut Vec<Diagnostic>,
) {
    for ann in &lexed.contracts {
        let bad = |message: String, suggestion: &'static str| Diagnostic {
            lint: "bad_contract",
            level: Level::Deny,
            path: path.to_path_buf(),
            line: ann.line,
            col: 1,
            message,
            suggestion,
        };
        if !matches!(
            ann.kind.as_str(),
            "zero_alloc" | "deterministic" | "alloc_cold"
        ) {
            diags.push(bad(
                format!("xtask-contract names unknown kind `{}`", ann.kind),
                "use zero_alloc, deterministic, or alloc_cold",
            ));
            continue;
        }
        if ann.kind == "alloc_cold" && ann.reason.is_empty() {
            diags.push(bad(
                "xtask-contract(alloc_cold) is missing a justification".into(),
                "write `// xtask-contract(alloc_cold): why this path is dynamically gated`",
            ));
            continue;
        }
        // Bind to the first `fn` name token below the annotation.
        let target = lexed
            .tokens
            .iter()
            .zip(lexed.tokens.iter().skip(1))
            .find(|(kw, _)| {
                kw.kind.ident() == Some("fn")
                    && kw.line >= ann.line
                    && kw.line <= ann.line + ATTACH_WINDOW
            })
            .and_then(|(_, name)| name.kind.ident().map(|n| (n, name.line)));
        let Some((fn_name, fn_line)) = target else {
            diags.push(bad(
                format!(
                    "xtask-contract({}) has no fn within {} lines below it",
                    ann.kind, ATTACH_WINDOW
                ),
                "move the annotation directly above the function it contracts",
            ));
            continue;
        };
        // Resolve to the declaration at that exact position; test-region
        // and ubiquitous-trait-method fns are absent and skip silently.
        let Some(fn_index) = table
            .named(fn_name)
            .iter()
            .copied()
            .find(|&i| table.fns[i].path == path && table.fns[i].line == fn_line)
        else {
            continue;
        };
        set.attached.push(AttachedContract {
            kind: ann.kind.clone(),
            fn_index,
            reason: ann.reason.clone(),
        });
    }
}

/// Walk every contracted root and emit blame-chain diagnostics for
/// each violating site the root can reach.
pub fn check(table: &SymbolTable, set: &ContractSet, diags: &mut Vec<Diagnostic>) {
    for root in set.fns_with("zero_alloc") {
        propagate(table, set, root, SiteKind::Alloc, diags);
    }
    for root in set.fns_with("deterministic") {
        propagate(table, set, root, SiteKind::Nondet, diags);
    }
}

fn propagate(
    table: &SymbolTable,
    set: &ContractSet,
    root: usize,
    kind: SiteKind,
    diags: &mut Vec<Diagnostic>,
) {
    let (lint, contract_name): (&'static str, &str) = match kind {
        SiteKind::Alloc => ("contract_zero_alloc", "zero_alloc"),
        SiteKind::Nondet => ("contract_deterministic", "deterministic"),
    };
    // BFS with parent pointers so each violation can render the exact
    // chain that reached it. One visit per function per root keeps the
    // pass linear in the edge count.
    let mut prev: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([root]);
    let mut visited = std::collections::BTreeSet::from([root]);
    while let Some(cur) = queue.pop_front() {
        let f = &table.fns[cur];
        for site in f.sites.iter().filter(|s| s.kind == kind) {
            let chain = render_chain(table, &prev, root, cur, site.what, site.line);
            diags.push(Diagnostic {
                lint,
                level: Level::Deny,
                path: f.path.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`{}` is contracted {} but reaches {} ({}); chain: {}",
                    table.fns[root].name, contract_name, site.what, site.why, chain
                ),
                suggestion: match kind {
                    SiteKind::Alloc => {
                        "hoist the allocation out of the contracted path, mark the callee \
                         `xtask-contract(alloc_cold)` if it is dynamically gated, or justify the \
                         site with `xtask-allow(contract_zero_alloc): why capacity is recycled`"
                    }
                    SiteKind::Nondet => {
                        "route randomness through the seeded netsim::rng, use BTreeMap/BTreeSet, \
                         and keep wall-clock reads outside contracted protocol code"
                    }
                },
            });
        }
        for call in &f.calls {
            for target in table.resolve(cur, call) {
                // alloc_cold is a propagation barrier for zero_alloc
                // only; determinism still descends.
                if kind == SiteKind::Alloc && set.is_cold(target) {
                    continue;
                }
                if visited.insert(target) {
                    prev.insert(target, (cur, call.line));
                    queue.push_back(target);
                }
            }
        }
    }
}

/// Render `root (file:line) → … → site (file:line)` by walking parent
/// pointers back from the violating function.
fn render_chain(
    table: &SymbolTable,
    prev: &BTreeMap<usize, (usize, u32)>,
    root: usize,
    cur: usize,
    site_what: &str,
    site_line: u32,
) -> String {
    let mut hops = vec![cur];
    let mut at = cur;
    while at != root {
        let Some(&(parent, _)) = prev.get(&at) else {
            break;
        };
        hops.push(parent);
        at = parent;
    }
    hops.reverse();
    let mut out = String::new();
    for &h in &hops {
        let f = &table.fns[h];
        out.push_str(&format!("{} ({}:{}) → ", f.name, f.path.display(), f.line));
    }
    let site_file = table.fns[cur].path.display();
    out.push_str(&format!("{site_what} ({site_file}:{site_line})"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lints::test_regions;
    use std::path::PathBuf;

    fn analyze(files: &[(&str, &str)]) -> (Vec<Diagnostic>, ContractSet, SymbolTable) {
        let mut table = SymbolTable::default();
        let lexed: Vec<(PathBuf, crate::lexer::Lexed)> = files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), lex(s)))
            .collect();
        for (path, lx) in &lexed {
            let excluded = test_regions(&lx.tokens);
            table.add_file(path, lx, &excluded);
        }
        table.finish();
        let mut set = ContractSet::default();
        let mut diags = Vec::new();
        for (path, lx) in &lexed {
            attach(path, lx, &table, &mut set, &mut diags);
        }
        check(&table, &set, &mut diags);
        (diags, set, table)
    }

    #[test]
    fn direct_alloc_in_zero_alloc_fn_is_denied() {
        let (diags, ..) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(zero_alloc)\nfn hot() { let s = format!(\"x\"); }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, "contract_zero_alloc");
        assert!(diags[0].message.contains("`format!`"));
        assert!(diags[0].message.contains("hot (crates/x/src/a.rs:2)"));
    }

    #[test]
    fn transitive_alloc_two_hops_renders_full_chain() {
        let (diags, ..) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(zero_alloc)\nfn hot() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() { let v = vec![1]; }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let msg = &diags[0].message;
        assert!(msg.contains("hot (crates/x/src/a.rs:2)"), "{msg}");
        assert!(msg.contains("mid (crates/x/src/a.rs:3)"), "{msg}");
        assert!(msg.contains("leaf (crates/x/src/a.rs:4)"), "{msg}");
        assert!(msg.contains("`vec!` (crates/x/src/a.rs:4)"), "{msg}");
    }

    #[test]
    fn alloc_cold_is_a_barrier_for_zero_alloc_only() {
        let (diags, set, _) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(zero_alloc)\n// xtask-contract(deterministic)\n\
             fn hot() { sink(); }\n\
             // xtask-contract(alloc_cold): gated behind enabled()\n\
             fn sink() { let s = String::from(\"x\"); let t = Instant::now(); }\n",
        )]);
        assert_eq!(set.cold_count(), 1);
        // The String::from is shielded; the wall clock is not.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, "contract_deterministic");
    }

    #[test]
    fn alloc_cold_without_reason_is_bad_contract() {
        let (diags, ..) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(alloc_cold)\nfn sink() {}\n",
        )]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "bad_contract");
        assert!(diags[0].message.contains("justification"));
    }

    #[test]
    fn unknown_kind_and_dangling_are_bad_contract() {
        let (diags, ..) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(no_such_kind)\nfn f() {}\n\n\
             // xtask-contract(zero_alloc)\n// nothing below\n",
        )]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.lint == "bad_contract"));
        assert!(diags.iter().any(|d| d.message.contains("unknown kind")));
        assert!(diags.iter().any(|d| d.message.contains("no fn within")));
    }

    #[test]
    fn contract_on_test_fn_is_silently_ignored() {
        let (diags, set, _) = analyze(&[(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests {\n    // xtask-contract(zero_alloc)\n    \
             fn t() { format!(\"x\"); }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(set.attached.is_empty());
    }

    #[test]
    fn cross_crate_nondet_is_found_through_resolution() {
        let (diags, ..) = analyze(&[
            (
                "crates/a/src/m.rs",
                "// xtask-contract(deterministic)\nfn tick() { sample_noise(); }\n",
            ),
            (
                "crates/b/src/n.rs",
                "fn sample_noise() -> u64 { thread_rng() }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, "contract_deterministic");
        assert!(diags[0].message.contains("tick (crates/a/src/m.rs:2)"));
        assert!(diags[0]
            .message
            .contains("sample_noise (crates/b/src/n.rs:1)"));
        assert_eq!(diags[0].path, PathBuf::from("crates/b/src/n.rs"));
    }

    #[test]
    fn contract_binds_through_attribute_lines() {
        let (diags, set, table) = analyze(&[(
            "crates/x/src/a.rs",
            "// xtask-contract(zero_alloc)\n#[inline]\n#[must_use]\npub fn hot() -> u8 { 1 }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(set.attached.len(), 1);
        assert_eq!(table.fns[set.attached[0].fn_index].name, "hot");
    }
}
