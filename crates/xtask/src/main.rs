//! `cargo xtask analyze` — repo-specific static analysis.
//!
//! See the crate docs ([`xtask`]) for the lint families and the
//! `xtask-allow` escape hatch. Exit status: 0 when clean, 1 on any
//! deny-level finding (or warn-level with `--strict`), 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask analyze [--json] [--strict] [paths…]

Scans workspace sources for determinism, panic-freedom and
energy-accounting violations. With no paths, scans the four protocol
crates (core, netsim, query, datagen).

options:
  --json     emit a machine-readable JSON report on stdout
  --strict   promote warn-level lints (slice_index) to failures
  --help     show this message, including the lint list

lints:
  no_unwrap, no_expect, no_panic (deny)   panic-freedom
  slice_index (warn)                      auditable indexing
  no_hash_collections, no_ambient_rng,
  no_wall_clock (deny)                    determinism
  unaccounted_send, unthreaded_network
  (deny, election/ + maintenance/ only)   energy accounting
  bad_allow, unused_allow (deny)          escape-hatch hygiene

Suppress a single finding with `// xtask-allow(lint): reason` on the
same line or the line above.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        Some("--help") | Some("help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut json = false;
    let mut strict = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }

    if roots.is_empty() {
        // CARGO_MANIFEST_DIR is crates/xtask; the repo root is two up.
        let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        roots = xtask::default_roots(&repo_root);
    }

    let report = match xtask::analyze_paths(&roots) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xtask::to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}\n", d.render());
        }
        println!(
            "xtask analyze: {} file(s), {} error(s), {} warning(s), {} allow(s) honored",
            report.files_scanned,
            report.deny_count(),
            report.warn_count(),
            report.allows_honored
        );
    }

    if report.failed(strict) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
