//! `cargo xtask analyze` — repo-specific static analysis — and
//! `cargo xtask benchcmp` — the micro-benchmark regression gate.
//!
//! See the crate docs ([`xtask`]) for the lint families and the
//! `xtask-allow` escape hatch. Exit status: 0 when clean, 1 on any
//! deny-level finding (or warn-level with `--strict`), 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask analyze [--json] [--sarif FILE] [--github] [--strict]
                           [--allow-audit] [--list-lints] [paths…]
       cargo xtask benchcmp <baseline.json> <current.json> [--tolerance F]

Scans workspace sources for determinism, panic-freedom,
energy-accounting and contract violations. With no paths, scans the
lint roots (core, netsim, query, datagen, telemetry, plus the
sanctioned bench runner) and feeds every other library source into the
workspace call graph for contract propagation.

options:
  --json         emit a machine-readable JSON report on stdout
  --sarif FILE   additionally write a SARIF 2.1.0 log to FILE
  --github       additionally emit GitHub Actions ::error/::warning
                 annotations on stdout
  --strict       promote warn-level lints (slice_index) to failures
  --allow-audit  audit suppression counts against the [allow-budget]
                 section of xtask.toml; over-budget fails the run
  --list-lints   print the lint catalog (name | level | summary) and
                 exit
  --help         show this message

Run `cargo xtask analyze --list-lints` for the full lint catalog; the
same table lives in DESIGN.md §15. Suppress a single finding with
`// xtask-allow(lint): reason` on the same line or the line above.
Contract functions with `// xtask-contract(zero_alloc)`,
`// xtask-contract(deterministic)`, or mark a dynamically-gated cold
path with `// xtask-contract(alloc_cold): reason`.

benchcmp compares two MICROBENCH_JSON files (one JSON record per
bench). Deterministic allocation counters gate hard beyond the
tolerance (default 0.15; a baseline of 0 allocs admits only 0);
wall-clock medians are advisory warnings only. A baseline bench
missing from the current file fails the gate.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        Some("benchcmp") => return benchcmp_main(args),
        Some("--help") | Some("help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut json = false;
    let mut strict = false;
    let mut github = false;
    let mut allow_audit = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--github" => github = true,
            "--allow-audit" => allow_audit = true,
            "--list-lints" => {
                print!("{}", xtask::render_lint_list());
                return ExitCode::SUCCESS;
            }
            "--sarif" => {
                sarif_path = args.next().map(PathBuf::from);
                if sarif_path.is_none() {
                    eprintln!("--sarif needs an output file\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }

    // CARGO_MANIFEST_DIR is crates/xtask; the repo root is two up.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let report = if roots.is_empty() {
        xtask::analyze_workspace(&repo_root)
    } else {
        xtask::analyze_paths(&roots)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xtask::to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}\n", d.render());
        }
        println!(
            "xtask analyze: {} file(s), {} error(s), {} warning(s), {} allow(s) honored, {} contract(s)",
            report.files_scanned,
            report.deny_count(),
            report.warn_count(),
            report.allows_honored,
            report.contracts.len()
        );
    }
    if github && !report.diagnostics.is_empty() {
        println!("{}", xtask::sarif::to_github_annotations(&report));
    }
    if let Some(path) = sarif_path {
        if let Err(e) = std::fs::write(&path, xtask::sarif::to_sarif(&report)) {
            eprintln!("xtask analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut audit_failed = false;
    if allow_audit {
        let budget_path = repo_root.join("xtask.toml");
        let budget = std::fs::read_to_string(&budget_path)
            .ok()
            .and_then(|t| xtask::audit::parse_budget(&t));
        match budget {
            Some(budget) => {
                let outcome = xtask::audit::audit(&report, &budget);
                print!("{}", outcome.rendered);
                audit_failed = outcome.failed;
            }
            None => {
                eprintln!(
                    "xtask analyze: --allow-audit needs an [allow-budget] section in {}",
                    budget_path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    if report.failed(strict) || audit_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn benchcmp_main(args: impl Iterator<Item = String>) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.15;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = match args.next().as_deref().map(str::parse) {
                    Some(Ok(t)) if (0.0..10.0).contains(&t) => t,
                    _ => {
                        eprintln!("--tolerance needs a fraction like 0.15\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("benchcmp needs exactly two files\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |p: &PathBuf| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("xtask benchcmp: {}: {e}", p.display());
            None
        }
    };
    let (Some(baseline_text), Some(current_text)) = (read(baseline_path), read(current_path))
    else {
        return ExitCode::from(2);
    };
    let baseline = xtask::benchcmp::parse_records(&baseline_text);
    let current = xtask::benchcmp::parse_records(&current_text);
    if baseline.is_empty() {
        eprintln!(
            "xtask benchcmp: no benchmark records in {}",
            baseline_path.display()
        );
        return ExitCode::from(2);
    }
    let report = xtask::benchcmp::compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
