//! `cargo xtask analyze` — repo-specific static analysis — and
//! `cargo xtask benchcmp` — the micro-benchmark regression gate.
//!
//! See the crate docs ([`xtask`]) for the lint families and the
//! `xtask-allow` escape hatch. Exit status: 0 when clean, 1 on any
//! deny-level finding (or warn-level with `--strict`), 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask analyze [--json] [--strict] [paths…]
       cargo xtask benchcmp <baseline.json> <current.json> [--tolerance F]

Scans workspace sources for determinism, panic-freedom and
energy-accounting violations. With no paths, scans the four protocol
crates (core, netsim, query, datagen).

options:
  --json     emit a machine-readable JSON report on stdout
  --strict   promote warn-level lints (slice_index) to failures
  --help     show this message, including the lint list

lints:
  no_unwrap, no_expect, no_panic (deny)   panic-freedom
  slice_index (warn)                      auditable indexing
  no_hash_collections, no_ambient_rng,
  no_wall_clock (deny)                    determinism
  unaccounted_send, unthreaded_network
  (deny, election/ + maintenance/ only)   energy accounting
  fault_event_coverage (deny, cross-file) every FaultKind variant must
                                          emit FaultInjected telemetry
  bad_allow, unused_allow (deny)          escape-hatch hygiene

Suppress a single finding with `// xtask-allow(lint): reason` on the
same line or the line above.

benchcmp compares two MICROBENCH_JSON files (one JSON record per
bench). Deterministic allocation counters gate hard beyond the
tolerance (default 0.15; a baseline of 0 allocs admits only 0);
wall-clock medians are advisory warnings only. A baseline bench
missing from the current file fails the gate.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        Some("benchcmp") => return benchcmp_main(args),
        Some("--help") | Some("help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut json = false;
    let mut strict = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }

    if roots.is_empty() {
        // CARGO_MANIFEST_DIR is crates/xtask; the repo root is two up.
        let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        roots = xtask::default_roots(&repo_root);
    }

    let report = match xtask::analyze_paths(&roots) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xtask::to_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}\n", d.render());
        }
        println!(
            "xtask analyze: {} file(s), {} error(s), {} warning(s), {} allow(s) honored",
            report.files_scanned,
            report.deny_count(),
            report.warn_count(),
            report.allows_honored
        );
    }

    if report.failed(strict) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn benchcmp_main(args: impl Iterator<Item = String>) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.15;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = match args.next().as_deref().map(str::parse) {
                    Some(Ok(t)) if (0.0..10.0).contains(&t) => t,
                    _ => {
                        eprintln!("--tolerance needs a fraction like 0.15\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("benchcmp needs exactly two files\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |p: &PathBuf| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("xtask benchcmp: {}: {e}", p.display());
            None
        }
    };
    let (Some(baseline_text), Some(current_text)) = (read(baseline_path), read(current_path))
    else {
        return ExitCode::from(2);
    };
    let baseline = xtask::benchcmp::parse_records(&baseline_text);
    let current = xtask::benchcmp::parse_records(&current_text);
    if baseline.is_empty() {
        eprintln!(
            "xtask benchcmp: no benchmark records in {}",
            baseline_path.display()
        );
        return ExitCode::from(2);
    }
    let report = xtask::benchcmp::compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
