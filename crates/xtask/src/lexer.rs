//! A lightweight Rust lexer for the static-analysis pass.
//!
//! Not a full grammar — just enough to tokenize source into
//! identifiers, punctuation and literals with accurate line/column
//! positions, while stripping comments and string contents so lint
//! patterns never fire inside prose or data. `xtask-allow` escape
//! hatches live in comments, so the lexer also extracts them.
//!
//! The analyzer intentionally avoids `syn`: the container builds fully
//! offline, and the lint patterns below only need token shapes, not a
//! typed AST.

/// One lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token categories relevant to the lint patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident(String),
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// String literal (contents dropped — only position matters).
    Str,
    /// Numeric or char literal (value dropped).
    Lit,
    /// Lifetime marker (`'a`) — kept distinct so `'[` heuristics stay
    /// honest.
    Lifetime,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// An `// xtask-allow(lint): reason` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The lint name inside the parentheses.
    pub lint: String,
    /// The justification after the colon (may be empty — the analyzer
    /// rejects empty reasons).
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: u32,
}

/// An `// xtask-contract(kind): reason` annotation found in a comment.
/// Contracts attach to the next `fn` declaration below them (see
/// [`crate::contracts`]); the reason is optional for the checked
/// kinds and mandatory for `alloc_cold`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractAnn {
    /// The contract kind inside the parentheses (`zero_alloc`,
    /// `deterministic`, `alloc_cold`).
    pub kind: String,
    /// The justification after the colon, when present.
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: u32,
}

/// Lexer output: the token stream plus any escape-hatch annotations.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `xtask-allow` annotations in source order.
    pub allows: Vec<Allow>,
    /// `xtask-contract` annotations in source order.
    pub contracts: Vec<ContractAnn>,
}

/// Parse a `marker(name): reason` annotation out of comment text.
/// Returns `(name, reason)`; the reason is empty when the colon is
/// missing.
fn parse_marker(comment: &str, marker: &str) -> Option<(String, String)> {
    let idx = comment.find(marker)?;
    let rest = &comment[idx + marker.len()..];
    let close = rest.find(')')?;
    let name = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some((name, reason))
}

/// Parse an `xtask-allow(lint): reason` annotation out of comment text.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let (lint, reason) = parse_marker(comment, "xtask-allow(")?;
    Some(Allow { lint, reason, line })
}

/// Parse an `xtask-contract(kind): reason` annotation out of comment
/// text.
fn parse_contract(comment: &str, line: u32) -> Option<ContractAnn> {
    let (kind, reason) = parse_marker(comment, "xtask-contract(")?;
    Some(ContractAnn { kind, reason, line })
}

/// Tokenize `src`, stripping comments and literal contents.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let start_line = line;
        let start_col = col;

        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                advance!(bytes[i]);
            }
            if let Some(allow) = parse_allow(&text, start_line) {
                out.allows.push(allow);
            }
            if let Some(contract) = parse_contract(&text, start_line) {
                out.contracts.push(contract);
            }
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            let mut text = String::new();
            while i < bytes.len() {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push('/');
                    advance!('/');
                    text.push('*');
                    advance!('*');
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!('*');
                    advance!('/');
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(bytes[i]);
                    advance!(bytes[i]);
                }
            }
            if let Some(allow) = parse_allow(&text, start_line) {
                out.allows.push(allow);
            }
            if let Some(contract) = parse_contract(&text, start_line) {
                out.contracts.push(contract);
            }
            continue;
        }

        // String literal.
        if c == '"' {
            advance!('"');
            while i < bytes.len() {
                match bytes[i] {
                    '\\' => {
                        advance!('\\');
                        if i < bytes.len() {
                            advance!(bytes[i]);
                        }
                    }
                    '"' => {
                        advance!('"');
                        break;
                    }
                    other => advance!(other),
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Raw string literal r"…", r#"…"#, up to 3 hashes.
        if c == 'r' && matches!(bytes.get(i + 1), Some('"') | Some('#')) && {
            // distinguish from an identifier starting with r.
            let mut j = i + 1;
            while bytes.get(j) == Some(&'#') {
                j += 1;
            }
            bytes.get(j) == Some(&'"')
        } {
            advance!('r');
            let mut hashes = 0usize;
            while bytes.get(i) == Some(&'#') {
                hashes += 1;
                advance!('#');
            }
            advance!('"');
            'raw: while i < bytes.len() {
                if bytes[i] == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        advance!('"');
                        for _ in 0..hashes {
                            advance!('#');
                        }
                        break 'raw;
                    }
                }
                advance!(bytes[i]);
            }
            out.tokens.push(Token {
                kind: TokenKind::Str,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            // 'a (lifetime) vs 'x' / '\n' (char literal): a char
            // literal always has a closing quote right after one
            // (possibly escaped) character.
            let is_char = match bytes.get(i + 1) {
                Some('\\') => true,
                Some(_) => bytes.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                advance!('\'');
                if bytes.get(i) == Some(&'\\') {
                    advance!('\\');
                }
                if i < bytes.len() {
                    advance!(bytes[i]);
                }
                if bytes.get(i) == Some(&'\'') {
                    advance!('\'');
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lit,
                    line: start_line,
                    col: start_col,
                });
            } else {
                advance!('\'');
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    advance!(bytes[i]);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line: start_line,
                    col: start_col,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut ident = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                ident.push(bytes[i]);
                advance!(bytes[i]);
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(ident),
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Numeric literal (coarse: consume digits, dots, exponents,
        // underscores, suffixes).
        if c.is_ascii_digit() {
            while i < bytes.len()
                && (bytes[i].is_alphanumeric()
                    || bytes[i] == '_'
                    || (bytes[i] == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                advance!(bytes[i]);
            }
            out.tokens.push(Token {
                kind: TokenKind::Lit,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Whitespace.
        if c.is_whitespace() {
            advance!(c);
            continue;
        }

        // Everything else: single punctuation character.
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line: start_line,
            col: start_col,
        });
        advance!(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
            // unwrap in a comment
            let s = "call .unwrap() inside a string";
            /* block .expect( comment */
            value.unwrap();
        "#;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn tracks_line_numbers() {
        let src = "let a = 1;\nlet b = a.unwrap();\n";
        let lexed = lex(src);
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("unwrap"))
            .expect("unwrap token");
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn extracts_allow_annotations() {
        let src = "// xtask-allow(no_unwrap): checked by caller\nx.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].lint, "no_unwrap");
        assert_eq!(lexed.allows[0].reason, "checked by caller");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_has_empty_reason() {
        let src = "// xtask-allow(no_panic)\npanic!();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.is_empty());
    }

    #[test]
    fn distinguishes_lifetimes_from_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let src = r##"let s = r#"contains .unwrap() and "quotes""#; s.len();"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn extracts_contract_annotations() {
        let src = "// xtask-contract(zero_alloc)\npub fn hot() {}\n\
                   // xtask-contract(alloc_cold): gated off the hot path\nfn cold() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.contracts.len(), 2);
        assert_eq!(lexed.contracts[0].kind, "zero_alloc");
        assert!(lexed.contracts[0].reason.is_empty());
        assert_eq!(lexed.contracts[0].line, 1);
        assert_eq!(lexed.contracts[1].kind, "alloc_cold");
        assert_eq!(lexed.contracts[1].reason, "gated off the hot path");
        assert_eq!(lexed.contracts[1].line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ x.unwrap();";
        let ids = idents(src);
        assert_eq!(ids, vec!["x".to_string(), "unwrap".to_string()]);
    }
}
