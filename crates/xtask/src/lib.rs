//! Repo-specific static analysis (`cargo xtask analyze`).
//!
//! The paper's entire evaluation is simulation (Kotidis §6): every
//! figure this repo reproduces rests on the simulator and protocol
//! crates being **deterministic under a seed** and **panic-free under
//! fault injection**. This pass walks the protocol crates
//! (`core`, `netsim`, `query`, `datagen`) and emits rustc-style
//! diagnostics for three invariant families:
//!
//! 1. **Determinism** — no `HashMap`/`HashSet` (iteration order leaks
//!    into protocol state), no `rand::thread_rng` / argless
//!    `rand::random`, no `Instant::now` / `SystemTime::now`. All
//!    randomness must flow through the seeded `netsim::rng`.
//! 2. **Panic-freedom** — no `.unwrap()`, `.expect(…)`, `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!` in non-test library
//!    code; slice-index expressions are reported at *warn* level
//!    (verified hot-path indexing is idiomatic, but it should be
//!    visible and auditable).
//! 3. **Energy accounting** — in `election/` and `maintenance/`, every
//!    message send must carry a static phase tag, and every `pub fn`
//!    that (transitively) sends must take the energy-accounted
//!    [`Network`] as a parameter, keeping the paper's ≤6-messages/node
//!    budget auditable via `NetStats::sent_in_phase`.
//! 4. **Fault/telemetry coverage** — every variant of the simulator's
//!    `FaultKind` enum must be applied somewhere that also emits the
//!    `FaultInjected` telemetry event, so no injectable fault can slip
//!    through a trace unrecorded (cross-file; see
//!    [`lints::FaultCoverage`]).
//!
//! Escape hatch: `// xtask-allow(lint_name): reason` on the same line
//! or the line above suppresses one lint at one site. Allows must name
//! a real lint and carry a non-empty reason; stale or malformed allows
//! are themselves deny-level diagnostics.

pub mod audit;
pub mod benchcmp;
pub mod callgraph;
pub mod contracts;
pub mod lexer;
pub mod lints;
pub mod sarif;
pub mod symbols;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Fails the run (non-zero exit).
    Deny,
    /// Reported but does not fail the run unless `--strict`.
    Warn,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Deny => f.write_str("error"),
            Level::Warn => f.write_str("warning"),
        }
    }
}

/// One finding at one source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name, e.g. `no_unwrap`.
    pub lint: &'static str,
    /// Severity.
    pub level: Level,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Actionable fix suggestion.
    pub suggestion: &'static str,
}

impl Diagnostic {
    /// Render in rustc's `error[lint]: … --> file:line:col` style.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n  = help: {}",
            self.level,
            self.lint,
            self.message,
            self.path.display(),
            self.line,
            self.col,
            self.suggestion
        )
    }
}

/// All lint names the analyzer can emit, used to validate
/// `xtask-allow` annotations.
pub const LINT_NAMES: &[&str] = &[
    "no_unwrap",
    "no_expect",
    "no_panic",
    "slice_index",
    "no_hash_collections",
    "no_ambient_rng",
    "no_wall_clock",
    "no_thread_spawn",
    "unaccounted_send",
    "unthreaded_network",
    "fault_event_coverage",
    "event_replay_coverage",
    "wake_source_coverage",
    "store_error_coverage",
    "contract_zero_alloc",
    "contract_deterministic",
    "bad_contract",
    "bad_allow",
    "unused_allow",
];

/// One row of the lint catalog (`--list-lints`, DESIGN.md §15 table).
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Lint name as it appears in diagnostics and allows.
    pub name: &'static str,
    /// Default severity (`deny` or `warn`).
    pub level: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The full lint catalog, in [`LINT_NAMES`] order. The doc-sync test
/// asserts this table and the DESIGN.md §15 reference table agree.
pub fn lint_infos() -> Vec<LintInfo> {
    vec![
        LintInfo {
            name: "no_unwrap",
            level: "deny",
            summary: "`.unwrap()` can panic under fault injection",
        },
        LintInfo {
            name: "no_expect",
            level: "deny",
            summary: "`.expect(…)` can panic under fault injection",
        },
        LintInfo {
            name: "no_panic",
            level: "deny",
            summary: "panic-family macros abort instead of degrading",
        },
        LintInfo {
            name: "slice_index",
            level: "warn",
            summary: "slice-index expressions can panic on out-of-bounds",
        },
        LintInfo {
            name: "no_hash_collections",
            level: "deny",
            summary: "HashMap/HashSet iteration order is nondeterministic",
        },
        LintInfo {
            name: "no_ambient_rng",
            level: "deny",
            summary: "ambient RNG makes runs unreproducible",
        },
        LintInfo {
            name: "no_wall_clock",
            level: "deny",
            summary: "wall-clock reads leak real time into simulated state",
        },
        LintInfo {
            name: "no_thread_spawn",
            level: "deny",
            summary: "unmanaged threads leak interleaving into results",
        },
        LintInfo {
            name: "unaccounted_send",
            level: "deny",
            summary: "protocol sends must carry a static phase tag",
        },
        LintInfo {
            name: "unthreaded_network",
            level: "deny",
            summary: "sending pub fns must take the energy-accounted Network",
        },
        LintInfo {
            name: "fault_event_coverage",
            level: "deny",
            summary: "every FaultKind variant must be applied where FaultInjected is emitted",
        },
        LintInfo {
            name: "event_replay_coverage",
            level: "deny",
            summary: "every telemetry Event variant must be handled where traces replay",
        },
        LintInfo {
            name: "wake_source_coverage",
            level: "deny",
            summary: "every WakeReason variant must be registered at a scheduler wake() site",
        },
        LintInfo {
            name: "store_error_coverage",
            level: "deny",
            summary:
                "every StoreError variant needs a construction site and a verify/replay handler",
        },
        LintInfo {
            name: "contract_zero_alloc",
            level: "deny",
            summary: "zero_alloc fns must not reach an allocation site through any call chain",
        },
        LintInfo {
            name: "contract_deterministic",
            level: "deny",
            summary: "deterministic fns must not reach a nondeterminism source",
        },
        LintInfo {
            name: "bad_contract",
            level: "deny",
            summary: "malformed or dangling xtask-contract annotation",
        },
        LintInfo {
            name: "bad_allow",
            level: "deny",
            summary: "malformed xtask-allow annotation",
        },
        LintInfo {
            name: "unused_allow",
            level: "deny",
            summary: "xtask-allow that suppresses nothing",
        },
    ]
}

/// Render the lint catalog, one `name | level | summary` row per lint.
pub fn render_lint_list() -> String {
    let mut out = String::new();
    for info in lint_infos() {
        out.push_str(&format!(
            "{} | {} | {}\n",
            info.name, info.level, info.summary
        ));
    }
    out
}

/// One contract attachment, summarized for the report (the self-check
/// test asserts the annotated hot paths actually carry their
/// contracts — a deleted annotation must not pass silently).
#[derive(Debug, Clone)]
pub struct ContractSummary {
    /// Contract kind (`zero_alloc`, `deterministic`, `alloc_cold`).
    pub kind: String,
    /// Contracted function name.
    pub function: String,
    /// File the function is declared in.
    pub path: PathBuf,
    /// 1-based declaration line.
    pub line: u32,
}

/// Outcome of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics that survived `xtask-allow` filtering, in file
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `xtask-allow` annotations that suppressed a finding.
    pub allows_honored: usize,
    /// Honored suppressions per lint name (the `--allow-audit` input).
    pub allow_counts: BTreeMap<String, usize>,
    /// Contracts attached across the scanned set, in file order.
    pub contracts: Vec<ContractSummary>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// Number of `alloc_cold` propagation barriers (they budget like
    /// allows in `--allow-audit`).
    pub fn cold_count(&self) -> usize {
        self.contracts
            .iter()
            .filter(|c| c.kind == "alloc_cold")
            .count()
    }

    /// True when the run should exit non-zero.
    pub fn failed(&self, strict: bool) -> bool {
        self.deny_count() > 0 || (strict && self.warn_count() > 0)
    }
}

/// Analyze one source file (token lints only — the contract passes
/// need the whole file set; see [`analyze_sources`]).
///
/// `protocol_dir` enables the energy-accounting lints (used for
/// `election/` and `maintenance/` sources).
pub fn analyze_source(path: &Path, src: &str, protocol_dir: bool) -> (Vec<Diagnostic>, usize) {
    let report = analyze_sources(
        vec![SourceFile {
            path: path.to_path_buf(),
            src: src.to_string(),
            lint: protocol_dir_mode(protocol_dir),
        }],
        None,
    );
    (report.diagnostics, report.allows_honored)
}

fn protocol_dir_mode(protocol_dir: bool) -> LintMode {
    if protocol_dir {
        LintMode::Protocol
    } else {
        LintMode::Lint
    }
}

/// How a file participates in the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintMode {
    /// Token lints plus the energy-accounting call-graph lints.
    Protocol,
    /// Token lints only.
    Lint,
    /// Symbol/contract scanning only: the file feeds the call graph
    /// (and can receive contract diagnostics), but its own tokens are
    /// not linted and stale allows in it are not policed.
    SymbolsOnly,
}

/// One file in an analysis set.
#[derive(Debug)]
pub struct SourceFile {
    /// File path (used for crate attribution and diagnostics).
    pub path: PathBuf,
    /// File contents.
    pub src: String,
    /// Participation mode.
    pub lint: LintMode,
}

/// Analyze a set of files as one unit: per-file token lints, the
/// cross-file fault-coverage pass, and the workspace contract passes
/// (symbol table → call graph → contract propagation). `repo_root`,
/// when known, supplies Cargo manifests for the dependency-direction
/// edge filter; without it, calls bind across all scanned crates.
pub fn analyze_sources(files: Vec<SourceFile>, repo_root: Option<&Path>) -> Report {
    // Pass 1: lex everything once; feed the symbol table.
    let mut table = symbols::SymbolTable::default();
    let lexed: Vec<(SourceFile, lexer::Lexed, Vec<bool>)> = files
        .into_iter()
        .map(|f| {
            let lx = lexer::lex(&f.src);
            let excluded = lints::test_regions(&lx.tokens);
            table.add_file(&f.path, &lx, &excluded);
            (f, lx, excluded)
        })
        .collect();
    if let Some(root) = repo_root {
        symbols::load_workspace_deps(root, &mut table);
    }
    table.finish();

    // Pass 2: contracts — attach across all files, then propagate.
    let mut set = contracts::ContractSet::default();
    let mut contract_diags = Vec::new();
    for (f, lx, _) in &lexed {
        contracts::attach(&f.path, lx, &table, &mut set, &mut contract_diags);
    }
    contracts::check(&table, &set, &mut contract_diags);

    // Pass 3: per-file token lints, then allow filtering over the
    // union of that file's token findings and any contract findings
    // whose site lands in it — so one site-level allow covers every
    // contracted root that reaches the site.
    let mut report = Report::default();
    let mut coverage = lints::FaultCoverage::default();
    let mut replay_coverage = lints::EventReplayCoverage::default();
    let mut wake_coverage = lints::WakeSourceCoverage::default();
    let mut store_coverage = lints::StoreErrorCoverage::default();
    for (f, lx, excluded) in &lexed {
        let mut diags = Vec::new();
        if f.lint != LintMode::SymbolsOnly {
            coverage.scan(&f.path, &lx.tokens, excluded);
            replay_coverage.scan(&f.path, &lx.tokens, excluded);
            wake_coverage.scan(&f.path, &lx.tokens, excluded);
            store_coverage.scan(&f.path, &lx.tokens, excluded);
            lints::panic_freedom(&f.path, &lx.tokens, excluded, &mut diags);
            lints::determinism(&f.path, &lx.tokens, excluded, &mut diags);
            if f.lint == LintMode::Protocol {
                callgraph::energy_accounting(&f.path, &lx.tokens, excluded, &mut diags);
            }
        }
        diags.extend(contract_diags.iter().filter(|d| d.path == f.path).cloned());
        let police = f.lint != LintMode::SymbolsOnly;
        let (kept, honored) =
            apply_allows(&f.path, &lx.allows, diags, police, &mut report.allow_counts);
        report.diagnostics.extend(kept);
        report.allows_honored += honored;
        report.files_scanned += 1;
    }
    coverage.finish(&mut report.diagnostics);
    replay_coverage.finish(&mut report.diagnostics);
    wake_coverage.finish(&mut report.diagnostics);
    store_coverage.finish(&mut report.diagnostics);

    report.contracts = set
        .attached
        .iter()
        .map(|c| ContractSummary {
            kind: c.kind.clone(),
            function: table.fns[c.fn_index].name.clone(),
            path: table.fns[c.fn_index].path.clone(),
            line: table.fns[c.fn_index].line,
        })
        .collect();
    report
}

/// Filter diagnostics through the file's `xtask-allow` annotations and
/// append diagnostics for malformed or stale annotations. Staleness
/// (`bad_allow`/`unused_allow`) is only policed when `police` is set —
/// symbol-only files get suppression without the audit trail.
fn apply_allows(
    path: &Path,
    allows: &[lexer::Allow],
    diags: Vec<Diagnostic>,
    police: bool,
    counts: &mut BTreeMap<String, usize>,
) -> (Vec<Diagnostic>, usize) {
    let mut used = vec![false; allows.len()];
    let mut kept = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for (i, a) in allows.iter().enumerate() {
            // An allow covers its own line and the line below (so it
            // can sit inline or on its own line above the site), but
            // only when well-formed.
            if a.lint == d.lint
                && !a.reason.is_empty()
                && (a.line == d.line || a.line + 1 == d.line)
            {
                // Budget by allow *site*, not by suppressed finding: a
                // single site-level allow legitimately covers every
                // contracted root that reaches the site.
                if !used[i] {
                    used[i] = true;
                    *counts.entry(a.lint.clone()).or_default() += 1;
                }
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }

    let allows_honored = used.iter().filter(|u| **u).count();
    if police {
        for (i, a) in allows.iter().enumerate() {
            if !LINT_NAMES.contains(&a.lint.as_str()) {
                kept.push(Diagnostic {
                    lint: "bad_allow",
                    level: Level::Deny,
                    path: path.to_path_buf(),
                    line: a.line,
                    col: 1,
                    message: format!("xtask-allow names unknown lint `{}`", a.lint),
                    suggestion: "use one of the lints listed by `cargo xtask analyze --list-lints`",
                });
            } else if a.reason.is_empty() {
                kept.push(Diagnostic {
                    lint: "bad_allow",
                    level: Level::Deny,
                    path: path.to_path_buf(),
                    line: a.line,
                    col: 1,
                    message: format!("xtask-allow({}) is missing a justification", a.lint),
                    suggestion: "write `// xtask-allow(lint): why this site is safe`",
                });
            } else if !used[i] {
                kept.push(Diagnostic {
                    lint: "unused_allow",
                    level: Level::Deny,
                    path: path.to_path_buf(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "xtask-allow({}) suppresses nothing on this or the next line",
                        a.lint
                    ),
                    suggestion: "remove the stale annotation or move it next to the violation",
                });
            }
        }
    }
    kept.sort_by_key(|d| (d.line, d.col));
    (kept, allows_honored)
}

/// True when the `election`/`maintenance` energy lints apply to this
/// path.
pub fn is_protocol_dir(path: &Path) -> bool {
    path.components().any(|c| {
        let s = c.as_os_str().to_string_lossy();
        s == "election" || s == "maintenance"
    })
}

/// Recursively collect `.rs` files under `root` (or `root` itself),
/// skipping integration-test and bench directories.
pub fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name == "tests" || name == "benches" || name == "target" {
                continue;
            }
            collect_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Walk up from `start` to the workspace root (the ancestor holding
/// both `Cargo.toml` and `crates/`), so the dependency-direction edge
/// filter can read manifests.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|a| a.join("Cargo.toml").is_file() && a.join("crates").is_dir())
        .map(Path::to_path_buf)
}

/// Analyze every `.rs` file under the given roots: token lints, the
/// cross-file fault/telemetry coverage pass, and the contract passes
/// over the same set.
pub fn analyze_paths(roots: &[PathBuf]) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        collect_files(root, &mut files)?;
    }
    let mut sources = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let lint = protocol_dir_mode(is_protocol_dir(&file));
        sources.push(SourceFile {
            path: file,
            src,
            lint,
        });
    }
    let repo_root = roots.first().and_then(|r| find_repo_root(r));
    Ok(analyze_sources(sources, repo_root.as_deref()))
}

/// Analyze the whole workspace: the lint roots ([`default_roots`] plus
/// the sanctioned bench runner), with every other library source —
/// the rest of `crates/bench`, `crates/microbench`, and the repo-root
/// `src/` — scanned for symbols so contract propagation sees the full
/// call graph even where token lints do not apply.
pub fn analyze_workspace(repo_root: &Path) -> std::io::Result<Report> {
    let mut lint_files = Vec::new();
    for root in default_roots(repo_root) {
        collect_files(&root, &mut lint_files)?;
    }
    for bench_file in ["crates/bench/src/runner.rs", "crates/bench/src/serve.rs"] {
        let path = repo_root.join(bench_file);
        if path.is_file() {
            lint_files.push(path);
        }
    }

    let mut symbol_files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(repo_root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            // xtask analyzes, it is not analyzed: its own sources are
            // full of lint-pattern string fragments.
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_files(&src, &mut symbol_files)?;
            }
        }
    }
    let root_src = repo_root.join("src");
    if root_src.is_dir() {
        collect_files(&root_src, &mut symbol_files)?;
    }

    let mut sources = Vec::new();
    for file in &lint_files {
        sources.push(SourceFile {
            path: file.clone(),
            src: std::fs::read_to_string(file)?,
            lint: protocol_dir_mode(is_protocol_dir(file)),
        });
    }
    for file in symbol_files {
        if lint_files.contains(&file) {
            continue;
        }
        sources.push(SourceFile {
            path: file.clone(),
            src: std::fs::read_to_string(&file)?,
            lint: LintMode::SymbolsOnly,
        });
    }
    Ok(analyze_sources(sources, Some(repo_root)))
}

/// The workspace's default scan roots, relative to the repo root: the
/// protocol/simulator crates the invariants protect, plus the
/// telemetry layer (which must stay deterministic for traces to be
/// reproducible) and the snapshot store (whose typed errors and
/// canonical codec the `store_error_coverage` pass audits).
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    [
        "core",
        "netsim",
        "query",
        "datagen",
        "telemetry",
        "snapshot-store",
    ]
    .iter()
    .map(|c| repo_root.join("crates").join(c).join("src"))
    .collect()
}

/// Minimal JSON string escaping for `--json` output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a JSON object for CI consumption.
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"suggestion\": \"{}\"}}{}\n",
            d.lint,
            d.level,
            json_escape(&d.path.display().to_string()),
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(d.suggestion),
            if i + 1 < report.diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"allow_counts\": {");
    for (i, (lint, n)) in report.allow_counts.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\": {}",
            if i == 0 { "" } else { ", " },
            json_escape(lint),
            n
        ));
    }
    out.push_str("},\n  \"contracts\": [\n");
    for (i, c) in report.contracts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"function\": \"{}\", \"file\": \"{}\", \"line\": {}}}{}\n",
            json_escape(&c.kind),
            json_escape(&c.function),
            json_escape(&c.path.display().to_string()),
            c.line,
            if i + 1 < report.contracts.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"deny\": {},\n  \"warn\": {},\n  \"allows_honored\": {},\n  \"files_scanned\": {}\n}}",
        report.deny_count(),
        report.warn_count(),
        report.allows_honored,
        report.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        analyze_source(Path::new("mem.rs"), src, false).0
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no_unwrap): test\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let d = run("// xtask-allow(no_unwrap): validated by caller\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_must_match_lint_name() {
        let d = run(
            "// xtask-allow(no_expect): wrong lint\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        // The unwrap fires AND the allow is stale.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.lint == "no_unwrap"));
        assert!(d.iter().any(|d| d.lint == "unused_allow"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no_unwrap)\n");
        assert!(d.iter().any(|d| d.lint == "no_unwrap"));
        assert!(d.iter().any(|d| d.lint == "bad_allow"));
    }

    #[test]
    fn allow_with_unknown_lint_is_rejected() {
        let d = run("// xtask-allow(no_such_lint): whatever\nfn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "bad_allow");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_failure_semantics() {
        let mut r = Report::default();
        assert!(!r.failed(false));
        r.diagnostics.push(Diagnostic {
            lint: "slice_index",
            level: Level::Warn,
            path: PathBuf::from("x.rs"),
            line: 1,
            col: 1,
            message: String::new(),
            suggestion: "",
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.diagnostics.push(Diagnostic {
            lint: "no_unwrap",
            level: Level::Deny,
            path: PathBuf::from("x.rs"),
            line: 2,
            col: 1,
            message: String::new(),
            suggestion: "",
        });
        assert!(r.failed(false));
    }

    #[test]
    fn protocol_dir_detection() {
        assert!(is_protocol_dir(Path::new(
            "crates/core/src/election/engine.rs"
        )));
        assert!(is_protocol_dir(Path::new(
            "crates/core/src/maintenance/mod.rs"
        )));
        assert!(!is_protocol_dir(Path::new("crates/core/src/model.rs")));
    }
}
