//! Repo-specific static analysis (`cargo xtask analyze`).
//!
//! The paper's entire evaluation is simulation (Kotidis §6): every
//! figure this repo reproduces rests on the simulator and protocol
//! crates being **deterministic under a seed** and **panic-free under
//! fault injection**. This pass walks the protocol crates
//! (`core`, `netsim`, `query`, `datagen`) and emits rustc-style
//! diagnostics for three invariant families:
//!
//! 1. **Determinism** — no `HashMap`/`HashSet` (iteration order leaks
//!    into protocol state), no `rand::thread_rng` / argless
//!    `rand::random`, no `Instant::now` / `SystemTime::now`. All
//!    randomness must flow through the seeded `netsim::rng`.
//! 2. **Panic-freedom** — no `.unwrap()`, `.expect(…)`, `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!` in non-test library
//!    code; slice-index expressions are reported at *warn* level
//!    (verified hot-path indexing is idiomatic, but it should be
//!    visible and auditable).
//! 3. **Energy accounting** — in `election/` and `maintenance/`, every
//!    message send must carry a static phase tag, and every `pub fn`
//!    that (transitively) sends must take the energy-accounted
//!    [`Network`] as a parameter, keeping the paper's ≤6-messages/node
//!    budget auditable via `NetStats::sent_in_phase`.
//! 4. **Fault/telemetry coverage** — every variant of the simulator's
//!    `FaultKind` enum must be applied somewhere that also emits the
//!    `FaultInjected` telemetry event, so no injectable fault can slip
//!    through a trace unrecorded (cross-file; see
//!    [`lints::FaultCoverage`]).
//!
//! Escape hatch: `// xtask-allow(lint_name): reason` on the same line
//! or the line above suppresses one lint at one site. Allows must name
//! a real lint and carry a non-empty reason; stale or malformed allows
//! are themselves deny-level diagnostics.

pub mod benchcmp;
pub mod callgraph;
pub mod lexer;
pub mod lints;

use std::fmt;
use std::path::{Path, PathBuf};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Fails the run (non-zero exit).
    Deny,
    /// Reported but does not fail the run unless `--strict`.
    Warn,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Deny => f.write_str("error"),
            Level::Warn => f.write_str("warning"),
        }
    }
}

/// One finding at one source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name, e.g. `no_unwrap`.
    pub lint: &'static str,
    /// Severity.
    pub level: Level,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Actionable fix suggestion.
    pub suggestion: &'static str,
}

impl Diagnostic {
    /// Render in rustc's `error[lint]: … --> file:line:col` style.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n  = help: {}",
            self.level,
            self.lint,
            self.message,
            self.path.display(),
            self.line,
            self.col,
            self.suggestion
        )
    }
}

/// All lint names the analyzer can emit, used to validate
/// `xtask-allow` annotations.
pub const LINT_NAMES: &[&str] = &[
    "no_unwrap",
    "no_expect",
    "no_panic",
    "slice_index",
    "no_hash_collections",
    "no_ambient_rng",
    "no_wall_clock",
    "unaccounted_send",
    "unthreaded_network",
    "fault_event_coverage",
    "bad_allow",
    "unused_allow",
];

/// Outcome of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics that survived `xtask-allow` filtering, in file
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `xtask-allow` annotations that suppressed a finding.
    pub allows_honored: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// True when the run should exit non-zero.
    pub fn failed(&self, strict: bool) -> bool {
        self.deny_count() > 0 || (strict && self.warn_count() > 0)
    }
}

/// Analyze one source file.
///
/// `protocol_dir` enables the energy-accounting lints (used for
/// `election/` and `maintenance/` sources).
pub fn analyze_source(path: &Path, src: &str, protocol_dir: bool) -> (Vec<Diagnostic>, usize) {
    analyze_source_with(path, src, protocol_dir, None)
}

/// [`analyze_source`], additionally feeding the cross-file fault
/// coverage accumulator when one is threaded through (the full
/// `analyze_paths` walk does; single-file callers may pass `None`).
fn analyze_source_with(
    path: &Path,
    src: &str,
    protocol_dir: bool,
    coverage: Option<&mut lints::FaultCoverage>,
) -> (Vec<Diagnostic>, usize) {
    let lexed = lexer::lex(src);
    let excluded = lints::test_regions(&lexed.tokens);
    if let Some(cov) = coverage {
        cov.scan(path, &lexed.tokens, &excluded);
    }

    let mut diags = Vec::new();
    lints::panic_freedom(path, &lexed.tokens, &excluded, &mut diags);
    lints::determinism(path, &lexed.tokens, &excluded, &mut diags);
    if protocol_dir {
        callgraph::energy_accounting(path, &lexed.tokens, &excluded, &mut diags);
    }

    apply_allows(path, &lexed.allows, diags)
}

/// Filter diagnostics through the file's `xtask-allow` annotations and
/// append diagnostics for malformed or stale annotations.
fn apply_allows(
    path: &Path,
    allows: &[lexer::Allow],
    diags: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, usize) {
    let mut used = vec![false; allows.len()];
    let mut kept = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for (i, a) in allows.iter().enumerate() {
            // An allow covers its own line and the line below (so it
            // can sit inline or on its own line above the site), but
            // only when well-formed.
            if a.lint == d.lint
                && !a.reason.is_empty()
                && (a.line == d.line || a.line + 1 == d.line)
            {
                used[i] = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }

    let allows_honored = used.iter().filter(|u| **u).count();
    for (i, a) in allows.iter().enumerate() {
        if !LINT_NAMES.contains(&a.lint.as_str()) {
            kept.push(Diagnostic {
                lint: "bad_allow",
                level: Level::Deny,
                path: path.to_path_buf(),
                line: a.line,
                col: 1,
                message: format!("xtask-allow names unknown lint `{}`", a.lint),
                suggestion: "use one of the lints listed by `cargo xtask analyze --help`",
            });
        } else if a.reason.is_empty() {
            kept.push(Diagnostic {
                lint: "bad_allow",
                level: Level::Deny,
                path: path.to_path_buf(),
                line: a.line,
                col: 1,
                message: format!("xtask-allow({}) is missing a justification", a.lint),
                suggestion: "write `// xtask-allow(lint): why this site is safe`",
            });
        } else if !used[i] {
            kept.push(Diagnostic {
                lint: "unused_allow",
                level: Level::Deny,
                path: path.to_path_buf(),
                line: a.line,
                col: 1,
                message: format!(
                    "xtask-allow({}) suppresses nothing on this or the next line",
                    a.lint
                ),
                suggestion: "remove the stale annotation or move it next to the violation",
            });
        }
    }
    kept.sort_by_key(|d| (d.line, d.col));
    (kept, allows_honored)
}

/// True when the `election`/`maintenance` energy lints apply to this
/// path.
pub fn is_protocol_dir(path: &Path) -> bool {
    path.components().any(|c| {
        let s = c.as_os_str().to_string_lossy();
        s == "election" || s == "maintenance"
    })
}

/// Recursively collect `.rs` files under `root` (or `root` itself),
/// skipping integration-test and bench directories.
pub fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name == "tests" || name == "benches" || name == "target" {
                continue;
            }
            collect_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Analyze every `.rs` file under the given roots, including the
/// cross-file fault/telemetry coverage pass.
pub fn analyze_paths(roots: &[PathBuf]) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        collect_files(root, &mut files)?;
    }
    let mut report = Report::default();
    let mut coverage = lints::FaultCoverage::default();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let (diags, honored) =
            analyze_source_with(&file, &src, is_protocol_dir(&file), Some(&mut coverage));
        report.diagnostics.extend(diags);
        report.allows_honored += honored;
        report.files_scanned += 1;
    }
    coverage.finish(&mut report.diagnostics);
    Ok(report)
}

/// The workspace's default scan roots, relative to the repo root: the
/// protocol/simulator crates the invariants protect, plus the
/// telemetry layer (which must stay deterministic for traces to be
/// reproducible).
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    ["core", "netsim", "query", "datagen", "telemetry"]
        .iter()
        .map(|c| repo_root.join("crates").join(c).join("src"))
        .collect()
}

/// Minimal JSON string escaping for `--json` output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a JSON object for CI consumption.
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"suggestion\": \"{}\"}}{}\n",
            d.lint,
            d.level,
            json_escape(&d.path.display().to_string()),
            d.line,
            d.col,
            json_escape(&d.message),
            json_escape(d.suggestion),
            if i + 1 < report.diagnostics.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"deny\": {},\n  \"warn\": {},\n  \"allows_honored\": {},\n  \"files_scanned\": {}\n}}",
        report.deny_count(),
        report.warn_count(),
        report.allows_honored,
        report.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        analyze_source(Path::new("mem.rs"), src, false).0
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no_unwrap): test\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let d = run("// xtask-allow(no_unwrap): validated by caller\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_must_match_lint_name() {
        let d = run(
            "// xtask-allow(no_expect): wrong lint\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        // The unwrap fires AND the allow is stale.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.lint == "no_unwrap"));
        assert!(d.iter().any(|d| d.lint == "unused_allow"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let d = run("fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask-allow(no_unwrap)\n");
        assert!(d.iter().any(|d| d.lint == "no_unwrap"));
        assert!(d.iter().any(|d| d.lint == "bad_allow"));
    }

    #[test]
    fn allow_with_unknown_lint_is_rejected() {
        let d = run("// xtask-allow(no_such_lint): whatever\nfn f() {}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "bad_allow");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_failure_semantics() {
        let mut r = Report::default();
        assert!(!r.failed(false));
        r.diagnostics.push(Diagnostic {
            lint: "slice_index",
            level: Level::Warn,
            path: PathBuf::from("x.rs"),
            line: 1,
            col: 1,
            message: String::new(),
            suggestion: "",
        });
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.diagnostics.push(Diagnostic {
            lint: "no_unwrap",
            level: Level::Deny,
            path: PathBuf::from("x.rs"),
            line: 2,
            col: 1,
            message: String::new(),
            suggestion: "",
        });
        assert!(r.failed(false));
    }

    #[test]
    fn protocol_dir_detection() {
        assert!(is_protocol_dir(Path::new(
            "crates/core/src/election/engine.rs"
        )));
        assert!(is_protocol_dir(Path::new(
            "crates/core/src/maintenance/mod.rs"
        )));
        assert!(!is_protocol_dir(Path::new("crates/core/src/model.rs")));
    }
}
