//! Uniform-grid spatial index over node positions.
//!
//! The paper's deployments place nodes in the unit square and connect
//! them by a unit-disk radio of range `r`. Neighbor discovery is
//! therefore *local*: a node's neighbors all lie within `r`, so with a
//! grid of cells of side `r` every neighbor of a node lives in the
//! 3×3 block of cells around it. Bucketing nodes by cell turns the
//! all-pairs O(N²) neighbor construction into O(N · d) (d = mean
//! degree) and turns a single-node move into an O(d) incremental
//! update — the enabler for the 10k–100k-node sensitivity sweeps
//! (`scale` experiment) the paper's §6 could not reach.
//!
//! Determinism contract: cells live in a `BTreeMap` (iteration order
//! is a pure function of the inserted keys — `cargo xtask analyze`
//! forbids hash maps here), buckets are plain `Vec`s mutated only by
//! the deterministic build/relocate sequence, and every caller that
//! derives neighbor lists from candidate scans sorts them by
//! [`NodeId`] before exposing them. No query result ever depends on
//! bucket-internal order.

use crate::node::NodeId;
use crate::topology::Position;
use std::collections::BTreeMap;

/// A cell coordinate. Signed because mobility may carry nodes out of
/// the unit square (negative coordinates included); the grid is
/// unbounded and sparse.
pub type Cell = (i64, i64);

/// Relative slack added to the cell side so that floating-point
/// rounding in the `coordinate / cell_size` division can never place
/// two in-range nodes more than one cell apart. The true quotient gap
/// for an in-range pair is ≤ `range / cell_size = 1 / (1 + SLACK)`,
/// i.e. at least `~SLACK` below 1, while the division's rounding error
/// stays orders of magnitude smaller for any realistic coordinate.
const SLACK: f64 = 1e-9;

/// Sparse uniform grid: node ids bucketed by the cell containing their
/// position, with cell side equal to the transmission range (plus
/// [`SLACK`]).
///
/// The index never answers range queries itself — it only narrows the
/// candidate set; callers re-check the exact Euclidean predicate, so
/// the grid can be conservative but never lossy.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    cells: BTreeMap<Cell, Vec<NodeId>>,
}

impl GridIndex {
    /// Bucket `positions` by cell for a radio of the given `range`.
    ///
    /// `range` must be strictly positive and finite (enforced by
    /// [`crate::Topology::new`], the only production caller).
    pub fn build(positions: &[Position], range: f64) -> Self {
        let mut grid = GridIndex {
            cell_size: range * (1.0 + SLACK),
            cells: BTreeMap::new(),
        };
        for (i, p) in positions.iter().enumerate() {
            grid.insert(NodeId::from_index(i), p);
        }
        grid
    }

    /// The cell containing `p`.
    #[inline]
    pub fn cell_of(&self, p: &Position) -> Cell {
        // `as i64` saturates on overflow, which keeps even absurd
        // coordinates (or a pathological NaN) total rather than UB;
        // such nodes simply share a far-away bucket.
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Insert `id` into the bucket of `p`'s cell.
    pub fn insert(&mut self, id: NodeId, p: &Position) {
        self.cells.entry(self.cell_of(p)).or_default().push(id);
    }

    /// Move `id` from the bucket of `from`'s cell to the bucket of
    /// `to`'s cell. O(bucket) for the removal; a no-op when both
    /// positions share a cell.
    // xtask-contract(zero_alloc)
    pub fn relocate(&mut self, id: NodeId, from: &Position, to: &Position) {
        let (src, dst) = (self.cell_of(from), self.cell_of(to));
        if src == dst {
            return;
        }
        if let Some(bucket) = self.cells.get_mut(&src) {
            // Bucket-internal order is never observable (see module
            // docs), so the O(1) swap_remove is safe.
            if let Some(at) = bucket.iter().position(|&n| n == id) {
                bucket.swap_remove(at);
            }
            if bucket.is_empty() {
                self.cells.remove(&src);
            }
        }
        // xtask-allow(contract_zero_alloc): pushes into the destination bucket's amortized capacity (fresh cells are rare after warmup); the move bench gate proves steady state
        self.cells.entry(dst).or_default().push(id);
    }

    /// Append every node bucketed in the 3×3 cell block centered on
    /// `p`'s cell to `out` (without clearing it). The result is a
    /// superset of every node within `range` of `p` — callers apply
    /// the exact distance predicate.
    // xtask-contract(zero_alloc)
    pub fn candidates_around(&self, p: &Position, out: &mut Vec<NodeId>) {
        let (cx, cy) = self.cell_of(p);
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                if let Some(bucket) = self
                    .cells
                    .get(&(cx.saturating_add(dx), cy.saturating_add(dy)))
                {
                    // xtask-allow(contract_zero_alloc): extends the caller's recycled scratch buffer; capacity stabilizes after the first few moves (bench-gated)
                    out.extend_from_slice(bucket);
                }
            }
        }
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total nodes held across all buckets.
    pub fn len(&self) -> usize {
        self.cells.values().map(Vec::len).sum()
    }

    /// True when no node is indexed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Structural self-check for tests: every node in `positions` is
    /// bucketed exactly once, in exactly the bucket of its cell.
    /// Returns a human-readable description of the first violation.
    pub fn check_consistency(&self, positions: &[Position]) -> Result<(), String> {
        if self.len() != positions.len() {
            return Err(format!(
                "index holds {} nodes, topology has {}",
                self.len(),
                positions.len()
            ));
        }
        for (cell, bucket) in &self.cells {
            if bucket.is_empty() {
                return Err(format!("empty bucket retained at {cell:?}"));
            }
            for &id in bucket {
                let Some(p) = positions.get(id.index()) else {
                    return Err(format!("{id} bucketed but out of bounds"));
                };
                let expect = self.cell_of(p);
                if expect != *cell {
                    return Err(format!(
                        "{id} bucketed in {cell:?} but its position maps to {expect:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(x: f64, y: f64) -> Position {
        Position::new(x, y)
    }

    #[test]
    fn build_buckets_every_node_once() {
        let positions = vec![pos(0.1, 0.1), pos(0.9, 0.9), pos(0.1, 0.12), pos(0.5, 0.5)];
        let grid = GridIndex::build(&positions, 0.25);
        assert_eq!(grid.len(), 4);
        grid.check_consistency(&positions).expect("consistent");
        // 0 and 2 share a cell; 1 and 3 sit alone.
        assert_eq!(grid.occupied_cells(), 3);
    }

    #[test]
    fn candidates_cover_all_in_range_nodes() {
        let positions: Vec<Position> = (0..50)
            .map(|i| pos(f64::from(i) * 0.02, f64::from(i % 7) * 0.13))
            .collect();
        let range = 0.11;
        let grid = GridIndex::build(&positions, range);
        for (i, p) in positions.iter().enumerate() {
            let mut cand = Vec::new();
            grid.candidates_around(p, &mut cand);
            for (j, q) in positions.iter().enumerate() {
                if p.distance(q) <= range {
                    assert!(
                        cand.contains(&NodeId::from_index(j)),
                        "node {j} in range of {i} but not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn relocate_moves_between_buckets_and_prunes_empties() {
        let positions = vec![pos(0.05, 0.05), pos(0.95, 0.95)];
        let mut grid = GridIndex::build(&positions, 0.1);
        assert_eq!(grid.occupied_cells(), 2);
        let from = positions[0];
        let to = pos(0.95, 0.96);
        grid.relocate(NodeId(0), &from, &to);
        assert_eq!(grid.occupied_cells(), 1);
        let moved = vec![to, positions[1]];
        grid.check_consistency(&moved).expect("consistent");
    }

    #[test]
    fn relocate_within_a_cell_is_a_no_op() {
        let positions = vec![pos(0.05, 0.05)];
        let mut grid = GridIndex::build(&positions, 0.5);
        let to = pos(0.06, 0.07);
        grid.relocate(NodeId(0), &positions[0], &to);
        assert_eq!(grid.occupied_cells(), 1);
        grid.check_consistency(&[to]).expect("consistent");
    }

    #[test]
    fn negative_and_far_coordinates_bucket_safely() {
        let positions = vec![pos(-3.2, -0.1), pos(50.0, 50.0), pos(0.5, 0.5)];
        let grid = GridIndex::build(&positions, 0.3);
        assert_eq!(grid.len(), 3);
        grid.check_consistency(&positions).expect("consistent");
        let mut cand = Vec::new();
        grid.candidates_around(&positions[1], &mut cand);
        assert_eq!(cand, vec![NodeId(1)]);
    }

    #[test]
    fn range_larger_than_the_field_degenerates_to_one_cell() {
        let positions: Vec<Position> = (0..20)
            .map(|i| pos(f64::from(i) * 0.05, 1.0 - f64::from(i) * 0.05))
            .collect();
        let grid = GridIndex::build(&positions, std::f64::consts::SQRT_2);
        assert_eq!(grid.occupied_cells(), 1);
        let mut cand = Vec::new();
        grid.candidates_around(&positions[7], &mut cand);
        assert_eq!(cand.len(), 20);
    }
}
