//! Energy model and batteries.
//!
//! Figure 10 of the paper sets "the initial battery capacity of each
//! node ... equal to the simulated cost of 500 transmissions" and
//! charges "the processing cost of running the algorithm for
//! maintaining the cache \[as\] one tenth of the cost of transmitting a
//! message". Energy is therefore measured in *transmission
//! equivalents*: one broadcast costs 1.0, a cache-manager update costs
//! 0.1, and receiving is free by default (configurable).

/// Costs of the basic operations, in transmission equivalents.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Cost of transmitting one message.
    pub tx_cost: f64,
    /// Cost of receiving one message (0 in the paper's accounting).
    pub rx_cost: f64,
    /// Cost of one cache-manager update (0.1 in the paper).
    pub cache_update_cost: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_cost: 1.0,
            rx_cost: 0.0,
            cache_update_cost: 0.1,
        }
    }
}

/// Remaining charge of one node.
///
/// A battery may be [`Battery::infinite`] for experiments that ignore
/// energy (the sensitivity analysis of Section 6.1) or finite for the
/// lifetime experiment (Figure 10).
///
/// ```
/// use snapshot_netsim::Battery;
///
/// let mut battery = Battery::finite(500.0); // the paper's capacity
/// assert!(battery.draw(1.0));               // one transmission
/// assert!(battery.draw(0.1));               // one cache update
/// assert!((battery.fraction() - 0.9978).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Battery {
    capacity: f64,
    remaining: f64,
    infinite: bool,
}

impl Battery {
    /// A finite battery holding `capacity` transmission equivalents.
    pub fn finite(capacity: f64) -> Self {
        assert!(capacity >= 0.0, "battery capacity must be non-negative");
        Battery {
            capacity,
            remaining: capacity,
            infinite: false,
        }
    }

    /// A battery that never depletes.
    pub fn infinite() -> Self {
        Battery {
            capacity: f64::INFINITY,
            remaining: f64::INFINITY,
            infinite: true,
        }
    }

    /// Remaining charge (infinity for infinite batteries).
    #[inline]
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// Initial capacity.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Remaining charge as a fraction of capacity (1.0 for infinite).
    pub fn fraction(&self) -> f64 {
        if self.infinite || self.capacity == 0.0 {
            1.0
        } else {
            (self.remaining / self.capacity).max(0.0)
        }
    }

    /// True while any charge remains.
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.infinite || self.remaining > 0.0
    }

    /// Draw `amount` charge. Returns `false` when the battery was
    /// already depleted (the operation does not happen); drawing the
    /// last of the charge still succeeds, mirroring a node that dies
    /// *while* sending its final message.
    pub fn draw(&mut self, amount: f64) -> bool {
        debug_assert!(amount >= 0.0);
        if self.infinite {
            return true;
        }
        if self.remaining <= 0.0 {
            return false;
        }
        self.remaining -= amount;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_paper_accounting() {
        let m = EnergyModel::default();
        assert_eq!(m.tx_cost, 1.0);
        assert_eq!(m.rx_cost, 0.0);
        assert!((m.cache_update_cost - 0.1).abs() < 1e-12);
    }

    #[test]
    fn finite_battery_depletes() {
        let mut b = Battery::finite(2.0);
        assert!(b.is_alive());
        assert!(b.draw(1.0));
        assert!(b.draw(1.0));
        // Last draw succeeded but the battery is now empty.
        assert!(!b.is_alive());
        assert!(!b.draw(1.0));
    }

    #[test]
    fn infinite_battery_never_dies() {
        let mut b = Battery::infinite();
        for _ in 0..10_000 {
            assert!(b.draw(123.0));
        }
        assert!(b.is_alive());
        assert_eq!(b.fraction(), 1.0);
    }

    #[test]
    fn fraction_tracks_consumption() {
        let mut b = Battery::finite(10.0);
        b.draw(2.5);
        assert!((b.fraction() - 0.75).abs() < 1e-12);
        b.draw(100.0);
        assert_eq!(b.fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let _ = Battery::finite(-1.0);
    }
}
