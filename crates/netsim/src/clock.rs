//! Simulation time.
//!
//! The paper's runs "let the nodes operate for 100 time-units"; the
//! protocols additionally reference an *epoch id* ("in lack of properly
//! synchronized clocks ... one can use a global counter like the
//! epoch-id of a continuous query") used to time-stamp representative
//! elections and filter out spurious representatives.

/// A monotone tick counter shared by the whole simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// A clock starting at tick 0.
    pub fn new() -> Self {
        SimClock { now: 0 }
    }

    /// Current tick.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by one tick and return the new time.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Advance by `n` ticks.
    pub fn advance(&mut self, n: u64) {
        self.now += n;
    }
}

/// Epoch counter used to time-stamp representative elections.
///
/// The *latest* epoch wins when reconciling conflicting claims about
/// who represents whom (the paper's spurious-representative filter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The next epoch.
    #[inline]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        c.advance(10);
        assert_eq!(c.now(), 11);
    }

    #[test]
    fn epochs_order_by_recency() {
        let e = Epoch(3);
        assert!(e.next() > e);
        assert_eq!(e.next(), Epoch(4));
    }
}
