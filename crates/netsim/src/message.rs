//! Message envelopes exchanged through the simulator.

use crate::node::NodeId;
use snapshot_telemetry::Phase;

/// Where a message is aimed.
///
/// Physically every transmission is a broadcast (anyone in range can
/// snoop it); `Unicast` merely records the intended recipient so the
/// simulator can distinguish addressed traffic from overheard traffic.
/// The snapshot protocols exploit this: models are refined by snooping
/// broadcasts that were addressed to somebody else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Addressed to every node in range.
    Broadcast,
    /// Addressed to one node (still physically audible to others).
    Unicast(NodeId),
}

impl Destination {
    /// Whether a copy arriving at `receiver` counts as addressed
    /// traffic (as opposed to merely overheard).
    #[inline]
    pub fn is_addressed_to(self, receiver: NodeId) -> bool {
        match self {
            Destination::Broadcast => true,
            Destination::Unicast(t) => t == receiver,
        }
    }
}

/// A message in flight: sender, destination, payload and its wire size
/// in bytes (used only for accounting; the radio does not fragment).
#[derive(Debug, Clone)]
pub struct Envelope<P> {
    /// Sending node.
    pub src: NodeId,
    /// Intended destination.
    pub dst: Destination,
    /// Application payload.
    pub payload: P,
    /// Approximate wire size, bytes.
    pub bytes: u32,
    /// The protocol phase that produced this message
    /// (e.g. [`Phase::Invitation`]); drives per-phase statistics.
    pub phase: Phase,
    /// Delivery round at which the message was enqueued. Delivery
    /// stamps the per-hop latency histogram with
    /// `delivery_round - sent_tick` (exactly 1 in the current
    /// synchronous model; the event-driven core will let it grow).
    pub sent_tick: u64,
}

/// A message as it arrives in a node's inbox.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// The sender.
    pub from: NodeId,
    /// Whether this node was the addressed recipient (`false` for
    /// traffic it merely overheard).
    pub addressed: bool,
    /// The payload.
    pub payload: P,
}

impl<P> Delivery<P> {
    /// Map the payload, keeping delivery metadata.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Delivery<Q> {
        Delivery {
            from: self.from,
            addressed: self.addressed,
            payload: f(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_records_target() {
        let d = Destination::Unicast(NodeId(5));
        assert_eq!(d, Destination::Unicast(NodeId(5)));
        assert_ne!(d, Destination::Broadcast);
    }

    #[test]
    fn delivery_map_preserves_metadata() {
        let d = Delivery {
            from: NodeId(2),
            addressed: true,
            payload: 21u32,
        };
        let d2 = d.map(|v| v * 2);
        assert_eq!(d2.from, NodeId(2));
        assert!(d2.addressed);
        assert_eq!(d2.payload, 42);
    }
}
