//! Link-quality models: who hears a transmitted message.
//!
//! The paper models "the probability of a link failure" as a single
//! parameter `P_loss`, applied independently per receiver per message
//! (its Figures 7 and 13 sweep `P_loss` from 0 to 0.95). We provide
//! that model plus two refinements used by extension experiments:
//! per-directed-link probabilities (asymmetric links, the situation
//! Section 3's "spurious representative" discussion worries about) and
//! a distance-degraded model where loss grows with distance within the
//! radio range.

use crate::node::NodeId;
use crate::rng::RngExt;

/// Parameters of the Gilbert–Elliott two-state bursty-loss chain.
///
/// Each directed link is an independent two-state Markov chain. In the
/// *good* state deliveries are lost with probability `p_loss_good`; in
/// the *bad* state with `p_loss_bad`. Before every delivery attempt the
/// chain takes one transition step (`p_good_to_bad` / `p_bad_to_good`),
/// then the loss draw uses the resulting state. The stationary
/// bad-state probability is `p_good_to_bad / (p_good_to_bad +
/// p_bad_to_good)`, so the long-run average loss rate is
/// `π_good·p_loss_good + π_bad·p_loss_bad` — see [`Self::average_loss`].
/// Setting `p_loss_good == p_loss_bad == p` degenerates to the paper's
/// i.i.d. model with loss `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-attempt transition probability good → bad.
    pub p_good_to_bad: f64,
    /// Per-attempt transition probability bad → good.
    pub p_bad_to_good: f64,
    /// Loss probability while the link is in the good state.
    pub p_loss_good: f64,
    /// Loss probability while the link is in the bad state.
    pub p_loss_bad: f64,
}

impl GilbertElliott {
    /// Stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            // A frozen chain never leaves the good state links start in.
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run average loss rate of the chain (the number to match
    /// when comparing against an i.i.d. model at equal loss).
    pub fn average_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        (1.0 - pi_bad) * self.p_loss_good + pi_bad * self.p_loss_bad
    }

    /// Build a bursty chain whose long-run average loss equals
    /// `average` with a lossless good state: `p_loss_bad` is solved as
    /// `average / π_bad`.
    ///
    /// # Panics
    /// Panics when the stationary bad-state probability is smaller
    /// than `average` (the bad state cannot lose more than every
    /// message), or when any argument is outside `[0, 1]`.
    pub fn with_average_loss(average: f64, p_good_to_bad: f64, p_bad_to_good: f64) -> Self {
        for (name, p) in [
            ("average", average),
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        let probe = GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            p_loss_good: 0.0,
            p_loss_bad: 0.0,
        };
        let pi_bad = probe.stationary_bad();
        assert!(
            average == 0.0 || pi_bad >= average,
            "stationary bad probability {pi_bad} cannot carry average loss {average}"
        );
        GilbertElliott {
            p_loss_bad: if average == 0.0 {
                0.0
            } else {
                average / pi_bad
            },
            ..probe
        }
    }
}

/// Probabilistic model deciding whether a single (sender, receiver)
/// delivery attempt succeeds.
#[derive(Debug, Clone)]
pub enum LinkModel {
    /// Every in-range delivery succeeds.
    Perfect,
    /// Each delivery fails independently with probability `p_loss`.
    /// This is the paper's model.
    Iid {
        /// Probability in `[0, 1]` that a given receiver misses a
        /// given message.
        p_loss: f64,
    },
    /// Directed per-link loss probabilities; entry `[src][dst]` is the
    /// loss probability on the link `src -> dst`. Allows modelling the
    /// asymmetric "obstacle in their direct path" scenario from
    /// Section 3 of the paper.
    PerLink {
        /// Row-major loss matrix, `n * n` entries.
        p_loss: Vec<Vec<f64>>,
    },
    /// Loss grows linearly from `p_near` at distance 0 to `p_far` at
    /// the radio range; a crude stand-in for signal attenuation.
    DistanceDegraded {
        /// Loss probability at zero distance.
        p_near: f64,
        /// Loss probability at exactly the transmission range.
        p_far: f64,
    },
    /// Bursty loss: every directed link runs an independent
    /// Gilbert–Elliott two-state chain (see [`GilbertElliott`]).
    /// Built with [`LinkModel::gilbert_elliott`]; all links start in
    /// the good state.
    Burst {
        /// The shared chain parameters.
        params: GilbertElliott,
        /// Per-directed-link state, row-major `n × n`; `true` = bad.
        bad: Vec<bool>,
        /// Node count the state matrix was sized for.
        n: usize,
    },
}

impl LinkModel {
    /// Convenience constructor for the paper's i.i.d. loss model;
    /// `p_loss = 0` collapses to [`LinkModel::Perfect`].
    pub fn iid_loss(p_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_loss),
            "p_loss must be a probability, got {p_loss}"
        );
        if p_loss == 0.0 {
            LinkModel::Perfect
        } else {
            LinkModel::Iid { p_loss }
        }
    }

    /// Convenience constructor for the bursty Gilbert–Elliott model;
    /// allocates good-state chains for `n_nodes * n_nodes` directed
    /// links.
    pub fn gilbert_elliott(n_nodes: usize, params: GilbertElliott) -> Self {
        for (name, p) in [
            ("p_good_to_bad", params.p_good_to_bad),
            ("p_bad_to_good", params.p_bad_to_good),
            ("p_loss_good", params.p_loss_good),
            ("p_loss_bad", params.p_loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        LinkModel::Burst {
            params,
            bad: vec![false; n_nodes * n_nodes],
            n: n_nodes,
        }
    }

    /// Decide whether a delivery attempt from `src` to `dst` succeeds.
    ///
    /// `dist_frac` is the sender-receiver distance divided by the
    /// transmission range (only used by the distance-degraded model).
    /// Takes `&mut self` because the bursty model advances per-link
    /// chain state; the memoryless models never mutate.
    pub fn delivered<R: RngExt + ?Sized>(
        &mut self,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        dist_frac: f64,
    ) -> bool {
        self.delivered_tracked(rng, src, dst, dist_frac).0
    }

    /// Like [`Self::delivered`], but additionally reports a bursty
    /// link-state flip: `Some(now_bad)` when this attempt moved the
    /// `src -> dst` chain between states, `None` otherwise (including
    /// for every memoryless model).
    pub fn delivered_tracked<R: RngExt + ?Sized>(
        &mut self,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        dist_frac: f64,
    ) -> (bool, Option<bool>) {
        match self {
            LinkModel::Perfect => (true, None),
            LinkModel::Iid { p_loss } => (!rng.random_bool(*p_loss), None),
            LinkModel::PerLink { p_loss } => {
                let p = p_loss[src.index()][dst.index()];
                (!rng.random_bool(p.clamp(0.0, 1.0)), None)
            }
            LinkModel::DistanceDegraded { p_near, p_far } => {
                let p = *p_near + (*p_far - *p_near) * dist_frac.clamp(0.0, 1.0);
                (!rng.random_bool(p.clamp(0.0, 1.0)), None)
            }
            LinkModel::Burst { params, bad, n } => {
                let idx = src.index() * *n + dst.index();
                let was_bad = bad[idx];
                // One chain step per attempt, then the loss draw uses
                // the post-transition state. Both draws always happen
                // in this order, keeping the stream layout fixed.
                let flip_p = if was_bad {
                    params.p_bad_to_good
                } else {
                    params.p_good_to_bad
                };
                let now_bad = was_bad ^ rng.random_bool(flip_p);
                bad[idx] = now_bad;
                let p_loss = if now_bad {
                    params.p_loss_bad
                } else {
                    params.p_loss_good
                };
                let delivered = !rng.random_bool(p_loss);
                let flip = (was_bad != now_bad).then_some(now_bad);
                (delivered, flip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn rate(model: &mut LinkModel, trials: u32, dist_frac: f64) -> f64 {
        let mut rng = DetRng::seed_from_u64(99);
        let mut ok = 0u32;
        for _ in 0..trials {
            if model.delivered(&mut rng, NodeId(0), NodeId(1), dist_frac) {
                ok += 1;
            }
        }
        f64::from(ok) / f64::from(trials)
    }

    #[test]
    fn perfect_always_delivers() {
        assert_eq!(rate(&mut LinkModel::Perfect, 1000, 0.5), 1.0);
    }

    #[test]
    fn zero_loss_collapses_to_perfect() {
        assert!(matches!(LinkModel::iid_loss(0.0), LinkModel::Perfect));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_rejects_out_of_range_probability() {
        let _ = LinkModel::iid_loss(1.5);
    }

    #[test]
    fn iid_loss_rate_matches_probability() {
        let mut model = LinkModel::iid_loss(0.3);
        let r = rate(&mut model, 20_000, 0.0);
        assert!((r - 0.7).abs() < 0.02, "delivery rate {r}, expected ~0.7");
    }

    #[test]
    fn per_link_uses_directed_entries() {
        let mut model = LinkModel::PerLink {
            p_loss: vec![vec![0.0, 1.0], vec![0.0, 0.0]],
        };
        let mut rng = DetRng::seed_from_u64(1);
        // 0 -> 1 always lost
        assert!(!model.delivered(&mut rng, NodeId(0), NodeId(1), 0.0));
        // 1 -> 0 never lost: asymmetric
        assert!(model.delivered(&mut rng, NodeId(1), NodeId(0), 0.0));
    }

    #[test]
    fn distance_degraded_interpolates() {
        let mut model = LinkModel::DistanceDegraded {
            p_near: 0.0,
            p_far: 1.0,
        };
        assert!((rate(&mut model, 5_000, 0.0) - 1.0).abs() < 1e-9);
        assert!(rate(&mut model, 5_000, 1.0) < 1e-9);
        let mid = rate(&mut model, 20_000, 0.5);
        assert!((mid - 0.5).abs() < 0.02, "mid-range delivery rate {mid}");
    }

    #[test]
    fn gilbert_elliott_stationary_math() {
        let ge = GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
            p_loss_good: 0.0,
            p_loss_bad: 0.8,
        };
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.average_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_average_loss_matches_target() {
        let ge = GilbertElliott::with_average_loss(0.1, 0.05, 0.25);
        assert!((ge.average_loss() - 0.1).abs() < 1e-12);
        assert_eq!(ge.p_loss_good, 0.0);
        let frozen = GilbertElliott::with_average_loss(0.0, 0.0, 0.0);
        assert_eq!(frozen.average_loss(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot carry average loss")]
    fn with_average_loss_rejects_unreachable_targets() {
        // π_bad = 0.1 < target 0.5: even a fully-lossy bad state
        // cannot average 50% loss.
        let _ = GilbertElliott::with_average_loss(0.5, 0.1, 0.9);
    }

    #[test]
    fn gilbert_elliott_long_run_rate_matches_average_loss() {
        let ge = GilbertElliott::with_average_loss(0.2, 0.05, 0.2);
        let mut model = LinkModel::gilbert_elliott(2, ge);
        let r = rate(&mut model, 100_000, 0.0);
        assert!(
            (r - 0.8).abs() < 0.02,
            "delivery rate {r}, expected ~0.8 at 20% average loss"
        );
    }

    #[test]
    fn gilbert_elliott_reports_state_flips() {
        let ge = GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 1.0,
            p_loss_good: 0.0,
            p_loss_bad: 1.0,
        };
        let mut model = LinkModel::gilbert_elliott(2, ge);
        let mut rng = DetRng::seed_from_u64(5);
        // Deterministic alternation: every attempt flips the chain.
        let (ok1, flip1) = model.delivered_tracked(&mut rng, NodeId(0), NodeId(1), 0.0);
        assert_eq!((ok1, flip1), (false, Some(true)));
        let (ok2, flip2) = model.delivered_tracked(&mut rng, NodeId(0), NodeId(1), 0.0);
        assert_eq!((ok2, flip2), (true, Some(false)));
        // Chains are per directed link: 1 -> 0 starts fresh in good.
        let (_, flip3) = model.delivered_tracked(&mut rng, NodeId(1), NodeId(0), 0.0);
        assert_eq!(flip3, Some(true));
    }

    #[test]
    fn degenerate_gilbert_elliott_is_iid() {
        let ge = GilbertElliott {
            p_good_to_bad: 0.5,
            p_bad_to_good: 0.5,
            p_loss_good: 0.3,
            p_loss_bad: 0.3,
        };
        assert!((ge.average_loss() - 0.3).abs() < 1e-12);
        let mut model = LinkModel::gilbert_elliott(2, ge);
        let r = rate(&mut model, 50_000, 0.0);
        assert!((r - 0.7).abs() < 0.02, "delivery rate {r}, expected ~0.7");
    }
}
