//! Link-quality models: who hears a transmitted message.
//!
//! The paper models "the probability of a link failure" as a single
//! parameter `P_loss`, applied independently per receiver per message
//! (its Figures 7 and 13 sweep `P_loss` from 0 to 0.95). We provide
//! that model plus two refinements used by extension experiments:
//! per-directed-link probabilities (asymmetric links, the situation
//! Section 3's "spurious representative" discussion worries about) and
//! a distance-degraded model where loss grows with distance within the
//! radio range.

use crate::node::NodeId;
use crate::rng::RngExt;

/// Probabilistic model deciding whether a single (sender, receiver)
/// delivery attempt succeeds.
#[derive(Debug, Clone)]
pub enum LinkModel {
    /// Every in-range delivery succeeds.
    Perfect,
    /// Each delivery fails independently with probability `p_loss`.
    /// This is the paper's model.
    Iid {
        /// Probability in `[0, 1]` that a given receiver misses a
        /// given message.
        p_loss: f64,
    },
    /// Directed per-link loss probabilities; entry `[src][dst]` is the
    /// loss probability on the link `src -> dst`. Allows modelling the
    /// asymmetric "obstacle in their direct path" scenario from
    /// Section 3 of the paper.
    PerLink {
        /// Row-major loss matrix, `n * n` entries.
        p_loss: Vec<Vec<f64>>,
    },
    /// Loss grows linearly from `p_near` at distance 0 to `p_far` at
    /// the radio range; a crude stand-in for signal attenuation.
    DistanceDegraded {
        /// Loss probability at zero distance.
        p_near: f64,
        /// Loss probability at exactly the transmission range.
        p_far: f64,
    },
}

impl LinkModel {
    /// Convenience constructor for the paper's i.i.d. loss model;
    /// `p_loss = 0` collapses to [`LinkModel::Perfect`].
    pub fn iid_loss(p_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_loss),
            "p_loss must be a probability, got {p_loss}"
        );
        if p_loss == 0.0 {
            LinkModel::Perfect
        } else {
            LinkModel::Iid { p_loss }
        }
    }

    /// Decide whether a delivery attempt from `src` to `dst` succeeds.
    ///
    /// `dist_frac` is the sender-receiver distance divided by the
    /// transmission range (only used by the distance-degraded model).
    pub fn delivered<R: RngExt + ?Sized>(
        &self,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        dist_frac: f64,
    ) -> bool {
        match self {
            LinkModel::Perfect => true,
            LinkModel::Iid { p_loss } => !rng.random_bool(*p_loss),
            LinkModel::PerLink { p_loss } => {
                let p = p_loss[src.index()][dst.index()];
                !rng.random_bool(p.clamp(0.0, 1.0))
            }
            LinkModel::DistanceDegraded { p_near, p_far } => {
                let p = p_near + (p_far - p_near) * dist_frac.clamp(0.0, 1.0);
                !rng.random_bool(p.clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn rate(model: &LinkModel, trials: u32, dist_frac: f64) -> f64 {
        let mut rng = DetRng::seed_from_u64(99);
        let mut ok = 0u32;
        for _ in 0..trials {
            if model.delivered(&mut rng, NodeId(0), NodeId(1), dist_frac) {
                ok += 1;
            }
        }
        f64::from(ok) / f64::from(trials)
    }

    #[test]
    fn perfect_always_delivers() {
        assert_eq!(rate(&LinkModel::Perfect, 1000, 0.5), 1.0);
    }

    #[test]
    fn zero_loss_collapses_to_perfect() {
        assert!(matches!(LinkModel::iid_loss(0.0), LinkModel::Perfect));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn iid_rejects_out_of_range_probability() {
        let _ = LinkModel::iid_loss(1.5);
    }

    #[test]
    fn iid_loss_rate_matches_probability() {
        let model = LinkModel::iid_loss(0.3);
        let r = rate(&model, 20_000, 0.0);
        assert!((r - 0.7).abs() < 0.02, "delivery rate {r}, expected ~0.7");
    }

    #[test]
    fn per_link_uses_directed_entries() {
        let model = LinkModel::PerLink {
            p_loss: vec![vec![0.0, 1.0], vec![0.0, 0.0]],
        };
        let mut rng = DetRng::seed_from_u64(1);
        // 0 -> 1 always lost
        assert!(!model.delivered(&mut rng, NodeId(0), NodeId(1), 0.0));
        // 1 -> 0 never lost: asymmetric
        assert!(model.delivered(&mut rng, NodeId(1), NodeId(0), 0.0));
    }

    #[test]
    fn distance_degraded_interpolates() {
        let model = LinkModel::DistanceDegraded {
            p_near: 0.0,
            p_far: 1.0,
        };
        assert!((rate(&model, 5_000, 0.0) - 1.0).abs() < 1e-9);
        assert!(rate(&model, 5_000, 1.0) < 1e-9);
        let mid = rate(&model, 20_000, 0.5);
        assert!((mid - 0.5).abs() < 0.02, "mid-range delivery rate {mid}");
    }
}
