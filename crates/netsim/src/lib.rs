//! # snapshot-netsim
//!
//! A discrete-time wireless sensor network simulator, built as the
//! evaluation substrate for the *snapshot queries* framework of
//! Kotidis (ICDE 2005).
//!
//! The paper evaluates its protocols on a custom simulator that models
//! node placement in the unit square, a unit-disk broadcast radio with a
//! configurable transmission range, independent per-receiver message
//! loss, and a simple energy model in which the battery is measured in
//! "transmission equivalents". This crate reimplements that substrate
//! with a few production niceties:
//!
//! * **Determinism** — every run is driven by an explicit `u64` seed;
//!   the same seed always yields the same message loss pattern, node
//!   placement and energy trace.
//! * **Typed messages** — protocols exchange an application-defined
//!   payload type through [`Network::broadcast`] / [`Network::unicast`]
//!   and rounds are advanced explicitly with [`Network::deliver`].
//! * **Accounting** — per-node, per-phase message counters
//!   ([`stats::NetStats`]) and per-node batteries ([`energy::Battery`])
//!   make the paper's Table 2 / Figure 10 experiments directly
//!   measurable.
//!
//! The crate is intentionally independent of the snapshot-query logic:
//! it knows nothing about models, representatives or caches. Higher
//! layers (the `snapshot-core` crate) drive it round by round.
//!
//! ## Quick example
//!
//! ```
//! use snapshot_netsim::prelude::*;
//!
//! // 25 nodes uniformly placed in the unit square, radio range 0.5.
//! let topo = Topology::random_uniform(25, 0.5, 42).expect("valid deployment");
//! let mut net: Network<&'static str> =
//!     Network::new(topo, LinkModel::iid_loss(0.0), EnergyModel::default(), 7);
//!
//! net.broadcast(NodeId(0), "hello", 8, Phase::Test);
//! net.deliver();
//! let nodes: Vec<NodeId> = net.node_ids().collect();
//! for n in nodes {
//!     let inbox = net.take_inbox(n);
//!     if n != NodeId(0) && net.topology().in_range(NodeId(0), n) {
//!         assert_eq!(inbox.len(), 1);
//!     }
//! }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod energy;
pub mod error;
pub mod fault;
pub mod flood;
pub mod grid;
pub mod link;
pub mod message;
pub mod mobility;
pub mod node;
pub mod rng;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod tree;

pub use clock::SimClock;
pub use energy::{Battery, EnergyModel};
pub use error::NetsimError;
pub use fault::{FaultEvent, FaultKind, FaultParseError, FaultPlan, FaultSchedule, FaultTarget};
pub use flood::FloodOutcome;
pub use grid::GridIndex;
pub use link::{GilbertElliott, LinkModel};
pub use message::{Delivery, Destination, Envelope};
pub use mobility::RandomWaypoint;
pub use node::NodeId;
pub use rng::{DetRng, RngCore, RngExt};
pub use scheduler::{set_default_drain_mode, DrainMode, EventKey, Scheduler, WakeReason};
pub use sim::Network;
pub use snapshot_telemetry::{self as telemetry, Event, Phase, Recorder, SpanKind, Telemetry};
pub use stats::NetStats;
pub use topology::{Position, Topology};
pub use tree::AggregationTree;

/// Commonly used types, for glob import in examples and tests.
pub mod prelude {
    pub use crate::clock::SimClock;
    pub use crate::energy::{Battery, EnergyModel};
    pub use crate::error::NetsimError;
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultTarget};
    pub use crate::flood::FloodOutcome;
    pub use crate::link::{GilbertElliott, LinkModel};
    pub use crate::message::{Delivery, Destination, Envelope};
    pub use crate::mobility::RandomWaypoint;
    pub use crate::node::NodeId;
    pub use crate::rng::{DetRng, RngCore, RngExt};
    pub use crate::scheduler::{DrainMode, Scheduler, WakeReason};
    pub use crate::sim::Network;
    pub use crate::stats::NetStats;
    pub use crate::topology::{Position, Topology};
    pub use crate::tree::AggregationTree;
    pub use snapshot_telemetry::{Event, Phase, Recorder, SpanKind, Telemetry};
}
