//! Network flooding.
//!
//! The paper forms its aggregation trees "using the flooding mechanism
//! described in \[11\]" (TAG, Madden et al.): the sink broadcasts a tree
//! formation message; every node that hears it for the first time
//! records the sender as its parent and rebroadcasts once. Loss applies
//! to every hop, so under heavy loss parts of the network never join
//! the tree — exactly the effect the paper's loss experiments exercise.

use crate::message::Delivery;
use crate::node::NodeId;
use crate::sim::Network;
use snapshot_telemetry::Phase;

/// The payload of a flood message: the hop distance of the sender from
/// the sink. Embed this in the application payload type via the
/// `wrap` / `unwrap` closures of [`flood`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodToken {
    /// Hops from the sink (the sink itself broadcasts 0).
    pub hops: u32,
}

/// Result of a flood: which nodes joined, through whom, at what depth.
#[derive(Debug, Clone)]
pub struct FloodOutcome {
    /// The flood's origin.
    pub sink: NodeId,
    /// `parent[i]` is the node from which `N_i` first heard the flood
    /// (`None` if the flood never reached it; the sink's parent is
    /// itself by convention).
    pub parent: Vec<Option<NodeId>>,
    /// Hop distance from the sink (`None` if unreached).
    pub hops: Vec<Option<u32>>,
}

impl FloodOutcome {
    /// Nodes the flood reached (including the sink).
    pub fn reached(&self) -> Vec<NodeId> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|_| NodeId::from_index(i)))
            .collect()
    }

    /// Number of nodes reached.
    pub fn reached_count(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }
}

/// Run a flood from `sink` over the network.
///
/// `wrap` embeds a [`FloodToken`] into the application payload type;
/// `unwrap` recognizes flood messages in an inbox (returning `None`
/// for unrelated traffic, which is put back *nowhere* — run floods in
/// a quiescent window, as the paper's experiments do).
///
/// The flood runs for at most `max_rounds` delivery rounds (the
/// network diameter bounds the useful number; `n` is always safe).
pub fn flood<P: Clone>(
    net: &mut Network<P>,
    sink: NodeId,
    wrap: impl Fn(FloodToken) -> P,
    unwrap: impl Fn(&P) -> Option<FloodToken>,
    max_rounds: usize,
    phase: Phase,
) -> FloodOutcome {
    let n = net.len();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut hops: Vec<Option<u32>> = vec![None; n];

    if net.is_alive(sink) {
        parent[sink.index()] = Some(sink);
        hops[sink.index()] = Some(0);
        net.broadcast(sink, wrap(FloodToken { hops: 0 }), 4, phase);
    }

    let mut inbox: Vec<Delivery<P>> = Vec::new();
    for _ in 0..max_rounds {
        let delivered = net.deliver();
        if delivered == 0 && net.pending() == 0 {
            break;
        }
        let mut joiners: Vec<(NodeId, u32)> = Vec::new();
        for id in 0..n {
            let id = NodeId::from_index(id);
            net.take_inbox_into(id, &mut inbox);
            if parent[id.index()].is_some() {
                continue; // already in the tree
            }
            // Join through the lowest-hop sender heard this round.
            let mut best: Option<(NodeId, u32)> = None;
            for d in &inbox {
                if let Some(token) = unwrap(&d.payload) {
                    let better = match best {
                        None => true,
                        Some((_, h)) => token.hops < h,
                    };
                    if better {
                        best = Some((d.from, token.hops));
                    }
                }
            }
            if let Some((from, h)) = best {
                parent[id.index()] = Some(from);
                hops[id.index()] = Some(h + 1);
                joiners.push((id, h + 1));
            }
        }
        if joiners.is_empty() && net.pending() == 0 {
            break;
        }
        for (id, h) in joiners {
            net.broadcast(id, wrap(FloodToken { hops: h }), 4, phase);
        }
    }
    // Drain any leftover flood traffic so later protocol phases start clean.
    net.deliver();
    for id in 0..n {
        net.clear_inbox(NodeId::from_index(id));
    }

    FloodOutcome { sink, parent, hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyModel;
    use crate::link::LinkModel;
    use crate::topology::{Position, Topology};

    fn line_net(n: usize, loss: f64, seed: u64) -> Network<FloodToken> {
        let positions = (0..n).map(|i| Position::new(i as f64 * 0.1, 0.0)).collect();
        let topo = Topology::new(positions, 0.15).unwrap();
        Network::new(
            topo,
            LinkModel::iid_loss(loss),
            EnergyModel::default(),
            seed,
        )
    }

    #[test]
    fn lossless_flood_reaches_everyone_with_correct_hops() {
        let mut net = line_net(6, 0.0, 1);
        let out = flood(&mut net, NodeId(0), |t| t, |t| Some(*t), 10, Phase::Flood);
        assert_eq!(out.reached_count(), 6);
        for i in 0..6 {
            assert_eq!(out.hops[i], Some(i as u32));
        }
        // Parents form a chain back to the sink.
        for i in 1..6 {
            assert_eq!(out.parent[i], Some(NodeId(i as u32 - 1)));
        }
        assert_eq!(out.parent[0], Some(NodeId(0)));
    }

    #[test]
    fn total_loss_reaches_only_the_sink() {
        let mut net = line_net(6, 1.0, 1);
        let out = flood(&mut net, NodeId(0), |t| t, |t| Some(*t), 10, Phase::Flood);
        assert_eq!(out.reached_count(), 1);
        assert_eq!(out.reached(), vec![NodeId(0)]);
    }

    #[test]
    fn dead_sink_floods_nothing() {
        let mut net = line_net(4, 0.0, 1);
        net.kill(NodeId(0));
        let out = flood(&mut net, NodeId(0), |t| t, |t| Some(*t), 10, Phase::Flood);
        assert_eq!(out.reached_count(), 0);
    }

    #[test]
    fn flood_routes_around_dead_nodes() {
        // Full connectivity: everyone hears the sink directly even if
        // one intermediate node is dead.
        let positions = (0..5)
            .map(|i| Position::new(i as f64 * 0.01, 0.0))
            .collect();
        let topo = Topology::new(positions, 1.0).unwrap();
        let mut net: Network<FloodToken> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.kill(NodeId(2));
        let out = flood(&mut net, NodeId(0), |t| t, |t| Some(*t), 10, Phase::Flood);
        assert_eq!(out.reached_count(), 4);
        assert_eq!(out.parent[2], None);
    }

    #[test]
    fn each_node_rebroadcasts_at_most_once() {
        let mut net = line_net(8, 0.0, 3);
        let _ = flood(&mut net, NodeId(0), |t| t, |t| Some(*t), 20, Phase::Flood);
        for id in net.node_ids().collect::<Vec<_>>() {
            assert!(net.stats().sent_by(id) <= 1, "{id} sent more than once");
        }
    }
}
