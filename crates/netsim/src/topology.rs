//! Node placement and radio connectivity.
//!
//! The paper places `N = 100` nodes uniformly at random in the unit
//! square `[0,1) x [0,1)` and models the radio as a unit disk: node `A`
//! can transmit directly to node `B` iff their Euclidean distance is at
//! most the transmission range. Neighborhood is *not* assumed
//! symmetric by the protocols, but the unit-disk model itself is; the
//! simulator keeps per-link asymmetry in the loss model instead.

use crate::error::NetsimError;
use crate::grid::GridIndex;
use crate::node::NodeId;
use crate::rng::derive_seed;
use crate::rng::DetRng;
use crate::rng::RngExt;
use std::collections::VecDeque;

/// A point in the deployment area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Position {
    /// Construct a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    #[inline]
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// True when the position lies inside the axis-aligned rectangle
    /// `[x0, x1] x [y0, y1]`.
    #[inline]
    pub fn in_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> bool {
        self.x >= x0 && self.x <= x1 && self.y >= y0 && self.y <= y1
    }
}

/// Static deployment: node positions plus the radio's transmission range.
///
/// Neighbor lists are precomputed through a uniform-grid spatial index
/// ([`GridIndex`], cell side = range): construction scans only the
/// 3×3 cell neighborhood of each node — O(N·d) for mean degree d
/// instead of the old all-pairs O(N²) — which is what lets the `scale`
/// experiment sweep the paper's §6 sensitivity analysis at 10k–100k
/// nodes. Lookups during the protocols stay O(1) per neighbor.
///
/// **Ordering contract:** each freshly built neighbor slice is sorted
/// ascending by [`NodeId`] (exactly the order the all-pairs scan
/// produced), and [`Topology::set_position`] preserves the historical
/// incremental semantics — the moved node's own slice is rebuilt
/// sorted, while in every *other* affected slice the moved node is
/// appended on entry and spliced out on exit, leaving the survivors'
/// relative order untouched. Experiment traces and CSVs are
/// byte-identical to the pre-grid implementation.
///
/// ```
/// use snapshot_netsim::Topology;
///
/// // The paper's deployment: 100 nodes in the unit square; range
/// // sqrt(2) makes the radio graph complete.
/// let topo = Topology::random_uniform(100, std::f64::consts::SQRT_2, 42)
///     .expect("valid deployment");
/// assert!(topo.is_connected());
/// assert_eq!(topo.neighbors(snapshot_netsim::NodeId(0)).len(), 99);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Position>,
    range: f64,
    neighbors: Vec<Vec<NodeId>>,
    grid: GridIndex,
    /// Reused candidate buffer: keeps [`Topology::set_position`]
    /// allocation-free in steady state (mobility runs every tick).
    scratch: Vec<NodeId>,
}

impl Topology {
    /// Build a topology from explicit positions.
    ///
    /// # Errors
    /// Returns [`NetsimError::InvalidParameter`] if `range` is not
    /// strictly positive or `positions` is empty.
    pub fn new(positions: Vec<Position>, range: f64) -> Result<Self, NetsimError> {
        if range.is_nan() || range <= 0.0 {
            return Err(NetsimError::InvalidParameter {
                name: "range",
                reason: format!("transmission range must be positive, got {range}"),
            });
        }
        if positions.is_empty() {
            return Err(NetsimError::InvalidParameter {
                name: "positions",
                reason: "at least one node is required".into(),
            });
        }
        let grid = GridIndex::build(&positions, range);
        let neighbors = Self::compute_neighbors(&positions, &grid, range);
        Ok(Topology {
            positions,
            range,
            neighbors,
            grid,
            scratch: Vec::new(),
        })
    }

    /// Rebuild a topology from previously captured parts: positions,
    /// range, and the neighbor lists *verbatim* — including any
    /// [`Topology::set_position`] append/splice history, which a fresh
    /// [`Topology::new`] would normalize back to sorted order. This is
    /// the checkpoint-restore constructor: BFS tree formation is
    /// neighbor-order-sensitive, so a faithful restore must preserve
    /// the exact slices, not just the edge set. The grid index is
    /// rebuilt from the positions (it is a pure function of them).
    ///
    /// # Errors
    /// Returns [`NetsimError::InvalidParameter`] if `range` is not
    /// strictly positive, `positions` is empty, or `neighbors` does not
    /// have exactly one list per node.
    pub fn from_parts(
        positions: Vec<Position>,
        range: f64,
        neighbors: Vec<Vec<NodeId>>,
    ) -> Result<Self, NetsimError> {
        if range.is_nan() || range <= 0.0 {
            return Err(NetsimError::InvalidParameter {
                name: "range",
                reason: format!("transmission range must be positive, got {range}"),
            });
        }
        if positions.is_empty() {
            return Err(NetsimError::InvalidParameter {
                name: "positions",
                reason: "at least one node is required".into(),
            });
        }
        if neighbors.len() != positions.len() {
            return Err(NetsimError::InvalidParameter {
                name: "neighbors",
                reason: format!(
                    "{} neighbor lists for {} nodes",
                    neighbors.len(),
                    positions.len()
                ),
            });
        }
        let grid = GridIndex::build(&positions, range);
        Ok(Topology {
            positions,
            range,
            neighbors,
            grid,
            scratch: Vec::new(),
        })
    }

    /// Place `n` nodes uniformly at random in `[0,1) x [0,1)`,
    /// reproducing the paper's deployment. Deterministic in `seed`.
    ///
    /// # Errors
    /// Returns [`NetsimError::InvalidParameter`] if `n == 0` or the
    /// range is not strictly positive — an empty or rangeless
    /// deployment would only panic later (e.g. in `tree.rs`), so it is
    /// rejected up front with a typed error instead.
    pub fn random_uniform(n: usize, range: f64, seed: u64) -> Result<Self, NetsimError> {
        if n == 0 {
            return Err(NetsimError::InvalidParameter {
                name: "n",
                reason: "at least one node is required".into(),
            });
        }
        let mut rng = DetRng::seed_from_u64(derive_seed(seed, 0xB10C));
        let positions = (0..n)
            .map(|_| Position::new(rng.random_f64(), rng.random_f64()))
            .collect();
        Self::new(positions, range)
    }

    /// Place `side * side` nodes on a regular grid covering the unit
    /// square. Useful for tests that need predictable neighborhoods.
    #[allow(clippy::expect_used)] // documented fail-fast, see xtask-allow below
    pub fn grid(side: usize, range: f64) -> Self {
        assert!(side > 0, "grid side must be positive");
        let step = 1.0 / side as f64;
        let mut positions = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                positions.push(Position::new(
                    (col as f64 + 0.5) * step,
                    (row as f64 + 0.5) * step,
                ));
            }
        }
        // xtask-allow(no_expect): documented fail-fast on an invalid experiment definition
        Self::new(positions, range).expect("invalid parameters for grid")
    }

    /// Build every neighbor slice from the grid: scan the 3×3 cell
    /// block around each node, keep the candidates that pass the exact
    /// distance predicate, and sort ascending by id — byte-identical
    /// to the retired all-pairs scan.
    fn compute_neighbors(positions: &[Position], grid: &GridIndex, range: f64) -> Vec<Vec<NodeId>> {
        let mut neighbors = vec![Vec::new(); positions.len()];
        let mut candidates: Vec<NodeId> = Vec::new();
        for (i, (p, own)) in positions.iter().zip(neighbors.iter_mut()).enumerate() {
            candidates.clear();
            grid.candidates_around(p, &mut candidates);
            for &j in &candidates {
                if j.index() != i && p.distance(&positions[j.index()]) <= range {
                    own.push(j);
                }
            }
            own.sort_unstable();
        }
        neighbors
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the topology holds no nodes (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The radio transmission range.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of a node.
    #[inline]
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// All node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(NodeId::from_index)
    }

    /// Nodes within transmission range of `id` (excluding `id` itself).
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// True when `b` is within transmission range of `a`.
    #[inline]
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].distance(&self.positions[b.index()]) <= self.range
    }

    /// Distance between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance(&self.positions[b.index()])
    }

    /// True when the radio graph is connected (ignoring loss).
    ///
    /// The paper notes that for 100 nodes a range below 0.2 "often
    /// results in parts of the network being disconnected"; experiments
    /// use this check to report or regenerate such deployments.
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1;
        while let Some(cur) = queue.pop_front() {
            for &nb in self.neighbors(cur) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    queue.push_back(nb);
                }
            }
        }
        count == n
    }

    /// Nodes whose position falls in `[x0,x1] x [y0,y1]`.
    pub fn nodes_in_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.position(id).in_rect(x0, y0, x1, y1))
            .collect()
    }

    /// Move a node to a new position, incrementally updating the
    /// affected neighbor lists through the grid index — O(d) for mean
    /// degree d, not O(N): only the 3×3 cell blocks around the old and
    /// new positions are visited.
    ///
    /// Every node whose list mentions `id` is within range of the old
    /// position (hence inside the old 3×3 block), and every node that
    /// must gain `id` is within range of the new position (hence inside
    /// the new block), so the union of the two scans covers every list
    /// that can change. Per the ordering contract, `id`'s own slice is
    /// rebuilt sorted while other slices get `id` appended on entry and
    /// spliced out on exit.
    // xtask-contract(zero_alloc)
    pub fn set_position(&mut self, id: NodeId, pos: Position) {
        let old = self.positions[id.index()];
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.grid.candidates_around(&old, &mut candidates);
        if self.grid.cell_of(&pos) != self.grid.cell_of(&old) {
            self.grid.candidates_around(&pos, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.dedup();
        self.positions[id.index()] = pos;
        self.grid.relocate(id, &old, &pos);
        let mut own = std::mem::take(&mut self.neighbors[id.index()]);
        own.clear();
        for &j in &candidates {
            if j == id {
                continue;
            }
            let in_range = pos.distance(&self.positions[j.index()]) <= self.range;
            if in_range {
                // xtask-allow(contract_zero_alloc): rebuilds id's own list inside capacity recycled via mem::take; steady-state moves grow nothing (bench-gated)
                own.push(j);
            }
            let list = &mut self.neighbors[j.index()];
            let present = list.contains(&id);
            if in_range && !present {
                // xtask-allow(contract_zero_alloc): appends into the neighbor list's amortized capacity; the incremental-move bench gate holds this at zero steady-state allocs
                list.push(id);
            } else if !in_range && present {
                list.retain(|&n| n != id);
            }
        }
        self.neighbors[id.index()] = own;
        self.scratch = candidates;
    }

    /// Average neighborhood size — a density diagnostic used when
    /// interpreting range sweeps (Figure 9).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rect_membership_is_inclusive() {
        let p = Position::new(0.5, 0.5);
        assert!(p.in_rect(0.5, 0.5, 1.0, 1.0));
        assert!(p.in_rect(0.0, 0.0, 0.5, 0.5));
        assert!(!p.in_rect(0.6, 0.0, 1.0, 1.0));
    }

    #[test]
    fn rejects_non_positive_range() {
        let err = Topology::new(vec![Position::new(0.0, 0.0)], 0.0).unwrap_err();
        assert!(matches!(
            err,
            NetsimError::InvalidParameter { name: "range", .. }
        ));
        let err = Topology::new(vec![Position::new(0.0, 0.0)], -1.0).unwrap_err();
        assert!(matches!(
            err,
            NetsimError::InvalidParameter { name: "range", .. }
        ));
    }

    #[test]
    fn rejects_empty_deployment() {
        let err = Topology::new(vec![], 1.0).unwrap_err();
        assert!(matches!(
            err,
            NetsimError::InvalidParameter {
                name: "positions",
                ..
            }
        ));
    }

    #[test]
    fn full_range_makes_everyone_neighbors() {
        // sqrt(2) covers the whole unit square, as in the paper's
        // first experiment.
        let topo =
            Topology::random_uniform(100, std::f64::consts::SQRT_2, 1).expect("valid deployment");
        for id in topo.node_ids() {
            assert_eq!(topo.neighbors(id).len(), 99);
        }
        assert!(topo.is_connected());
        assert!((topo.mean_degree() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn placement_is_deterministic_in_seed() {
        let a = Topology::random_uniform(50, 0.3, 9).expect("valid deployment");
        let b = Topology::random_uniform(50, 0.3, 9).expect("valid deployment");
        for id in a.node_ids() {
            assert_eq!(a.position(id), b.position(id));
        }
        let c = Topology::random_uniform(50, 0.3, 10).expect("valid deployment");
        let same = a.node_ids().all(|id| a.position(id) == c.position(id));
        assert!(!same, "different seeds should give different placements");
    }

    #[test]
    fn placement_stays_in_unit_square() {
        let topo = Topology::random_uniform(200, 0.3, 3).expect("valid deployment");
        for id in topo.node_ids() {
            let p = topo.position(id);
            assert!((0.0..1.0).contains(&p.x));
            assert!((0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn grid_neighbors_are_orthogonal_at_tight_range() {
        // 3x3 grid with spacing 1/3; range 0.34 reaches only the
        // orthogonal neighbors.
        let topo = Topology::grid(3, 0.34);
        // center node index 4 has 4 neighbors
        assert_eq!(topo.neighbors(NodeId(4)).len(), 4);
        // corner node index 0 has 2 neighbors
        assert_eq!(topo.neighbors(NodeId(0)).len(), 2);
    }

    #[test]
    fn in_range_is_symmetric_and_irreflexive() {
        let topo = Topology::random_uniform(40, 0.4, 5).expect("valid deployment");
        for a in topo.node_ids() {
            assert!(!topo.in_range(a, a));
            for b in topo.node_ids() {
                assert_eq!(topo.in_range(a, b), topo.in_range(b, a));
            }
        }
    }

    #[test]
    fn disconnection_detected_at_tiny_range() {
        // With a tiny range and a few nodes, the graph is almost
        // surely disconnected.
        let topo = Topology::random_uniform(10, 0.01, 2).expect("valid deployment");
        assert!(!topo.is_connected());
    }

    #[test]
    fn moving_a_node_updates_neighborhoods_symmetrically() {
        let mut topo = Topology::grid(3, 0.34);
        // Move the corner node onto the center: it should now neighbor
        // exactly the center's orthogonal neighbors plus sit on top of
        // the center node itself.
        let center = topo.position(NodeId(4));
        topo.set_position(NodeId(0), center);
        assert!(topo.in_range(NodeId(0), NodeId(4)));
        assert!(topo.neighbors(NodeId(4)).contains(&NodeId(0)));
        assert!(topo.neighbors(NodeId(0)).contains(&NodeId(4)));
        // Symmetry for every pair after the move.
        for a in topo.node_ids() {
            for b in topo.node_ids() {
                assert_eq!(topo.in_range(a, b), topo.in_range(b, a));
                assert_eq!(
                    topo.neighbors(a).contains(&b),
                    topo.in_range(a, b),
                    "neighbor list inconsistent for {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn moving_out_of_range_disconnects() {
        let mut topo = Topology::grid(2, 0.6);
        assert!(!topo.neighbors(NodeId(0)).is_empty());
        topo.set_position(NodeId(0), Position::new(10.0, 10.0));
        assert!(topo.neighbors(NodeId(0)).is_empty());
        for other in 1..4u32 {
            assert!(!topo.neighbors(NodeId(other)).contains(&NodeId(0)));
        }
    }

    #[test]
    fn nodes_in_rect_filters_by_position() {
        let topo = Topology::grid(4, 0.5);
        let left_half = topo.nodes_in_rect(0.0, 0.0, 0.5, 1.0);
        assert_eq!(left_half.len(), 8);
        let all = topo.nodes_in_rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(all.len(), 16);
    }
}
