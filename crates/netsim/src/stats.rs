//! Message and energy accounting.
//!
//! Table 2 of the paper bounds the election protocol at five messages
//! per node (six during maintenance); Figures 14/15 report the average
//! number of messages per node per snapshot update. These statistics
//! are gathered here, broken down by protocol [`Phase`] exactly the
//! way Table 2 does.
//!
//! Phases were once free-form `&str` labels backed by a
//! `BTreeMap<String, Vec<u64>>`; they are now the interned
//! [`Phase`] enum from `snapshot-telemetry`, so every counter is a
//! fixed-size array lookup — no allocation or tree walk on the send
//! hot path — and losses are attributed to a phase symmetrically with
//! sends.

use crate::node::NodeId;
use snapshot_telemetry::Phase;

/// Per-node, per-phase message counters.
///
/// Construct with [`NetStats::new`] — the node count fixes the size of
/// every counter vector. (There is deliberately no `Default`: a
/// zero-node instance would panic on the first record.)
#[derive(Debug, Clone)]
pub struct NetStats {
    n: usize,
    sent: Vec<u64>,
    received: Vec<u64>,
    lost: Vec<u64>,
    /// per-node × per-phase sent counts
    phase_sent: Vec<[u64; Phase::COUNT]>,
    /// per-node × per-phase lost-delivery counts (indexed by the
    /// *receiver* that missed the message, like `lost`)
    phase_lost: Vec<[u64; Phase::COUNT]>,
    /// delivery ticks recorded via [`NetStats::record_tick`]
    ticks: u64,
    /// total fresh wakes across those ticks (active-set churn); the
    /// quotient is a machine-independent per-tick activity metric
    woken: u64,
}

impl NetStats {
    /// Counters for an `n`-node network, all zero.
    pub fn new(n: usize) -> Self {
        NetStats {
            n,
            sent: vec![0; n],
            received: vec![0; n],
            lost: vec![0; n],
            phase_sent: vec![[0; Phase::COUNT]; n],
            phase_lost: vec![[0; Phase::COUNT]; n],
            ticks: 0,
            woken: 0,
        }
    }

    /// Record one delivery tick that produced `woken` fresh wakes
    /// (nodes added to the active set by a message, timer, fault or
    /// move). Deterministic — a pure function of the simulation, not
    /// of wall-clock — so per-tick activity can appear in experiment
    /// artifacts without breaking byte-identity across machines.
    pub fn record_tick(&mut self, woken: u64) {
        self.ticks += 1;
        self.woken += woken;
    }

    /// Delivery ticks recorded since construction or [`NetStats::reset`].
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total fresh wakes across all recorded ticks.
    pub fn woken_total(&self) -> u64 {
        self.woken
    }

    /// Mean fresh wakes per delivery tick — the deterministic
    /// active-set size proxy reported by the `scale` experiment
    /// (quiescent phases sit near 0, active phases near the flood
    /// fan-out).
    pub fn mean_woken_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.woken as f64 / self.ticks as f64
        }
    }

    /// Record one transmission by `src` in `phase`.
    pub fn record_send(&mut self, src: NodeId, phase: Phase) {
        self.sent[src.index()] += 1;
        self.phase_sent[src.index()][phase.index()] += 1;
    }

    /// Record a successful delivery at `dst`.
    pub fn record_receive(&mut self, dst: NodeId) {
        self.received[dst.index()] += 1;
    }

    /// Record a delivery attempt at `dst` destroyed by link loss,
    /// attributed to the phase of the lost message.
    pub fn record_loss(&mut self, dst: NodeId, phase: Phase) {
        self.lost[dst.index()] += 1;
        self.phase_lost[dst.index()][phase.index()] += 1;
    }

    /// Messages sent by one node, all phases.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent[id.index()]
    }

    /// Messages received by one node.
    pub fn received_by(&self, id: NodeId) -> u64 {
        self.received[id.index()]
    }

    /// Total messages sent network-wide.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total successful deliveries network-wide.
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// Total deliveries destroyed by loss.
    pub fn total_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Mean messages sent per node, all phases.
    pub fn mean_sent_per_node(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_sent() as f64 / self.n as f64
        }
    }

    /// Messages sent by one node in one phase.
    pub fn sent_in_phase(&self, id: NodeId, phase: Phase) -> u64 {
        self.phase_sent[id.index()][phase.index()]
    }

    /// Deliveries one node missed to loss in one phase.
    pub fn lost_in_phase(&self, id: NodeId, phase: Phase) -> u64 {
        self.phase_lost[id.index()][phase.index()]
    }

    /// Total messages sent in one phase across all nodes.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phase_sent.iter().map(|row| row[phase.index()]).sum()
    }

    /// Total deliveries destroyed by loss in one phase across all
    /// nodes.
    pub fn phase_lost_total(&self, phase: Phase) -> u64 {
        self.phase_lost.iter().map(|row| row[phase.index()]).sum()
    }

    /// Maximum messages sent by any single node in one phase —
    /// used to verify the paper's per-phase bounds (Table 2).
    pub fn phase_max_per_node(&self, phase: Phase) -> u64 {
        self.phase_sent
            .iter()
            .map(|row| row[phase.index()])
            .max()
            .unwrap_or(0)
    }

    /// Maximum messages sent by any single node across all phases.
    pub fn max_sent_per_node(&self) -> u64 {
        self.sent.iter().copied().max().unwrap_or(0)
    }

    /// All phases with at least one sent or lost message, in charging
    /// order.
    pub fn phases(&self) -> impl Iterator<Item = Phase> + '_ {
        Phase::ALL
            .into_iter()
            .filter(|p| self.phase_total(*p) > 0 || self.phase_lost_total(*p) > 0)
    }

    /// Reset every counter to zero (e.g. between maintenance rounds),
    /// keeping the node count.
    pub fn reset(&mut self) {
        self.sent.iter_mut().for_each(|c| *c = 0);
        self.received.iter_mut().for_each(|c| *c = 0);
        self.lost.iter_mut().for_each(|c| *c = 0);
        self.phase_sent
            .iter_mut()
            .for_each(|row| *row = [0; Phase::COUNT]);
        self.phase_lost
            .iter_mut()
            .for_each(|row| *row = [0; Phase::COUNT]);
        self.ticks = 0;
        self.woken = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_phase() {
        let mut s = NetStats::new(3);
        s.record_send(NodeId(0), Phase::Invitation);
        s.record_send(NodeId(0), Phase::Invitation);
        s.record_send(NodeId(1), Phase::Candidates);
        s.record_receive(NodeId(2));
        s.record_loss(NodeId(2), Phase::Invitation);

        assert_eq!(s.sent_by(NodeId(0)), 2);
        assert_eq!(s.sent_in_phase(NodeId(0), Phase::Invitation), 2);
        assert_eq!(s.sent_in_phase(NodeId(0), Phase::Candidates), 0);
        assert_eq!(s.phase_total(Phase::Invitation), 2);
        assert_eq!(s.phase_max_per_node(Phase::Invitation), 2);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_received(), 1);
        assert_eq!(s.total_lost(), 1);
        assert_eq!(s.received_by(NodeId(2)), 1);
        assert!((s.mean_sent_per_node() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_sent_per_node(), 2);
    }

    #[test]
    fn losses_are_attributed_to_phases_symmetrically() {
        let mut s = NetStats::new(2);
        s.record_loss(NodeId(1), Phase::Heartbeat);
        s.record_loss(NodeId(1), Phase::Heartbeat);
        s.record_loss(NodeId(0), Phase::Query);

        assert_eq!(s.lost_in_phase(NodeId(1), Phase::Heartbeat), 2);
        assert_eq!(s.lost_in_phase(NodeId(1), Phase::Query), 0);
        assert_eq!(s.phase_lost_total(Phase::Heartbeat), 2);
        assert_eq!(s.phase_lost_total(Phase::Query), 1);
        assert_eq!(s.total_lost(), 3);
        // Loss-only phases still show up in the phase listing.
        let phases: Vec<_> = s.phases().collect();
        assert_eq!(phases, vec![Phase::Heartbeat, Phase::Query]);
    }

    #[test]
    fn untouched_phase_reads_as_zero() {
        let s = NetStats::new(2);
        assert_eq!(s.phase_total(Phase::Flood), 0);
        assert_eq!(s.sent_in_phase(NodeId(0), Phase::Flood), 0);
        assert_eq!(s.phase_max_per_node(Phase::Flood), 0);
        assert_eq!(s.phase_lost_total(Phase::Flood), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = NetStats::new(2);
        s.record_send(NodeId(0), Phase::Test);
        s.record_receive(NodeId(1));
        s.record_loss(NodeId(1), Phase::Test);
        s.record_tick(5);
        s.reset();
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.total_received(), 0);
        assert_eq!(s.total_lost(), 0);
        assert_eq!(s.phases().count(), 0);
        assert_eq!(s.ticks(), 0);
        assert_eq!(s.woken_total(), 0);
    }

    #[test]
    fn tick_activity_counters_average_fresh_wakes() {
        let mut s = NetStats::new(4);
        assert_eq!(s.mean_woken_per_tick(), 0.0);
        s.record_tick(4);
        s.record_tick(0);
        s.record_tick(2);
        assert_eq!(s.ticks(), 3);
        assert_eq!(s.woken_total(), 6);
        assert!((s.mean_woken_per_tick() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phases_listed_in_charging_order() {
        let mut s = NetStats::new(1);
        s.record_send(NodeId(0), Phase::Query);
        s.record_send(NodeId(0), Phase::Data);
        let phases: Vec<_> = s.phases().collect();
        assert_eq!(phases, vec![Phase::Data, Phase::Query]);
    }
}
