//! Message and energy accounting.
//!
//! Table 2 of the paper bounds the election protocol at five messages
//! per node (six during maintenance); Figures 14/15 report the average
//! number of messages per node per snapshot update. These statistics
//! are gathered here, keyed by a protocol-phase label so experiments
//! can break counts down exactly the way Table 2 does.

use crate::node::NodeId;
use std::collections::BTreeMap;

/// Per-node, per-phase message counters.
///
/// Construct with [`NetStats::new`] — the node count fixes the size of
/// every counter vector. (There is deliberately no `Default`: a
/// zero-node instance would panic on the first record.)
#[derive(Debug, Clone)]
pub struct NetStats {
    n: usize,
    sent: Vec<u64>,
    received: Vec<u64>,
    lost: Vec<u64>,
    /// phase label -> per-node sent counts
    phase_sent: BTreeMap<String, Vec<u64>>,
}

impl NetStats {
    /// Counters for an `n`-node network, all zero.
    pub fn new(n: usize) -> Self {
        NetStats {
            n,
            sent: vec![0; n],
            received: vec![0; n],
            lost: vec![0; n],
            phase_sent: BTreeMap::new(),
        }
    }

    /// Record one transmission by `src` in `phase`.
    pub fn record_send(&mut self, src: NodeId, phase: &str) {
        self.sent[src.index()] += 1;
        self.phase_sent
            .entry(phase.to_owned())
            .or_insert_with(|| vec![0; self.n])[src.index()] += 1;
    }

    /// Record a successful delivery at `dst`.
    pub fn record_receive(&mut self, dst: NodeId) {
        self.received[dst.index()] += 1;
    }

    /// Record a delivery attempt at `dst` destroyed by link loss.
    pub fn record_loss(&mut self, dst: NodeId) {
        self.lost[dst.index()] += 1;
    }

    /// Messages sent by one node, all phases.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent[id.index()]
    }

    /// Messages received by one node.
    pub fn received_by(&self, id: NodeId) -> u64 {
        self.received[id.index()]
    }

    /// Total messages sent network-wide.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total successful deliveries network-wide.
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// Total deliveries destroyed by loss.
    pub fn total_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Mean messages sent per node, all phases.
    pub fn mean_sent_per_node(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_sent() as f64 / self.n as f64
        }
    }

    /// Messages sent by one node in one phase.
    pub fn sent_in_phase(&self, id: NodeId, phase: &str) -> u64 {
        self.phase_sent.get(phase).map_or(0, |v| v[id.index()])
    }

    /// Total messages sent in one phase across all nodes.
    pub fn phase_total(&self, phase: &str) -> u64 {
        self.phase_sent.get(phase).map_or(0, |v| v.iter().sum())
    }

    /// Maximum messages sent by any single node in one phase —
    /// used to verify the paper's per-phase bounds (Table 2).
    pub fn phase_max_per_node(&self, phase: &str) -> u64 {
        self.phase_sent
            .get(phase)
            .map_or(0, |v| v.iter().copied().max().unwrap_or(0))
    }

    /// Maximum messages sent by any single node across all phases.
    pub fn max_sent_per_node(&self) -> u64 {
        self.sent.iter().copied().max().unwrap_or(0)
    }

    /// All phase labels seen so far.
    pub fn phases(&self) -> impl Iterator<Item = &str> {
        self.phase_sent.keys().map(String::as_str)
    }

    /// Reset every counter to zero (e.g. between maintenance rounds),
    /// keeping the node count.
    pub fn reset(&mut self) {
        self.sent.iter_mut().for_each(|c| *c = 0);
        self.received.iter_mut().for_each(|c| *c = 0);
        self.lost.iter_mut().for_each(|c| *c = 0);
        self.phase_sent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_phase() {
        let mut s = NetStats::new(3);
        s.record_send(NodeId(0), "invitation");
        s.record_send(NodeId(0), "invitation");
        s.record_send(NodeId(1), "candidate");
        s.record_receive(NodeId(2));
        s.record_loss(NodeId(2));

        assert_eq!(s.sent_by(NodeId(0)), 2);
        assert_eq!(s.sent_in_phase(NodeId(0), "invitation"), 2);
        assert_eq!(s.sent_in_phase(NodeId(0), "candidate"), 0);
        assert_eq!(s.phase_total("invitation"), 2);
        assert_eq!(s.phase_max_per_node("invitation"), 2);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_received(), 1);
        assert_eq!(s.total_lost(), 1);
        assert_eq!(s.received_by(NodeId(2)), 1);
        assert!((s.mean_sent_per_node() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_sent_per_node(), 2);
    }

    #[test]
    fn unknown_phase_reads_as_zero() {
        let s = NetStats::new(2);
        assert_eq!(s.phase_total("nope"), 0);
        assert_eq!(s.sent_in_phase(NodeId(0), "nope"), 0);
        assert_eq!(s.phase_max_per_node("nope"), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = NetStats::new(2);
        s.record_send(NodeId(0), "x");
        s.record_receive(NodeId(1));
        s.reset();
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.total_received(), 0);
        assert_eq!(s.phases().count(), 0);
    }

    #[test]
    fn phases_listed_in_sorted_order() {
        let mut s = NetStats::new(1);
        s.record_send(NodeId(0), "b");
        s.record_send(NodeId(0), "a");
        let phases: Vec<_> = s.phases().collect();
        assert_eq!(phases, vec!["a", "b"]);
    }
}
