//! Deterministic event scheduler and wake-list.
//!
//! The paper's central premise is that snapshot maintenance lets most
//! nodes stay idle most of the time — so the simulator must not pay
//! O(N) per tick just to discover that nothing happened. This module
//! provides the two pieces that make quiescent ticks cost O(active):
//!
//! * An **event queue** keyed `(tick, priority, node, seq)` in
//!   [`BTreeMap`] order. Iteration order — and therefore every trace,
//!   CSV and stdout byte derived from it — is a pure function of what
//!   was scheduled, never of hash state or insertion timing. Timers
//!   registered through [`Scheduler::schedule`] fire at the tick
//!   boundary inside `Network::deliver`, waking their node.
//! * A **wake-list** (the active set): a sparse set over node ids,
//!   maintained by every event source — message delivery, timer
//!   expiry, fault application, and mobility. Marking, unmarking and
//!   membership tests are O(1) and allocation-free (the backing
//!   vectors are sized once at construction). Core-layer inbox drains
//!   read the woken set in **ascending node-id order** (sorted in
//!   place on read), which is exactly the order the old all-nodes scan
//!   visited them — the byte-identity argument in DESIGN.md §16.
//!
//! The wake-list invariant: **every node with a non-empty inbox is
//! woken.** `Network::deliver` marks each receiver as it pushes into
//! the inbox; `take_inbox`/`take_inbox_into`/`clear_inbox` unmark on
//! drain. A woken node with an *empty* inbox (timer, fault or mobility
//! wake) is harmless to drain — an empty drain consumes no RNG and
//! emits no telemetry, so visiting only woken nodes is observably
//! identical to visiting all of them.

use crate::node::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};

/// Why a node was woken. Every scheduler event source registers its
/// wake under one of these reasons; the `wake_source_coverage` xtask
/// lint holds the registration sites to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WakeReason {
    /// A message was delivered into the node's inbox.
    Message,
    /// A timer registered with [`Scheduler::schedule`] came due.
    Timer,
    /// Fault application (crash/outage/blackout/drain) touched the
    /// node, or a scheduled recovery revived it.
    Fault,
    /// Mobility moved the node.
    Mobility,
}

impl WakeReason {
    /// Every reason, in canonical order.
    pub const ALL: [WakeReason; 4] = [
        WakeReason::Message,
        WakeReason::Timer,
        WakeReason::Fault,
        WakeReason::Mobility,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            WakeReason::Message => 0,
            WakeReason::Timer => 1,
            WakeReason::Fault => 2,
            WakeReason::Mobility => 3,
        }
    }
}

/// Total order for queued events: tick first, then priority (lower
/// fires first), then node id, then registration sequence — so two
/// events scheduled for the same `(tick, priority, node)` fire in
/// registration order, and the whole queue drains deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulation tick the event comes due.
    pub tick: u64,
    /// Same-tick ordering class (0 fires first).
    pub priority: u8,
    /// The node the event wakes.
    pub node: u32,
    /// Registration sequence number (unique per scheduler).
    pub seq: u64,
}

/// How core-layer consumers pick their per-tick drain candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainMode {
    /// Only nodes on the wake-list, ascending (the O(active) path).
    #[default]
    WakeList,
    /// Every node, ascending — the retained pre-refactor reference
    /// path. The equivalence suite asserts both modes produce
    /// byte-identical artifacts.
    AllScan,
}

/// Process-wide default for newly constructed schedulers: 0 =
/// [`DrainMode::WakeList`], 1 = [`DrainMode::AllScan`]. The
/// `experiments --drain-mode all-scan` flag sets it once at startup so
/// the differential suite can run entire experiment pipelines on the
/// reference path without threading a parameter through every setup.
static DEFAULT_DRAIN_MODE: AtomicU8 = AtomicU8::new(0);

/// Set the drain mode every subsequently built [`Scheduler`] (and so
/// every [`Network`](crate::sim::Network)) starts in. Intended for
/// process startup; existing schedulers are unaffected.
pub fn set_default_drain_mode(mode: DrainMode) {
    let v = match mode {
        DrainMode::WakeList => 0,
        DrainMode::AllScan => 1,
    };
    DEFAULT_DRAIN_MODE.store(v, Ordering::Relaxed);
}

/// The current process-wide default drain mode.
pub fn default_drain_mode() -> DrainMode {
    match DEFAULT_DRAIN_MODE.load(Ordering::Relaxed) {
        0 => DrainMode::WakeList,
        _ => DrainMode::AllScan,
    }
}

/// The deterministic event queue plus the wake-list sparse set.
///
/// Owned by [`Network`](crate::sim::Network); one per simulation.
/// All hot-path operations (`wake`, `unwake`, `is_woken`) are O(1)
/// and touch no allocator: the sparse set's backing vectors are sized
/// once for `n` nodes at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduler {
    /// Pending timer events in deterministic `(tick, priority, node,
    /// seq)` order.
    queue: BTreeMap<EventKey, WakeReason>,
    seq: u64,
    /// `pos[i]` = index of node `i` in `list[..wlen]`, or `NOT_WOKEN`.
    pos: Vec<u32>,
    /// Dense storage of woken node ids; only `list[..wlen]` is live.
    list: Vec<u32>,
    wlen: usize,
    drain_mode: DrainMode,
    /// Lifetime count of distinct wake insertions, by reason.
    wakes_by: [u64; 4],
}

const NOT_WOKEN: u32 = u32::MAX;

impl Scheduler {
    /// A scheduler for an `n`-node network, nothing scheduled, nobody
    /// woken.
    pub fn new(n: usize) -> Self {
        Scheduler {
            queue: BTreeMap::new(),
            seq: 0,
            pos: vec![NOT_WOKEN; n],
            list: vec![0; n],
            wlen: 0,
            drain_mode: default_drain_mode(),
            wakes_by: [0; 4],
        }
    }

    /// Number of nodes the wake-list covers.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True for a zero-node scheduler (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The drain-candidate policy in force.
    pub fn drain_mode(&self) -> DrainMode {
        self.drain_mode
    }

    /// Switch the drain-candidate policy (the equivalence suite runs
    /// both and diffs the artifacts).
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        self.drain_mode = mode;
    }

    /// Register a timer: `node` is woken (reason [`WakeReason::Timer`])
    /// at the first `deliver` whose tick is ≥ `tick`. `priority`
    /// orders same-tick events (0 first).
    pub fn schedule(&mut self, tick: u64, priority: u8, node: NodeId) {
        self.seq += 1;
        self.queue.insert(
            EventKey {
                tick,
                priority,
                node: node.0,
                seq: self.seq,
            },
            WakeReason::Timer,
        );
    }

    /// Number of pending (unfired) timer events.
    pub fn pending_timers(&self) -> usize {
        self.queue.len()
    }

    /// True when at least one queued event is due at or before `tick`.
    /// O(log q); the per-tick fast path that keeps timer-free runs
    /// from ever touching the queue.
    // xtask-contract(zero_alloc)
    #[inline]
    pub fn has_due(&self, tick: u64) -> bool {
        self.queue
            .first_key_value()
            .is_some_and(|(k, _)| k.tick <= tick)
    }

    /// Pop every event due at or before `tick`, in key order, waking
    /// each event's node. Returns how many events fired.
    pub fn fire_due(&mut self, tick: u64) -> usize {
        let mut fired = 0;
        while let Some((key, _)) = self.queue.first_key_value() {
            if key.tick > tick {
                break;
            }
            let node = key.node;
            self.queue.pop_first();
            // The queue's only producer is `schedule`, so every popped
            // event is a timer expiry.
            self.wake(NodeId(node), WakeReason::Timer);
            fired += 1;
        }
        fired
    }

    /// Mark `node` woken. Idempotent; O(1); allocation-free (the
    /// backing vectors were sized at construction). Returns `true` if
    /// the node was newly woken.
    // xtask-contract(zero_alloc)
    #[inline]
    pub fn wake(&mut self, node: NodeId, reason: WakeReason) -> bool {
        let i = node.index();
        if self.pos[i] != NOT_WOKEN {
            return false;
        }
        self.pos[i] = self.wlen as u32;
        self.list[self.wlen] = node.0;
        self.wlen += 1;
        self.wakes_by[reason.index()] += 1;
        true
    }

    /// Unmark `node` (called on every inbox drain). Idempotent; O(1).
    // xtask-contract(zero_alloc)
    #[inline]
    pub fn unwake(&mut self, node: NodeId) {
        let i = node.index();
        let p = self.pos[i];
        if p == NOT_WOKEN {
            return;
        }
        // Swap-remove from the dense list; fix the moved entry's slot.
        self.wlen -= 1;
        let moved = self.list[self.wlen];
        self.list[p as usize] = moved;
        self.pos[moved as usize] = p;
        self.pos[i] = NOT_WOKEN;
    }

    /// True when `node` is on the wake-list.
    #[inline]
    pub fn is_woken(&self, node: NodeId) -> bool {
        self.pos[node.index()] != NOT_WOKEN
    }

    /// Number of currently woken nodes.
    #[inline]
    pub fn woken_len(&self) -> usize {
        self.wlen
    }

    /// Lifetime count of distinct wake insertions (all reasons).
    pub fn total_wakes(&self) -> u64 {
        self.wakes_by.iter().sum()
    }

    /// Lifetime count of distinct wake insertions for one reason.
    pub fn wakes_by(&self, reason: WakeReason) -> u64 {
        self.wakes_by[reason.index()]
    }

    /// Fill `buf` (cleared first) with this tick's drain candidates in
    /// ascending node-id order: the woken set under
    /// [`DrainMode::WakeList`], every node under [`DrainMode::AllScan`].
    /// Sorts the wake-list in place — `sort_unstable` on a `u32` slice
    /// allocates nothing — so the candidate order matches the old
    /// all-nodes ascending scan exactly.
    // xtask-contract(zero_alloc)
    pub fn drain_candidates_into(&mut self, buf: &mut Vec<NodeId>) {
        buf.clear();
        match self.drain_mode {
            DrainMode::WakeList => {
                let live = &mut self.list[..self.wlen];
                live.sort_unstable();
                // Re-point the sparse slots at the sorted positions so
                // subsequent unwakes stay O(1).
                for (p, &id) in live.iter().enumerate() {
                    self.pos[id as usize] = p as u32;
                }
                // xtask-allow(contract_zero_alloc): extends into a caller-recycled scratch buffer; steady-state growth is zero (bench-gated by deliver_quiescent_*)
                buf.extend(live.iter().map(|&id| NodeId(id)));
            }
            DrainMode::AllScan => {
                // xtask-allow(contract_zero_alloc): extends into a caller-recycled scratch buffer; steady-state growth is zero (bench-gated by deliver_quiescent_*)
                buf.extend((0..self.pos.len()).map(NodeId::from_index));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_unwake_is_a_sparse_set() {
        let mut s = Scheduler::new(8);
        assert_eq!(s.woken_len(), 0);
        assert!(s.wake(NodeId(3), WakeReason::Message));
        assert!(!s.wake(NodeId(3), WakeReason::Message), "idempotent");
        assert!(s.wake(NodeId(1), WakeReason::Fault));
        assert!(s.wake(NodeId(7), WakeReason::Mobility));
        assert!(s.is_woken(NodeId(3)));
        assert!(!s.is_woken(NodeId(0)));
        assert_eq!(s.woken_len(), 3);
        s.unwake(NodeId(3));
        s.unwake(NodeId(3)); // idempotent
        assert!(!s.is_woken(NodeId(3)));
        assert_eq!(s.woken_len(), 2);
        assert_eq!(s.total_wakes(), 3, "re-wakes of a woken node do not count");
        assert_eq!(s.wakes_by(WakeReason::Message), 1);
        assert_eq!(s.wakes_by(WakeReason::Fault), 1);
    }

    #[test]
    fn drain_candidates_are_sorted_ascending() {
        let mut s = Scheduler::new(10);
        for id in [9u32, 2, 5, 0, 7] {
            s.wake(NodeId(id), WakeReason::Message);
        }
        let mut buf = Vec::new();
        s.drain_candidates_into(&mut buf);
        let got: Vec<u32> = buf.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 2, 5, 7, 9]);
        // Unwakes after the in-place sort still work (slots re-pointed).
        s.unwake(NodeId(5));
        s.drain_candidates_into(&mut buf);
        let got: Vec<u32> = buf.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 2, 7, 9]);
    }

    #[test]
    fn all_scan_mode_yields_every_node() {
        let mut s = Scheduler::new(4);
        s.set_drain_mode(DrainMode::AllScan);
        s.wake(NodeId(2), WakeReason::Message);
        let mut buf = vec![NodeId(99)]; // cleared first
        s.drain_candidates_into(&mut buf);
        let got: Vec<u32> = buf.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timers_fire_in_key_order_exactly_once() {
        let mut s = Scheduler::new(8);
        s.schedule(5, 1, NodeId(4));
        s.schedule(5, 0, NodeId(6));
        s.schedule(3, 0, NodeId(1));
        s.schedule(9, 0, NodeId(2));
        assert_eq!(s.pending_timers(), 4);
        assert!(!s.has_due(2));
        assert!(s.has_due(3));
        assert_eq!(s.fire_due(5), 3, "ticks 3 and 5 fire, tick 9 waits");
        let mut buf = Vec::new();
        s.drain_candidates_into(&mut buf);
        let got: Vec<u32> = buf.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 4, 6]);
        assert_eq!(s.fire_due(5), 0, "events fire once");
        assert_eq!(s.pending_timers(), 1);
        assert_eq!(s.wakes_by(WakeReason::Timer), 3);
    }

    #[test]
    fn event_key_order_is_tick_priority_node_seq() {
        let a = EventKey {
            tick: 1,
            priority: 0,
            node: 9,
            seq: 4,
        };
        let b = EventKey {
            tick: 1,
            priority: 1,
            node: 0,
            seq: 1,
        };
        let c = EventKey {
            tick: 2,
            priority: 0,
            node: 0,
            seq: 0,
        };
        let d = EventKey {
            tick: 1,
            priority: 0,
            node: 9,
            seq: 7,
        };
        assert!(a < b && b < c && a < d && d < b);
    }

    #[test]
    fn same_node_can_be_scheduled_twice() {
        let mut s = Scheduler::new(2);
        s.schedule(1, 0, NodeId(0));
        s.schedule(1, 0, NodeId(0));
        assert_eq!(s.fire_due(1), 2, "both events fire; the wake is idempotent");
        assert_eq!(s.woken_len(), 1);
        assert_eq!(s.wakes_by(WakeReason::Timer), 1);
    }
}
