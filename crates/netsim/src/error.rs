//! Error type for the simulator.

use crate::node::NodeId;
use std::fmt;

/// Errors surfaced by the network simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum NetsimError {
    /// A node id referenced a node outside the topology.
    UnknownNode(NodeId),
    /// A topology parameter was out of range (e.g. non-positive radio range).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An operation required an alive node but the node was dead.
    NodeDead(NodeId),
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetsimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NetsimError::NodeDead(id) => write!(f, "node {id} is dead"),
        }
    }
}

impl std::error::Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = NetsimError::UnknownNode(NodeId(12));
        assert!(e.to_string().contains("N12"));
        let e = NetsimError::InvalidParameter {
            name: "range",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("range"));
        assert!(e.to_string().contains("positive"));
        let e = NetsimError::NodeDead(NodeId(3));
        assert!(e.to_string().contains("dead"));
    }
}
