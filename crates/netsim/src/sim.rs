//! The round-based network engine.
//!
//! Protocols in the paper are naturally round-structured: every node
//! broadcasts its invitation, then every node broadcasts its candidate
//! list, and so on (Figure 2). [`Network`] therefore exposes a simple
//! contract: nodes enqueue transmissions with [`Network::broadcast`] /
//! [`Network::unicast`]; a call to [`Network::deliver`] moves the round's
//! traffic into per-node inboxes, applying the link model and energy
//! accounting; nodes then drain their inboxes with
//! [`Network::take_inbox`].
//!
//! Physical-layer semantics: every transmission is physically a
//! broadcast. Any *alive* node within transmission range receives it
//! unless the link model drops that particular (sender, receiver) pair.
//! Unicast messages only differ in that the delivery records whether
//! the receiving node was the addressed recipient — higher layers use
//! overheard (snooped) copies to refine their models.

use crate::energy::{Battery, EnergyModel};
use crate::error::NetsimError;
use crate::link::LinkModel;
use crate::message::{Delivery, Destination, Envelope};
use crate::node::{NodeId, NodeState};
use crate::rng::derive_seed;
use crate::rng::DetRng;
use crate::stats::NetStats;
use crate::topology::Topology;

/// The simulated network: topology + link model + energy + statistics.
///
/// Generic over the application payload type `P`.
#[derive(Debug)]
pub struct Network<P: Clone> {
    topology: Topology,
    link: LinkModel,
    energy: EnergyModel,
    seed: u64,
    rng: DetRng,
    batteries: Vec<Battery>,
    states: Vec<NodeState>,
    stats: NetStats,
    outbox: Vec<Envelope<P>>,
    inboxes: Vec<Vec<Delivery<P>>>,
    round: u64,
}

impl<P: Clone> Clone for Network<P> {
    /// Clones replicate the full network state. `DetRng` is
    /// deliberately not `Clone` upstream, so the clone's loss stream is
    /// re-seeded deterministically from the original seed and the
    /// current round: clones are reproducible, but their future loss
    /// pattern differs from the parent's continuation.
    fn clone(&self) -> Self {
        Network {
            topology: self.topology.clone(),
            link: self.link.clone(),
            energy: self.energy,
            seed: self.seed,
            rng: DetRng::seed_from_u64(derive_seed(self.seed, 0x000C_104E ^ self.round)),
            batteries: self.batteries.clone(),
            states: self.states.clone(),
            stats: self.stats.clone(),
            outbox: self.outbox.clone(),
            inboxes: self.inboxes.clone(),
            round: self.round,
        }
    }
}

impl<P: Clone> Network<P> {
    /// Build a network with infinite batteries (the Section 6.1
    /// sensitivity-analysis configuration).
    pub fn new(topology: Topology, link: LinkModel, energy: EnergyModel, seed: u64) -> Self {
        let n = topology.len();
        Network {
            topology,
            link,
            energy,
            seed,
            rng: DetRng::seed_from_u64(derive_seed(seed, 0x11_4E7)),
            batteries: vec![Battery::infinite(); n],
            states: vec![NodeState::Alive; n],
            stats: NetStats::new(n),
            outbox: Vec::new(),
            inboxes: vec![Vec::new(); n],
            round: 0,
        }
    }

    /// Build a network in which every node starts with a finite battery
    /// of `capacity` transmission equivalents (Figure 10 uses 500).
    pub fn with_finite_batteries(
        topology: Topology,
        link: LinkModel,
        energy: EnergyModel,
        capacity: f64,
        seed: u64,
    ) -> Self {
        let mut net = Self::new(topology, link, energy, seed);
        net.batteries = vec![Battery::finite(capacity); net.topology.len()];
        net
    }

    /// The deployment.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True when the network has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.node_ids()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics (for resets between measured windows).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> EnergyModel {
        self.energy
    }

    /// Battery of one node.
    pub fn battery(&self, id: NodeId) -> &Battery {
        &self.batteries[id.index()]
    }

    /// True when the node is alive (not failed, battery not depleted).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.states[id.index()].is_alive() && self.batteries[id.index()].is_alive()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.node_ids().filter(|&id| self.is_alive(id)).count()
    }

    /// Inject a permanent failure at `id` (used by self-healing tests).
    pub fn kill(&mut self, id: NodeId) {
        self.states[id.index()] = NodeState::Dead;
    }

    /// Move a node (mobility): future deliveries use the new
    /// neighborhoods immediately.
    pub fn move_node(&mut self, id: NodeId, pos: crate::topology::Position) {
        self.topology.set_position(id, pos);
    }

    /// Charge `id` for one cache-manager update (the paper's 0.1-tx
    /// processing cost). Returns `false` if the node was already dead.
    pub fn charge_cache_update(&mut self, id: NodeId) -> bool {
        if !self.states[id.index()].is_alive() {
            return false;
        }
        self.batteries[id.index()].draw(self.energy.cache_update_cost)
    }

    /// Charge `id` an arbitrary amount of energy (failure-injection
    /// and ablation experiments).
    pub fn charge(&mut self, id: NodeId, amount: f64) -> bool {
        if !self.states[id.index()].is_alive() {
            return false;
        }
        self.batteries[id.index()].draw(amount)
    }

    /// Enqueue a broadcast from `src`. Silently ignored when `src` is
    /// dead (a dead radio transmits nothing). Charges tx energy.
    pub fn broadcast(&mut self, src: NodeId, payload: P, bytes: u32, phase: &'static str) {
        self.send(src, Destination::Broadcast, payload, bytes, phase);
    }

    /// Enqueue a unicast from `src` to `dst`. Physically still a
    /// broadcast; see the module docs.
    pub fn unicast(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: u32,
        phase: &'static str,
    ) {
        self.send(src, Destination::Unicast(dst), payload, bytes, phase);
    }

    fn send(&mut self, src: NodeId, dst: Destination, payload: P, bytes: u32, phase: &'static str) {
        if !self.is_alive(src) {
            return;
        }
        if !self.batteries[src.index()].draw(self.energy.tx_cost) {
            return;
        }
        self.stats.record_send(src, phase);
        self.outbox.push(Envelope {
            src,
            dst,
            payload,
            bytes,
            phase,
        });
    }

    /// Deliver the round's traffic: for every queued envelope, every
    /// alive node within range of the sender receives an independent
    /// copy subject to the link model. Returns the number of
    /// successful deliveries.
    pub fn deliver(&mut self) -> usize {
        self.round += 1;
        let envelopes = std::mem::take(&mut self.outbox);
        let mut delivered = 0;
        for env in envelopes {
            let range = self.topology.range();
            // Collect receivers first to appease the borrow checker;
            // neighbor lists are precomputed so this is just a copy.
            let receivers: Vec<NodeId> = self.topology.neighbors(env.src).to_vec();
            for dst in receivers {
                if !self.is_alive(dst) {
                    continue;
                }
                let dist_frac = self.topology.distance(env.src, dst) / range;
                if self.link.delivered(&mut self.rng, env.src, dst, dist_frac) {
                    if self.energy.rx_cost > 0.0 {
                        self.batteries[dst.index()].draw(self.energy.rx_cost);
                    }
                    self.stats.record_receive(dst);
                    self.inboxes[dst.index()].push(Delivery {
                        from: env.src,
                        addressed: match env.dst {
                            Destination::Broadcast => true,
                            Destination::Unicast(t) => t == dst,
                        },
                        payload: env.payload.clone(),
                    });
                    delivered += 1;
                } else {
                    self.stats.record_loss(dst);
                }
            }
        }
        delivered
    }

    /// Drain the inbox of `id`.
    pub fn take_inbox(&mut self, id: NodeId) -> Vec<Delivery<P>> {
        std::mem::take(&mut self.inboxes[id.index()])
    }

    /// Number of pending (sent, undelivered) messages.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }

    /// Number of delivery rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Validate that a node id belongs to this network.
    pub fn check_node(&self, id: NodeId) -> Result<(), NetsimError> {
        if id.index() < self.len() {
            Ok(())
        } else {
            Err(NetsimError::UnknownNode(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Position;

    fn line_topology(n: usize, spacing: f64, range: f64) -> Topology {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::new(positions, range).unwrap()
    }

    #[test]
    fn broadcast_reaches_only_in_range_nodes() {
        // 0 -- 1 -- 2 -- 3 spaced 0.3 apart, range 0.35: only adjacent
        // nodes hear each other.
        let topo = line_topology(4, 0.3, 0.35);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.broadcast(NodeId(1), 7, 4, "t");
        net.deliver();
        assert_eq!(net.take_inbox(NodeId(0)).len(), 1);
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        assert!(net.take_inbox(NodeId(3)).is_empty());
    }

    #[test]
    fn unicast_is_physically_overheard() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.unicast(NodeId(0), NodeId(2), 9, 4, "t");
        net.deliver();
        let at1 = net.take_inbox(NodeId(1));
        let at2 = net.take_inbox(NodeId(2));
        assert_eq!(at1.len(), 1);
        assert!(!at1[0].addressed, "node 1 merely snooped the message");
        assert_eq!(at2.len(), 1);
        assert!(at2[0].addressed);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.kill(NodeId(1));
        net.broadcast(NodeId(1), 1, 4, "t"); // ignored
        net.broadcast(NodeId(0), 2, 4, "t");
        net.deliver();
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        assert_eq!(net.stats().total_sent(), 1);
    }

    #[test]
    fn battery_depletion_silences_a_node() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            2.0,
            1,
        );
        // Two sends allowed, the third is dropped.
        net.broadcast(NodeId(0), 1, 4, "t");
        net.deliver();
        net.broadcast(NodeId(0), 2, 4, "t");
        net.deliver();
        assert!(!net.is_alive(NodeId(0)));
        net.broadcast(NodeId(0), 3, 4, "t");
        net.deliver();
        assert_eq!(net.stats().sent_by(NodeId(0)), 2);
    }

    #[test]
    fn cache_update_cost_drains_a_tenth() {
        let topo = line_topology(1, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            1.0,
            1,
        );
        for _ in 0..10 {
            assert!(net.charge_cache_update(NodeId(0)));
        }
        // Ten updates at 0.1 each drain the whole 1.0 battery, modulo
        // floating-point residue smaller than one further update.
        assert!(net.battery(NodeId(0)).remaining() < 1e-9);
        net.charge_cache_update(NodeId(0));
        assert!(!net.is_alive(NodeId(0)));
    }

    #[test]
    fn total_loss_destroys_all_deliveries() {
        let topo = line_topology(5, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(1.0), EnergyModel::default(), 1);
        net.broadcast(NodeId(0), 1, 4, "t");
        let delivered = net.deliver();
        assert_eq!(delivered, 0);
        assert_eq!(net.stats().total_lost(), 4);
    }

    #[test]
    fn loss_rate_is_statistically_respected() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(0.4), EnergyModel::default(), 42);
        for _ in 0..5_000 {
            net.broadcast(NodeId(0), 1, 4, "t");
            net.deliver();
            net.take_inbox(NodeId(1));
        }
        let rate = net.stats().total_received() as f64 / 5_000.0;
        assert!(
            (rate - 0.6).abs() < 0.03,
            "delivery rate {rate}, expected ~0.6"
        );
    }

    #[test]
    fn deliveries_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let topo = line_topology(10, 0.05, 1.0);
            let mut net: Network<u32> =
                Network::new(topo, LinkModel::iid_loss(0.5), EnergyModel::default(), seed);
            let mut log = Vec::new();
            for t in 0..50u32 {
                net.broadcast(NodeId(t % 10), t, 4, "t");
                net.deliver();
                for id in 0..10u32 {
                    for d in net.take_inbox(NodeId(id)) {
                        log.push((t, id, d.from.0, d.payload));
                    }
                }
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn alive_count_tracks_kills() {
        let topo = line_topology(4, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        assert_eq!(net.alive_count(), 4);
        net.kill(NodeId(2));
        assert_eq!(net.alive_count(), 3);
    }

    #[test]
    fn check_node_rejects_out_of_range_ids() {
        let topo = line_topology(2, 0.1, 1.0);
        let net: Network<u8> = Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        assert!(net.check_node(NodeId(1)).is_ok());
        assert!(matches!(
            net.check_node(NodeId(2)),
            Err(NetsimError::UnknownNode(_))
        ));
    }
}
