//! The round-based network engine.
//!
//! Protocols in the paper are naturally round-structured: every node
//! broadcasts its invitation, then every node broadcasts its candidate
//! list, and so on (Figure 2). [`Network`] therefore exposes a simple
//! contract: nodes enqueue transmissions with [`Network::broadcast`] /
//! [`Network::unicast`]; a call to [`Network::deliver`] moves the round's
//! traffic into per-node inboxes, applying the link model and energy
//! accounting; nodes then drain their inboxes with
//! [`Network::take_inbox`].
//!
//! Physical-layer semantics: every transmission is physically a
//! broadcast. Any *alive* node within transmission range receives it
//! unless the link model drops that particular (sender, receiver) pair.
//! Unicast messages only differ in that the delivery records whether
//! the receiving node was the addressed recipient — higher layers use
//! overheard (snooped) copies to refine their models.

use crate::energy::{Battery, EnergyModel};
use crate::error::NetsimError;
use crate::fault::{FaultKind, FaultPlan, FaultSchedule};
use crate::link::LinkModel;
use crate::message::{Delivery, Destination, Envelope};
use crate::node::{NodeId, NodeState};
use crate::rng::derive_seed;
use crate::rng::DetRng;
use crate::scheduler::{DrainMode, Scheduler, WakeReason};
use crate::stats::NetStats;
use crate::topology::Topology;
use snapshot_telemetry::{Event, Phase, Recorder as _, SpanKind, Telemetry};

/// The simulated network: topology + link model + energy + statistics.
///
/// Generic over the application payload type `P`.
#[derive(Debug)]
pub struct Network<P: Clone> {
    topology: Topology,
    link: LinkModel,
    energy: EnergyModel,
    seed: u64,
    rng: DetRng,
    batteries: Vec<Battery>,
    states: Vec<NodeState>,
    stats: NetStats,
    telemetry: Telemetry,
    outbox: Vec<Envelope<P>>,
    inboxes: Vec<Vec<Delivery<P>>>,
    /// Drained-outbox buffer recycled across rounds so [`Network::deliver`]
    /// never re-allocates the envelope queue (DESIGN.md §12).
    scratch: Vec<Envelope<P>>,
    /// Per-node battery drain multiplier (1.0 = nominal), set by
    /// fault injection.
    drain: Vec<f64>,
    /// Compiled fault timeline, applied at each tick boundary.
    faults: Option<FaultSchedule>,
    /// Deterministic event queue + wake-list (DESIGN.md §16): every
    /// event source — message delivery, timers, faults, mobility —
    /// marks the touched node so per-tick consumers visit O(active)
    /// nodes, not O(N).
    sched: Scheduler,
    /// Cached alive-node count, maintained by kill/revive and battery
    /// depletion so [`Network::alive_count`] is O(1).
    alive: usize,
    round: u64,
}

impl<P: Clone> Clone for Network<P> {
    /// Clones replicate the full network state **except** the loss
    /// RNG, which is deliberately re-seeded from `(seed, round)`
    /// rather than copied. `DetRng` itself is `Clone`, so this is a
    /// contract, not a workaround: two clones taken at the same round
    /// share identical futures *with each other* (cloning is how the
    /// parallel experiment runner fans a configured network out to
    /// repetition cells, and every cell must see the same stream), but
    /// a clone's loss pattern diverges from the **parent's own
    /// continuation** — the parent's RNG keeps the position it had
    /// already advanced to, while the clone restarts from the derived
    /// seed.
    ///
    /// ```
    /// use snapshot_netsim::prelude::*;
    ///
    /// let topo = Topology::new(
    ///     vec![Position::new(0.0, 0.0), Position::new(0.1, 0.0)],
    ///     1.0,
    /// )
    /// .unwrap();
    /// let net: Network<u8> =
    ///     Network::new(topo, LinkModel::iid_loss(0.5), EnergyModel::default(), 7);
    ///
    /// let mut a = net.clone();
    /// let mut b = net.clone();
    /// for _ in 0..20 {
    ///     a.broadcast(NodeId(0), 1, 4, Phase::Test);
    ///     a.deliver();
    ///     b.broadcast(NodeId(0), 1, 4, Phase::Test);
    ///     b.deliver();
    /// }
    /// // Sibling clones replay the same loss stream.
    /// assert_eq!(a.stats().total_received(), b.stats().total_received());
    /// ```
    fn clone(&self) -> Self {
        Network {
            topology: self.topology.clone(),
            link: self.link.clone(),
            energy: self.energy,
            seed: self.seed,
            rng: DetRng::seed_from_u64(derive_seed(self.seed, 0x000C_104E ^ self.round)),
            batteries: self.batteries.clone(),
            states: self.states.clone(),
            stats: self.stats.clone(),
            telemetry: self.telemetry.clone(),
            outbox: self.outbox.clone(),
            inboxes: self.inboxes.clone(),
            scratch: Vec::new(),
            drain: self.drain.clone(),
            faults: self.faults.clone(),
            sched: self.sched.clone(),
            alive: self.alive,
            round: self.round,
        }
    }
}

impl<P: Clone> Network<P> {
    /// Build a network with infinite batteries (the Section 6.1
    /// sensitivity-analysis configuration).
    pub fn new(topology: Topology, link: LinkModel, energy: EnergyModel, seed: u64) -> Self {
        let n = topology.len();
        Network {
            topology,
            link,
            energy,
            seed,
            rng: DetRng::seed_from_u64(derive_seed(seed, 0x11_4E7)),
            batteries: vec![Battery::infinite(); n],
            states: vec![NodeState::Alive; n],
            stats: NetStats::new(n),
            telemetry: Telemetry::off(),
            outbox: Vec::new(),
            inboxes: vec![Vec::new(); n],
            scratch: Vec::new(),
            drain: vec![1.0; n],
            faults: None,
            sched: Scheduler::new(n),
            alive: n,
            round: 0,
        }
    }

    /// Build a network in which every node starts with a finite battery
    /// of `capacity` transmission equivalents (Figure 10 uses 500).
    pub fn with_finite_batteries(
        topology: Topology,
        link: LinkModel,
        energy: EnergyModel,
        capacity: f64,
        seed: u64,
    ) -> Self {
        let mut net = Self::new(topology, link, energy, seed);
        net.batteries = vec![Battery::finite(capacity); net.topology.len()];
        // A zero-capacity battery is dead on arrival: refresh the
        // cached alive count against the replaced batteries.
        net.alive = net.batteries.iter().filter(|b| b.is_alive()).count();
        net
    }

    /// The deployment.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True when the network has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.node_ids()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics (for resets between measured windows).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// The telemetry hub (off by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry hub (attach/clear recorders).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Replace the telemetry hub, e.g.
    /// `net.set_telemetry(Telemetry::full(100_000))` to start tracing.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// True when a telemetry sink is attached. Instrumented callers
    /// guard event construction behind this.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Record a protocol event, stamped by the caller with
    /// [`Network::round`] as its tick. No-op when telemetry is off.
    #[inline]
    pub fn emit(&mut self, event: Event) {
        if self.telemetry.enabled() {
            self.telemetry.record(&event);
        }
    }

    /// Open a hierarchical telemetry span of `kind` at the current
    /// round. Returns the span id for [`Network::close_span`], or 0
    /// when telemetry is off (closing 0 is a no-op, so callers never
    /// branch).
    #[inline]
    pub fn open_span(&mut self, kind: SpanKind) -> u64 {
        self.telemetry.open_span(self.round, kind)
    }

    /// Close span `id` at the current round. No-op for id 0.
    #[inline]
    pub fn close_span(&mut self, id: u64) {
        self.telemetry.close_span(self.round, id);
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> EnergyModel {
        self.energy
    }

    /// Battery of one node.
    pub fn battery(&self, id: NodeId) -> &Battery {
        &self.batteries[id.index()]
    }

    /// True when the node is alive (not failed, battery not depleted).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.states[id.index()].is_alive() && self.batteries[id.index()].is_alive()
    }

    /// Number of currently alive nodes. O(1): the count is maintained
    /// incrementally by kill/revive and battery depletion.
    pub fn alive_count(&self) -> usize {
        self.alive
    }

    /// Inject a permanent failure at `id` (used by self-healing tests
    /// and the fault engine). Killing an already-dead node is a no-op:
    /// no state change and no duplicate telemetry event.
    pub fn kill(&mut self, id: NodeId) {
        if self.states[id.index()].is_alive() {
            if self.batteries[id.index()].is_alive() {
                self.alive -= 1;
            }
            self.states[id.index()] = NodeState::Dead;
            self.sched.wake(id, WakeReason::Fault);
            let tick = self.round;
            self.emit(Event::NodeFailed { tick, node: id.0 });
        }
    }

    /// Bring a failed node back (transient-outage recovery). Only a
    /// node that is marked dead but whose battery still holds charge
    /// revives; reviving an alive node — or a battery-depleted corpse —
    /// is a no-op with no telemetry event.
    pub fn revive(&mut self, id: NodeId) {
        if !self.states[id.index()].is_alive() && self.batteries[id.index()].is_alive() {
            self.states[id.index()] = NodeState::Alive;
            self.alive += 1;
            self.sched.wake(id, WakeReason::Fault);
            let tick = self.round;
            self.emit(Event::NodeRecovered { tick, node: id.0 });
        }
    }

    /// Set the battery drain multiplier for one node (or, with `None`,
    /// every node): subsequent energy draws are scaled by `factor`.
    pub fn set_drain_multiplier(&mut self, id: Option<NodeId>, factor: f64) {
        match id {
            Some(id) => self.drain[id.index()] = factor,
            None => self.drain.fill(factor),
        }
    }

    /// The drain multiplier currently applied to `id`'s energy draws.
    pub fn drain_multiplier(&self, id: NodeId) -> f64 {
        self.drain[id.index()]
    }

    /// Replace the link model mid-run (fault injection).
    pub fn set_link_model(&mut self, link: LinkModel) {
        self.link = link;
    }

    /// The link model in force.
    pub fn link_model(&self) -> &LinkModel {
        &self.link
    }

    /// Attach a fault timeline: due events apply at each subsequent
    /// tick boundary inside [`Network::deliver`]. `random` targets
    /// resolve from a dedicated RNG stream derived from the network
    /// seed, so the timeline replays identically on every run.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultSchedule::new(plan, derive_seed(self.seed, 0xFA_017)));
    }

    /// The compiled fault schedule, when one is attached.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Apply every fault event and outage recovery due at the current
    /// round. Recoveries process first (in node-id order), then due
    /// events in schedule order, so a fault and a recovery landing on
    /// the same tick leave the node dead.
    // xtask-contract(alloc_cold): tick-boundary fault application runs only when a fault plan is attached, never in the steady-state delivery loop the bench gate measures
    fn apply_due_faults(&mut self) {
        let Some(mut sched) = self.faults.take() else {
            return;
        };
        let tick = self.round;
        for node in sched.take_due_recoveries(tick) {
            self.revive(NodeId(node));
        }
        for event in sched.take_due(tick) {
            self.apply_fault(&mut sched, tick, event.kind);
        }
        self.faults = Some(sched);
    }

    fn apply_fault(&mut self, sched: &mut FaultSchedule, tick: u64, kind: FaultKind) {
        use snapshot_telemetry::FaultTag;
        match kind {
            FaultKind::Crash { target } => {
                let alive: Vec<NodeId> = self.node_ids().filter(|&id| self.is_alive(id)).collect();
                if let Some(id) = sched.resolve_target(target, &alive) {
                    if id.index() < self.len() && self.is_alive(id) {
                        self.kill(id);
                        sched.cancel_recovery(id.0);
                        self.emit(Event::FaultInjected {
                            tick,
                            fault: FaultTag::Crash,
                            node: id.0,
                        });
                    }
                }
            }
            FaultKind::Outage { target, down_for } => {
                let alive: Vec<NodeId> = self.node_ids().filter(|&id| self.is_alive(id)).collect();
                if let Some(id) = sched.resolve_target(target, &alive) {
                    if id.index() >= self.len() {
                        return;
                    }
                    if self.is_alive(id) {
                        self.kill(id);
                        sched.schedule_recovery(id.0, tick + down_for);
                        self.emit(Event::FaultInjected {
                            tick,
                            fault: FaultTag::Outage,
                            node: id.0,
                        });
                    } else if sched.has_pending_recovery(id.0) {
                        // Overlapping outages extend to the later
                        // recovery; a permanently-dead node stays dead.
                        sched.schedule_recovery(id.0, tick + down_for);
                    }
                }
            }
            FaultKind::Blackout { center, radius } => {
                let in_disc: Vec<NodeId> = self
                    .node_ids()
                    .filter(|&id| self.topology.position(id).distance(&center) <= radius)
                    .collect();
                for id in in_disc {
                    // Blacked-out ground stays dark: a node merely
                    // down from an outage loses its pending recovery
                    // too, even though its own kill is a no-op.
                    sched.cancel_recovery(id.0);
                    if self.is_alive(id) {
                        self.kill(id);
                        self.emit(Event::FaultInjected {
                            tick,
                            fault: FaultTag::Blackout,
                            node: id.0,
                        });
                    }
                }
            }
            FaultKind::Drain { node, factor } => {
                let target = node.map(NodeId);
                if let Some(id) = target {
                    if id.index() >= self.len() {
                        return;
                    }
                }
                self.set_drain_multiplier(target, factor);
                if let Some(id) = target {
                    // A targeted drain changes one node's energy future;
                    // wake it so per-tick consumers re-examine it.
                    self.sched.wake(id, WakeReason::Fault);
                }
                self.emit(Event::FaultInjected {
                    tick,
                    fault: FaultTag::Drain,
                    node: node.unwrap_or(u32::MAX),
                });
            }
            FaultKind::LinkIid { p_loss } => {
                self.set_link_model(LinkModel::iid_loss(p_loss));
                self.emit(Event::FaultInjected {
                    tick,
                    fault: FaultTag::LinkChange,
                    node: u32::MAX,
                });
            }
            FaultKind::LinkBurst { params } => {
                self.set_link_model(LinkModel::gilbert_elliott(self.len(), params));
                self.emit(Event::FaultInjected {
                    tick,
                    fault: FaultTag::LinkChange,
                    node: u32::MAX,
                });
            }
        }
    }

    /// Move a node (mobility): future deliveries use the new
    /// neighborhoods immediately. The move wakes the node so per-tick
    /// consumers re-examine it.
    // xtask-contract(zero_alloc)
    pub fn move_node(&mut self, id: NodeId, pos: crate::topology::Position) {
        self.topology.set_position(id, pos);
        self.sched.wake(id, WakeReason::Mobility);
    }

    // ---- Scheduler & wake-list -------------------------------------------

    /// The event scheduler and wake-list (read-only).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Register a timer: `node` is woken at the first
    /// [`Network::deliver`] whose tick is ≥ `at_tick` (priority orders
    /// same-tick timers, 0 first). Timer expiry is the fourth wake
    /// source next to messages, faults and mobility.
    pub fn schedule_wake(&mut self, at_tick: u64, priority: u8, node: NodeId) {
        self.sched.schedule(at_tick, priority, node);
    }

    /// The drain-candidate policy in force (see [`DrainMode`]).
    pub fn drain_mode(&self) -> DrainMode {
        self.sched.drain_mode()
    }

    /// Switch between the O(active) wake-list drain and the all-nodes
    /// reference scan. Both produce byte-identical artifacts (the
    /// equivalence suite in `crates/bench/tests` gates this).
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        self.sched.set_drain_mode(mode);
    }

    /// Fill `buf` (cleared first) with this tick's drain candidates in
    /// ascending node-id order: the woken nodes under
    /// [`DrainMode::WakeList`], every node under [`DrainMode::AllScan`].
    /// Callers drain each candidate with [`Network::take_inbox_into`]
    /// or [`Network::clear_inbox`], which unmark it.
    // xtask-contract(zero_alloc)
    pub fn drain_candidates_into(&mut self, buf: &mut Vec<NodeId>) {
        self.sched.drain_candidates_into(buf);
    }

    /// Charge `id` for one cache-manager update (the paper's 0.1-tx
    /// processing cost). Returns `false` if the node was already dead.
    pub fn charge_cache_update(&mut self, id: NodeId) -> bool {
        if !self.states[id.index()].is_alive() {
            return false;
        }
        let cost = self.energy.cache_update_cost;
        self.draw_energy(id, cost, Phase::Cache)
    }

    /// Charge `id` an arbitrary amount of energy attributed to `phase`
    /// (failure-injection and ablation experiments).
    pub fn charge(&mut self, id: NodeId, amount: f64, phase: Phase) -> bool {
        if !self.states[id.index()].is_alive() {
            return false;
        }
        self.draw_energy(id, amount, phase)
    }

    /// Draw from `id`'s battery, attributing the energy to `phase` in
    /// the telemetry stream and recording a `NodeFailed` event when
    /// the draw depletes the battery.
    fn draw_energy(&mut self, id: NodeId, amount: f64, phase: Phase) -> bool {
        draw_energy_raw(
            &mut self.batteries,
            &mut self.telemetry,
            &self.drain,
            &self.states,
            &mut self.alive,
            self.round,
            id,
            amount,
            phase,
        )
    }

    /// Enqueue a broadcast from `src`. Silently ignored when `src` is
    /// dead (a dead radio transmits nothing). Charges tx energy.
    pub fn broadcast(&mut self, src: NodeId, payload: P, bytes: u32, phase: Phase) {
        self.send(src, Destination::Broadcast, payload, bytes, phase);
    }

    /// Enqueue a unicast from `src` to `dst`. Physically still a
    /// broadcast; see the module docs.
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, payload: P, bytes: u32, phase: Phase) {
        self.send(src, Destination::Unicast(dst), payload, bytes, phase);
    }

    fn send(&mut self, src: NodeId, dst: Destination, payload: P, bytes: u32, phase: Phase) {
        if !self.is_alive(src) {
            return;
        }
        let tx = self.energy.tx_cost;
        if !self.draw_energy(src, tx, phase) {
            return;
        }
        self.stats.record_send(src, phase);
        if self.telemetry.enabled() {
            let tick = self.round;
            self.telemetry.record(&Event::MsgSent {
                tick,
                node: src.0,
                phase,
                bytes,
            });
        }
        self.outbox.push(Envelope {
            src,
            dst,
            payload,
            bytes,
            phase,
            sent_tick: self.round,
        });
    }

    /// Deliver the round's traffic: for every queued envelope, every
    /// alive node within range of the sender receives an independent
    /// copy subject to the link model. Returns the number of
    /// successful deliveries.
    ///
    /// Allocation contract (DESIGN.md §12): with telemetry off, this
    /// performs **zero per-envelope heap allocations** in steady
    /// state. The envelope queue drains through a recycled scratch
    /// buffer, receivers iterate the precomputed neighbor slice in
    /// place, and an envelope reaching `R` receivers costs `R − 1`
    /// payload clones — the last receiver takes the payload by move.
    // xtask-contract(zero_alloc)
    // xtask-contract(deterministic)
    pub fn deliver(&mut self) -> usize {
        self.round += 1;
        let wakes_before = self.sched.total_wakes();
        // Tick boundary: apply scheduled faults before any of this
        // round's traffic moves, so a node crashed at tick `t` misses
        // round-`t` receptions. `next_due_tick` makes the quiescent
        // skip O(1): a plan with nothing due this round costs one
        // comparison, not a schedule walk — and an actually-due
        // application is behavior-identical to the old unconditional
        // call (a no-due `apply_due_faults` was already a pure no-op).
        if let Some(f) = &self.faults {
            if f.next_due_tick().is_some_and(|t| t <= self.round) {
                self.apply_due_faults();
            }
        }
        // Fire due timers before the round's traffic: a timer set for
        // tick `t` wakes its node in time for the tick-`t` drain. The
        // scheduler span opens only when something is actually due, so
        // timer-free workloads trace byte-identically to before.
        if self.sched.has_due(self.round) {
            let tspan = self.telemetry.open_span(self.round, SpanKind::Scheduler);
            self.sched.fire_due(self.round);
            self.telemetry.close_span(self.round, tspan);
        }
        let span = self.telemetry.open_span(self.round, SpanKind::Deliver);
        // Swap the queued envelopes into the recycled scratch buffer:
        // draining it leaves its capacity for the next round, and the
        // outbox keeps the capacity it grew while enqueueing.
        let mut envelopes = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut envelopes, &mut self.outbox);
        let mut delivered = 0;

        // Split `self` into disjoint field borrows so the neighbor
        // slice can be iterated directly while inboxes, batteries and
        // stats are mutated — no per-envelope receiver copy.
        let Network {
            topology,
            link,
            energy,
            rng,
            batteries,
            states,
            stats,
            telemetry,
            inboxes,
            drain,
            round,
            sched,
            alive,
            ..
        } = self;
        let round = *round;
        let range = topology.range();
        let rx_cost = energy.rx_cost;

        for env in envelopes.drain(..) {
            // The previous successful receiver gets a clone when the
            // next success arrives; the final one takes the payload
            // by move (a lone receiver costs no clone at all).
            let mut last_hit: Option<NodeId> = None;
            for &dst in topology.neighbors(env.src) {
                let di = dst.index();
                if !(states[di].is_alive() && batteries[di].is_alive()) {
                    continue;
                }
                let dist_frac = topology.distance(env.src, dst) / range;
                let (ok, flip) = link.delivered_tracked(rng, env.src, dst, dist_frac);
                if let Some(bad) = flip {
                    if telemetry.enabled() {
                        telemetry.record(&Event::LinkStateFlipped {
                            tick: round,
                            src: env.src.0,
                            dst: dst.0,
                            bad,
                        });
                    }
                }
                if ok {
                    if rx_cost > 0.0 {
                        draw_energy_raw(
                            batteries, telemetry, drain, states, alive, round, dst, rx_cost,
                            env.phase,
                        );
                    }
                    if let Some(reg) = telemetry.registry_mut() {
                        reg.observe_hop_latency(round.saturating_sub(env.sent_tick));
                    }
                    stats.record_receive(dst);
                    sched.wake(dst, WakeReason::Message);
                    if let Some(prev) = last_hit.replace(dst) {
                        // xtask-allow(contract_zero_alloc): inbox push reuses capacity recycled by take_inbox_into/clear_inbox; steady-state growth is zero (bench-gated)
                        inboxes[prev.index()].push(Delivery {
                            from: env.src,
                            addressed: env.dst.is_addressed_to(prev),
                            // xtask-allow(contract_zero_alloc): the documented R−1 clone contract — only multi-receiver envelopes clone, and the last receiver takes the payload by move
                            payload: env.payload.clone(),
                        });
                    }
                    delivered += 1;
                } else {
                    stats.record_loss(dst, env.phase);
                    if telemetry.enabled() {
                        telemetry.record(&Event::MsgDropped {
                            tick: round,
                            src: env.src.0,
                            dst: dst.0,
                            phase: env.phase,
                        });
                    }
                }
            }
            if let Some(last) = last_hit {
                // xtask-allow(contract_zero_alloc): inbox push reuses capacity recycled by take_inbox_into/clear_inbox; steady-state growth is zero (bench-gated)
                inboxes[last.index()].push(Delivery {
                    from: env.src,
                    addressed: env.dst.is_addressed_to(last),
                    payload: env.payload,
                });
            }
        }
        telemetry.close_span(round, span);
        self.scratch = envelopes;
        self.stats
            .record_tick(self.sched.total_wakes() - wakes_before);
        delivered
    }

    /// Drain the inbox of `id`.
    ///
    /// Allocates a fresh vector per call; round-structured protocol
    /// loops should prefer [`Network::take_inbox_into`] (reuses one
    /// buffer across nodes) or [`Network::clear_inbox`] (discard
    /// without giving up capacity).
    pub fn take_inbox(&mut self, id: NodeId) -> Vec<Delivery<P>> {
        self.sched.unwake(id);
        std::mem::take(&mut self.inboxes[id.index()])
    }

    /// Drain the inbox of `id` into `buf` (cleared first), handing
    /// `buf`'s capacity to the inbox in exchange. Repeatedly draining
    /// inboxes through the same buffer circulates capacity between
    /// the buffer and the inboxes instead of `mem::take`-ing fresh
    /// allocations every round.
    // xtask-contract(zero_alloc)
    pub fn take_inbox_into(&mut self, id: NodeId, buf: &mut Vec<Delivery<P>>) {
        self.sched.unwake(id);
        buf.clear();
        std::mem::swap(&mut self.inboxes[id.index()], buf);
    }

    /// Discard the inbox of `id` in place, keeping its capacity for
    /// the next round (for dead or non-participating nodes).
    // xtask-contract(zero_alloc)
    pub fn clear_inbox(&mut self, id: NodeId) {
        self.sched.unwake(id);
        self.inboxes[id.index()].clear();
    }

    /// Number of pending (sent, undelivered) messages.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }

    /// Number of delivery rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Validate that a node id belongs to this network.
    pub fn check_node(&self, id: NodeId) -> Result<(), NetsimError> {
        if id.index() < self.len() {
            Ok(())
        } else {
            Err(NetsimError::UnknownNode(id))
        }
    }
}

/// Field-level body of [`Network::draw_energy`], callable while the
/// rest of the struct is split into disjoint borrows (the delivery
/// loop iterates the topology's neighbor slices in place). `drain`
/// scales the nominal amount by the node's fault-injected battery
/// drain multiplier; the telemetry stream records the scaled draw.
/// A draw that depletes the battery of a state-alive node decrements
/// the cached `alive` count (the O(1) [`Network::alive_count`]).
#[allow(clippy::too_many_arguments)]
fn draw_energy_raw(
    batteries: &mut [Battery],
    telemetry: &mut Telemetry,
    drain: &[f64],
    states: &[NodeState],
    alive: &mut usize,
    round: u64,
    id: NodeId,
    amount: f64,
    phase: Phase,
) -> bool {
    let amount = amount * drain[id.index()];
    let was_alive = batteries[id.index()].is_alive();
    if !batteries[id.index()].draw(amount) {
        return false;
    }
    if was_alive && !batteries[id.index()].is_alive() && states[id.index()].is_alive() {
        *alive -= 1;
    }
    if telemetry.enabled() {
        telemetry.record(&Event::EnergyDraw {
            tick: round,
            node: id.0,
            phase,
            amount,
        });
        if !batteries[id.index()].is_alive() {
            telemetry.record(&Event::NodeFailed {
                tick: round,
                node: id.0,
            });
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Position;

    fn line_topology(n: usize, spacing: f64, range: f64) -> Topology {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::new(positions, range).unwrap()
    }

    #[test]
    fn broadcast_reaches_only_in_range_nodes() {
        // 0 -- 1 -- 2 -- 3 spaced 0.3 apart, range 0.35: only adjacent
        // nodes hear each other.
        let topo = line_topology(4, 0.3, 0.35);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.broadcast(NodeId(1), 7, 4, Phase::Test);
        net.deliver();
        assert_eq!(net.take_inbox(NodeId(0)).len(), 1);
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        assert!(net.take_inbox(NodeId(3)).is_empty());
    }

    #[test]
    fn unicast_is_physically_overheard() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.unicast(NodeId(0), NodeId(2), 9, 4, Phase::Test);
        net.deliver();
        let at1 = net.take_inbox(NodeId(1));
        let at2 = net.take_inbox(NodeId(2));
        assert_eq!(at1.len(), 1);
        assert!(!at1[0].addressed, "node 1 merely snooped the message");
        assert_eq!(at2.len(), 1);
        assert!(at2[0].addressed);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.kill(NodeId(1));
        net.broadcast(NodeId(1), 1, 4, Phase::Test); // ignored
        net.broadcast(NodeId(0), 2, 4, Phase::Test);
        net.deliver();
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        assert_eq!(net.stats().total_sent(), 1);
    }

    #[test]
    fn battery_depletion_silences_a_node() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            2.0,
            1,
        );
        // Two sends allowed, the third is dropped.
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        net.deliver();
        net.broadcast(NodeId(0), 2, 4, Phase::Test);
        net.deliver();
        assert!(!net.is_alive(NodeId(0)));
        net.broadcast(NodeId(0), 3, 4, Phase::Test);
        net.deliver();
        assert_eq!(net.stats().sent_by(NodeId(0)), 2);
    }

    #[test]
    fn cache_update_cost_drains_a_tenth() {
        let topo = line_topology(1, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            1.0,
            1,
        );
        for _ in 0..10 {
            assert!(net.charge_cache_update(NodeId(0)));
        }
        // Ten updates at 0.1 each drain the whole 1.0 battery, modulo
        // floating-point residue smaller than one further update.
        assert!(net.battery(NodeId(0)).remaining() < 1e-9);
        net.charge_cache_update(NodeId(0));
        assert!(!net.is_alive(NodeId(0)));
    }

    #[test]
    fn total_loss_destroys_all_deliveries() {
        let topo = line_topology(5, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(1.0), EnergyModel::default(), 1);
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        let delivered = net.deliver();
        assert_eq!(delivered, 0);
        assert_eq!(net.stats().total_lost(), 4);
    }

    #[test]
    fn loss_rate_is_statistically_respected() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(0.4), EnergyModel::default(), 42);
        for _ in 0..5_000 {
            net.broadcast(NodeId(0), 1, 4, Phase::Test);
            net.deliver();
            net.take_inbox(NodeId(1));
        }
        let rate = net.stats().total_received() as f64 / 5_000.0;
        assert!(
            (rate - 0.6).abs() < 0.03,
            "delivery rate {rate}, expected ~0.6"
        );
    }

    #[test]
    fn deliveries_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let topo = line_topology(10, 0.05, 1.0);
            let mut net: Network<u32> =
                Network::new(topo, LinkModel::iid_loss(0.5), EnergyModel::default(), seed);
            let mut log = Vec::new();
            for t in 0..50u32 {
                net.broadcast(NodeId(t % 10), t, 4, Phase::Test);
                net.deliver();
                for id in 0..10u32 {
                    for d in net.take_inbox(NodeId(id)) {
                        log.push((t, id, d.from.0, d.payload));
                    }
                }
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn broadcast_payload_clones_cost_receivers_minus_one() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CLONES: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug)]
        struct Counted(u8);
        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::SeqCst);
                Counted(self.0)
            }
        }

        // 5 nodes all in range: a broadcast from node 0 reaches 4
        // receivers; the last one must take the payload by move.
        let topo = line_topology(5, 0.1, 1.0);
        let mut net: Network<Counted> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.broadcast(NodeId(0), Counted(9), 4, Phase::Test);
        CLONES.store(0, Ordering::SeqCst);
        let delivered = net.deliver();
        assert_eq!(delivered, 4);
        assert_eq!(
            CLONES.load(Ordering::SeqCst),
            3,
            "4 receivers must cost exactly 3 payload clones"
        );
        for i in 1..5u32 {
            assert_eq!(net.take_inbox(NodeId(i)).len(), 1);
        }
    }

    #[test]
    fn single_receiver_pays_no_clone() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CLONES: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug)]
        struct Counted;
        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::SeqCst);
                Counted
            }
        }

        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<Counted> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.unicast(NodeId(0), NodeId(1), Counted, 4, Phase::Test);
        CLONES.store(0, Ordering::SeqCst);
        assert_eq!(net.deliver(), 1);
        assert_eq!(CLONES.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn take_inbox_into_matches_take_inbox_and_recycles() {
        let run = |into: bool| {
            let topo = line_topology(6, 0.05, 1.0);
            let mut net: Network<u32> =
                Network::new(topo, LinkModel::iid_loss(0.4), EnergyModel::default(), 3);
            let mut log = Vec::new();
            let mut buf = Vec::new();
            for t in 0..30u32 {
                net.broadcast(NodeId(t % 6), t, 4, Phase::Test);
                net.deliver();
                for id in 0..6u32 {
                    if into {
                        net.take_inbox_into(NodeId(id), &mut buf);
                        for d in buf.drain(..) {
                            log.push((t, id, d.from.0, d.addressed, d.payload));
                        }
                    } else {
                        for d in net.take_inbox(NodeId(id)) {
                            log.push((t, id, d.from.0, d.addressed, d.payload));
                        }
                    }
                }
            }
            log
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn clear_inbox_discards_in_place() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        net.deliver();
        net.clear_inbox(NodeId(1));
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
    }

    #[test]
    fn alive_count_tracks_kills() {
        let topo = line_topology(4, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        assert_eq!(net.alive_count(), 4);
        net.kill(NodeId(2));
        assert_eq!(net.alive_count(), 3);
    }

    #[test]
    fn check_node_rejects_out_of_range_ids() {
        let topo = line_topology(2, 0.1, 1.0);
        let net: Network<u8> = Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        assert!(net.check_node(NodeId(1)).is_ok());
        assert!(matches!(
            net.check_node(NodeId(2)),
            Err(NetsimError::UnknownNode(_))
        ));
    }

    #[test]
    fn telemetry_records_sends_drops_and_energy() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(1.0), EnergyModel::default(), 1);
        net.set_telemetry(Telemetry::full(1024));
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        net.deliver();
        net.kill(NodeId(2));

        let events = net.telemetry().ring().expect("ring attached").events();
        let kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "energy",      // tx draw for the broadcast
                "msg_sent",    // the broadcast itself
                "span_open",   // the deliver round's span
                "msg_dropped", // lost at node 1 (total loss)
                "msg_dropped", // lost at node 2
                "span_close",  // deliver span closes
                "node_failed", // the kill
            ]
        );
        let m = net.telemetry().registry().expect("registry attached");
        assert_eq!(m.counter("msg_sent"), 1);
        assert_eq!(m.counter("msg_dropped"), 2);
        assert_eq!(m.counter("node_failed"), 1);
        assert!((m.energy_in(0, Phase::Test) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_seeds_produce_byte_identical_traces() {
        let run = |seed: u64| {
            let topo = line_topology(8, 0.05, 0.2);
            let mut net: Network<u32> =
                Network::new(topo, LinkModel::iid_loss(0.3), EnergyModel::default(), seed);
            net.set_telemetry(Telemetry::with_ring(100_000));
            for t in 0..40u32 {
                net.broadcast(NodeId(t % 8), t, 4, Phase::Data);
                net.deliver();
                for id in 0..8u32 {
                    net.take_inbox(NodeId(id));
                }
            }
            net.telemetry().export_jsonl().expect("ring attached")
        };
        assert_eq!(run(11), run(11), "same seed, byte-identical JSONL");
        assert_ne!(run(11), run(12), "different seed, different trace");
    }

    #[test]
    fn clones_share_reseeded_loss_stream() {
        // The documented Clone contract: sibling clones taken at the
        // same round replay identical loss streams, but each diverges
        // from the parent's own continuation.
        let topo = line_topology(2, 0.1, 1.0);
        let mut parent: Network<u8> =
            Network::new(topo, LinkModel::iid_loss(0.5), EnergyModel::default(), 9);
        for _ in 0..10 {
            parent.broadcast(NodeId(0), 1, 4, Phase::Test);
            parent.deliver();
        }
        let drive = |net: &mut Network<u8>| {
            let before = net.stats().total_received();
            for _ in 0..50 {
                net.broadcast(NodeId(0), 1, 4, Phase::Test);
                net.deliver();
                net.clear_inbox(NodeId(1));
            }
            net.stats().total_received() - before
        };
        let mut a = parent.clone();
        let mut b = parent.clone();
        assert_eq!(drive(&mut a), drive(&mut b), "siblings share the stream");
    }

    #[test]
    fn revive_restores_only_killed_nodes() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.set_telemetry(Telemetry::with_ring(64));
        net.kill(NodeId(1));
        assert!(!net.is_alive(NodeId(1)));
        net.revive(NodeId(1));
        assert!(net.is_alive(NodeId(1)));
        // Reviving an alive node is a no-op with no event.
        net.revive(NodeId(2));
        let events = net.telemetry().ring().expect("ring").events();
        let recoveries = events
            .iter()
            .filter(|e| matches!(e, Event::NodeRecovered { .. }))
            .count();
        assert_eq!(recoveries, 1);
    }

    #[test]
    fn revive_cannot_raise_a_depleted_battery() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            1.0,
            1,
        );
        net.broadcast(NodeId(0), 1, 4, Phase::Test); // drains to zero
        assert!(!net.is_alive(NodeId(0)));
        net.revive(NodeId(0));
        assert!(!net.is_alive(NodeId(0)), "a drained battery stays dead");
    }

    #[test]
    fn drain_multiplier_scales_energy_draws() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            10.0,
            1,
        );
        net.set_drain_multiplier(Some(NodeId(0)), 3.0);
        net.broadcast(NodeId(0), 1, 4, Phase::Test); // 1 tx * 3.0
        assert!((net.battery(NodeId(0)).remaining() - 7.0).abs() < 1e-12);
        assert_eq!(net.drain_multiplier(NodeId(0)), 3.0);
        assert_eq!(net.drain_multiplier(NodeId(1)), 1.0);
    }

    #[test]
    fn fault_plan_crash_applies_at_tick_boundary() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.set_telemetry(Telemetry::with_ring(256));
        net.set_fault_plan(FaultPlan::parse("2 crash 1\n").expect("parses"));
        net.deliver(); // round 1: nothing due
        assert!(net.is_alive(NodeId(1)));
        // Round 2: the crash applies before traffic moves, so node 1
        // misses this round's broadcast.
        net.broadcast(NodeId(0), 7, 4, Phase::Test);
        net.deliver();
        assert!(!net.is_alive(NodeId(1)));
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert_eq!(net.take_inbox(NodeId(2)).len(), 1);
        let events = net.telemetry().ring().expect("ring").events();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::FaultInjected { node: 1, .. })));
    }

    #[test]
    fn fault_plan_outage_recovers_on_schedule() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.set_telemetry(Telemetry::with_ring(256));
        net.set_fault_plan(FaultPlan::parse("1 outage 1 for 3\n").expect("parses"));
        net.deliver(); // round 1: outage applies
        assert!(!net.is_alive(NodeId(1)));
        net.deliver(); // round 2
        net.deliver(); // round 3
        assert!(!net.is_alive(NodeId(1)));
        net.deliver(); // round 4 = 1 + 3: recovery
        assert!(net.is_alive(NodeId(1)));
        let events = net.telemetry().ring().expect("ring").events();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::NodeRecovered { node: 1, tick: 4 })));
        assert!(net.fault_schedule().expect("attached").exhausted());
    }

    #[test]
    fn fault_plan_link_change_swaps_models() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.set_fault_plan(FaultPlan::parse("1 link iid 1.0\n").expect("parses"));
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        net.deliver();
        // The swap happened before this round's traffic moved.
        assert!(net.take_inbox(NodeId(1)).is_empty());
        assert!(matches!(net.link_model(), LinkModel::Iid { .. }));
    }

    #[test]
    fn fault_timeline_is_deterministic_in_seed() {
        let run = |seed: u64| {
            let topo = line_topology(8, 0.05, 1.0);
            let mut net: Network<u32> =
                Network::new(topo, LinkModel::iid_loss(0.2), EnergyModel::default(), seed);
            net.set_telemetry(Telemetry::with_ring(1 << 14));
            net.set_fault_plan(
                FaultPlan::parse(
                    "3 outage random for 5\n6 crash random\n10 link burst 0.1 0.3 0.0 0.9\n",
                )
                .expect("parses"),
            );
            for t in 0..30u32 {
                net.broadcast(NodeId(t % 8), t, 4, Phase::Data);
                net.deliver();
                for id in 0..8u32 {
                    net.clear_inbox(NodeId(id));
                }
            }
            net.telemetry().export_jsonl().expect("ring attached")
        };
        assert_eq!(run(4), run(4), "same seed, byte-identical trace");
        assert_ne!(run(4), run(5), "random targets follow the seed");
    }

    #[test]
    fn battery_depletion_emits_node_failed() {
        let topo = line_topology(2, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            1.0,
            1,
        );
        net.set_telemetry(Telemetry::with_ring(64));
        net.broadcast(NodeId(0), 1, 4, Phase::Test); // drains the battery
        let events = net.telemetry().ring().expect("ring attached").events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::NodeFailed { node: 0, .. })),
            "draining the last charge records a failure"
        );
    }

    /// The cached O(1) alive count must track the full scan through
    /// kills, revives, double-kills, and battery depletion.
    #[test]
    fn cached_alive_count_matches_scan() {
        let scan = |net: &Network<u8>| net.node_ids().filter(|&id| net.is_alive(id)).count();
        let topo = line_topology(6, 0.1, 1.0);
        let mut net: Network<u8> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            2.0,
            1,
        );
        assert_eq!(net.alive_count(), 6);
        assert_eq!(net.alive_count(), scan(&net));

        net.kill(NodeId(2));
        net.kill(NodeId(2)); // double-kill is a no-op
        assert_eq!(net.alive_count(), 5);
        assert_eq!(net.alive_count(), scan(&net));

        net.revive(NodeId(2));
        net.revive(NodeId(2)); // double-revive is a no-op
        assert_eq!(net.alive_count(), 6);
        assert_eq!(net.alive_count(), scan(&net));

        // Deplete node 0's two-charge battery: alive drops without an
        // explicit kill.
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        net.broadcast(NodeId(0), 1, 4, Phase::Test);
        assert_eq!(net.alive_count(), 5);
        assert_eq!(net.alive_count(), scan(&net));

        // Killing the battery-dead node is a no-op on the count; so is
        // trying to revive the corpse.
        net.kill(NodeId(0));
        net.revive(NodeId(0));
        assert_eq!(net.alive_count(), 5);
        assert_eq!(net.alive_count(), scan(&net));
    }

    /// Delivery marks exactly the receiving nodes; draining unmarks.
    #[test]
    fn deliver_wakes_receivers_and_drains_unwake() {
        let topo = line_topology(4, 0.3, 0.35);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.broadcast(NodeId(1), 7, 4, Phase::Test);
        net.deliver();
        let mut woken = Vec::new();
        net.drain_candidates_into(&mut woken);
        assert_eq!(woken, vec![NodeId(0), NodeId(2)]);
        // Candidates stay woken until drained.
        net.drain_candidates_into(&mut woken);
        assert_eq!(woken, vec![NodeId(0), NodeId(2)]);
        net.take_inbox(NodeId(0));
        net.clear_inbox(NodeId(2));
        net.drain_candidates_into(&mut woken);
        assert!(woken.is_empty(), "drained nodes sleep again");
    }

    /// Timers wake their node at (or after) the scheduled tick.
    #[test]
    fn scheduled_timer_wakes_node_at_tick() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.schedule_wake(2, 0, NodeId(1));
        let mut woken = Vec::new();
        net.deliver(); // tick 1: nothing due
        net.drain_candidates_into(&mut woken);
        assert!(woken.is_empty());
        net.deliver(); // tick 2: timer fires
        net.drain_candidates_into(&mut woken);
        assert_eq!(woken, vec![NodeId(1)]);
        assert_eq!(net.scheduler().wakes_by(WakeReason::Timer), 1);
        assert_eq!(net.scheduler().pending_timers(), 0);
        // The tick-activity counters saw exactly one fresh wake in two
        // recorded ticks.
        assert_eq!(net.stats().ticks(), 2);
        assert_eq!(net.stats().woken_total(), 1);
    }

    /// AllScan mode yields every node regardless of wake state, and the
    /// quiescent wake-list is empty — the two drain policies only
    /// differ in *which no-op nodes get visited*.
    #[test]
    fn drain_modes_differ_only_in_visited_sleepers() {
        let topo = line_topology(5, 0.3, 0.35);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.deliver(); // quiescent tick
        let mut buf = Vec::new();
        net.drain_candidates_into(&mut buf);
        assert!(buf.is_empty(), "quiescent wake-list is empty");
        net.set_drain_mode(DrainMode::AllScan);
        assert_eq!(net.drain_mode(), DrainMode::AllScan);
        net.drain_candidates_into(&mut buf);
        assert_eq!(buf.len(), 5, "reference path scans everyone");
        // Every extra candidate has an empty inbox: visiting it is a
        // no-op, which is the byte-identity argument in DESIGN.md §16.
        for id in buf {
            assert!(net.take_inbox(id).is_empty());
        }
    }

    /// Mobility steps wake the moved nodes.
    #[test]
    fn move_node_registers_mobility_wake() {
        let topo = line_topology(3, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.move_node(NodeId(2), Position::new(0.5, 0.5));
        assert!(net.scheduler().is_woken(NodeId(2)));
        assert_eq!(net.scheduler().wakes_by(WakeReason::Mobility), 1);
        let mut buf = Vec::new();
        net.drain_candidates_into(&mut buf);
        assert_eq!(buf, vec![NodeId(2)]);
    }

    /// Fault application wakes the affected nodes (kill, revive, and
    /// targeted drains all register `WakeReason::Fault`).
    #[test]
    fn faults_register_fault_wakes() {
        let topo = line_topology(4, 0.1, 1.0);
        let mut net: Network<u8> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 1);
        net.set_fault_plan(FaultPlan::parse("1 outage 2 for 3\n2 drain 0 x4.0\n").expect("parses"));
        net.deliver(); // tick 1: node 2 goes down
        assert!(net.scheduler().is_woken(NodeId(2)));
        net.clear_inbox(NodeId(2));
        net.deliver(); // tick 2: targeted drain on node 0
        assert!(net.scheduler().is_woken(NodeId(0)));
        net.clear_inbox(NodeId(0));
        net.deliver();
        net.deliver(); // tick 4: node 2 recovers -> fault wake again
        assert!(net.scheduler().is_woken(NodeId(2)));
        assert_eq!(net.scheduler().wakes_by(WakeReason::Fault), 3);
    }
}
