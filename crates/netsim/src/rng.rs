//! Deterministic seed derivation.
//!
//! Experiments in the paper are averaged over ten repetitions; we want
//! each repetition, and each independent stochastic component within a
//! repetition (placement, data generation, message loss, election
//! timing), to draw from statistically independent streams while
//! remaining reproducible from a single master seed. SplitMix64 is the
//! standard tool for deriving such sub-seeds.

/// One step of the SplitMix64 generator: maps a seed to a
/// well-mixed 64-bit output. Used to derive independent sub-seeds.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the `stream`-th sub-seed from a master seed.
///
/// Different `(seed, stream)` pairs produce (with overwhelming
/// probability) unrelated values, so each simulator component can own
/// its own RNG without accidental correlation.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // Two rounds of mixing keep low-entropy (seed, stream) pairs apart.
    splitmix64(splitmix64(seed ^ 0xA076_1D64_78BD_642F).wrapping_add(stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let mut seen = HashSet::new();
        for seed in 0..50u64 {
            for stream in 0..50u64 {
                assert!(
                    seen.insert(derive_seed(seed, stream)),
                    "collision at ({seed},{stream})"
                );
            }
        }
    }

    #[test]
    fn splitmix_mixes_adjacent_inputs() {
        // Adjacent inputs should differ in roughly half their bits.
        let a = splitmix64(1);
        let b = splitmix64(2);
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} differing bits");
    }
}
