//! Deterministic randomness for the whole workspace.
//!
//! Experiments in the paper are averaged over ten repetitions; we want
//! each repetition, and each independent stochastic component within a
//! repetition (placement, data generation, message loss, election
//! timing), to draw from statistically independent streams while
//! remaining reproducible from a single master seed. SplitMix64 is the
//! standard tool for deriving such sub-seeds.
//!
//! This module is also the *only* sanctioned source of randomness in
//! the protocol and simulator crates: `cargo xtask analyze` forbids
//! `rand::thread_rng`, argless `rand::random`, and ambient clocks in
//! those crates, so every stochastic choice flows through a [`DetRng`]
//! seeded (directly or via [`derive_seed`]) from an experiment's master
//! seed. [`DetRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! well-mixed, and fully specified here so results never depend on an
//! external crate's version-to-version stream changes.

/// One step of the SplitMix64 generator: maps a seed to a
/// well-mixed 64-bit output. Used to derive independent sub-seeds.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the `stream`-th sub-seed from a master seed.
///
/// Different `(seed, stream)` pairs produce (with overwhelming
/// probability) unrelated values, so each simulator component can own
/// its own RNG without accidental correlation.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // Two rounds of mixing keep low-entropy (seed, stream) pairs apart.
    splitmix64(splitmix64(seed ^ 0xA076_1D64_78BD_642F).wrapping_add(stream))
}

/// Minimal random-source contract: a stream of 64-bit words.
///
/// Split from [`RngExt`] so generic code can stay object-safe when it
/// only needs raw words.
pub trait RngCore {
    /// Next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
///
/// The API mirrors the subset of `rand` the workspace historically
/// used (`random_bool`, `random_range`, a uniform `f64` draw), so
/// protocol code reads the same while depending only on this crate.
pub trait RngExt: RngCore {
    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields a uniform
        // dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0,1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.random_f64() < p
    }

    /// Uniform draw from a range (`a..b`, `a..=b`; integer or float).
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A range that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draw uniformly from `[0, bound)` without modulo bias
/// (Lemire's rejection method on the widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "random_range called on empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "random_range called on empty range {start}..={end}"
                );
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "random_range called on empty range {}..{}",
            self.start,
            self.end
        );
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end,
            "random_range called on empty range {start}..={end}"
        );
        start + rng.random_f64() * (end - start)
    }
}

/// The workspace's deterministic PRNG: xoshiro256++ seeded via
/// SplitMix64.
///
/// Identical seeds produce identical streams on every platform and in
/// every future version of this repo — the property the paper-figure
/// reproductions rely on. Not cryptographically secure, and does not
/// need to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator from a single 64-bit value, expanding it
    /// through SplitMix64 as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *word = splitmix64(state);
        }
        // An all-zero state is a fixed point of xoshiro; SplitMix64
        // cannot produce four zero outputs from sequential states, but
        // guard anyway so the invariant is local.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }
}

impl RngCore for DetRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let mut seen = BTreeSet::new();
        for seed in 0..50u64 {
            for stream in 0..50u64 {
                assert!(
                    seen.insert(derive_seed(seed, stream)),
                    "collision at ({seed},{stream})"
                );
            }
        }
    }

    #[test]
    fn splitmix_mixes_adjacent_inputs() {
        // Adjacent inputs should differ in roughly half their bits.
        let a = splitmix64(1);
        let b = splitmix64(2);
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} differing bits");
    }

    #[test]
    fn det_rng_is_deterministic_in_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut c = DetRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}, expected ~0.5");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = DetRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}, expected ~0.3");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn random_range_covers_integer_ranges_uniformly() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (1_700..2_300).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
        // Inclusive ranges reach both endpoints.
        let mut saw = BTreeSet::new();
        for _ in 0..200 {
            saw.insert(rng.random_range(0..=3u64));
        }
        assert_eq!(saw.len(), 4);
    }

    #[test]
    fn random_range_float_stays_inside_bounds() {
        let mut rng = DetRng::seed_from_u64(19);
        for _ in 0..5_000 {
            let x = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x), "out of range: {x}");
            let y = rng.random_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y), "out of range: {y}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_range_rejects_empty_ranges() {
        let mut rng = DetRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
