//! Node mobility.
//!
//! The paper's framework is explicitly built for "network dynamics
//! (node failures, changes in connectivity among nodes due to
//! mobility, environmental conditions etc)". This module provides the
//! standard *random waypoint* model so experiments can exercise the
//! snapshot's self-healing under movement: each node walks toward a
//! uniformly random waypoint in the unit square at a fixed speed and
//! picks a new waypoint on arrival.
//!
//! Each move is an O(d) incremental update of the grid-indexed
//! topology (`Topology::set_position`, DESIGN.md §14) — a mobility
//! tick costs O(N·d), not the O(N²) the pre-grid per-move re-scan
//! implied, which is what lets the `scale` experiment run mobility at
//! 10k+ nodes.

use crate::node::NodeId;
use crate::rng::derive_seed;
use crate::rng::DetRng;
use crate::rng::RngExt;
use crate::sim::Network;
use crate::topology::Position;

/// Random-waypoint mobility over the unit square.
#[derive(Debug)]
pub struct RandomWaypoint {
    waypoints: Vec<Position>,
    speed: f64,
    rng: DetRng,
}

impl RandomWaypoint {
    /// A model for `n` nodes moving `speed` distance units per tick.
    ///
    /// # Panics
    /// Panics when `speed` is negative (an experiment-definition
    /// error; `0.0` is allowed and freezes everyone).
    pub fn new(n: usize, speed: f64, seed: u64) -> Self {
        assert!(speed >= 0.0, "speed must be non-negative, got {speed}");
        let mut rng = DetRng::seed_from_u64(derive_seed(seed, 0x30B1));
        let waypoints = (0..n)
            .map(|_| Position::new(rng.random_f64(), rng.random_f64()))
            .collect();
        RandomWaypoint {
            waypoints,
            speed,
            rng,
        }
    }

    /// The node's current waypoint.
    pub fn waypoint(&self, id: NodeId) -> Position {
        self.waypoints[id.index()]
    }

    /// Advance every alive node one tick toward its waypoint,
    /// re-rolling waypoints on arrival. Returns how many nodes moved.
    /// Each move registers a mobility wake for the node, and the id
    /// loop is index-driven — a mobility tick performs no per-tick
    /// id-list allocation. (The per-move hot path, `move_node` →
    /// `set_position`, carries the zero_alloc contract.)
    pub fn step<P: Clone>(&mut self, net: &mut Network<P>) -> usize {
        if self.speed == 0.0 {
            return 0;
        }
        let mut moved = 0;
        for i in 0..net.len() {
            let id = NodeId::from_index(i);
            if !net.is_alive(id) {
                continue;
            }
            let pos = net.topology().position(id);
            let target = self.waypoints[id.index()];
            let dist = pos.distance(&target);
            let new_pos = if dist <= self.speed {
                // Arrived: snap to the waypoint and pick the next one.
                self.waypoints[id.index()] =
                    Position::new(self.rng.random_f64(), self.rng.random_f64());
                target
            } else {
                let f = self.speed / dist;
                Position::new(
                    pos.x + (target.x - pos.x) * f,
                    pos.y + (target.y - pos.y) * f,
                )
            };
            net.move_node(id, new_pos);
            moved += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyModel;
    use crate::link::LinkModel;
    use crate::topology::Topology;

    fn net(n: usize, seed: u64) -> Network<u8> {
        let topo = Topology::random_uniform(n, 0.3, seed).expect("valid deployment");
        Network::new(topo, LinkModel::Perfect, EnergyModel::default(), seed)
    }

    #[test]
    fn nodes_move_toward_their_waypoints() {
        let mut net = net(10, 1);
        let mut mob = RandomWaypoint::new(10, 0.05, 2);
        let before: Vec<_> = net.node_ids().map(|i| net.topology().position(i)).collect();
        let d_before: Vec<f64> = net
            .node_ids()
            .map(|i| net.topology().position(i).distance(&mob.waypoint(i)))
            .collect();
        let moved = mob.step(&mut net);
        assert_eq!(moved, 10);
        for (i, id) in net.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            let now = net.topology().position(id);
            let d_now = now.distance(&mob.waypoint(id));
            // Either it advanced toward the waypoint or it arrived and
            // re-rolled (in which case it sits exactly on the old one).
            assert!(
                d_now < d_before[i] || now.distance(&before[i]) <= 0.05 + 1e-12,
                "node {id} did not advance"
            );
        }
    }

    #[test]
    fn speed_bounds_per_tick_displacement() {
        let mut net = net(20, 3);
        let mut mob = RandomWaypoint::new(20, 0.02, 4);
        for _ in 0..50 {
            let before: Vec<_> = net.node_ids().map(|i| net.topology().position(i)).collect();
            mob.step(&mut net);
            for (i, id) in net.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
                let d = net.topology().position(id).distance(&before[i]);
                assert!(d <= 0.02 + 1e-12, "node {id} jumped {d}");
            }
        }
    }

    #[test]
    fn zero_speed_freezes_everyone() {
        let mut net = net(5, 5);
        let mut mob = RandomWaypoint::new(5, 0.0, 6);
        let before: Vec<_> = net.node_ids().map(|i| net.topology().position(i)).collect();
        assert_eq!(mob.step(&mut net), 0);
        for (i, id) in net.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            assert_eq!(net.topology().position(id), before[i]);
        }
    }

    #[test]
    fn dead_nodes_stay_put() {
        let mut net = net(5, 7);
        net.kill(crate::NodeId(0));
        let before = net.topology().position(crate::NodeId(0));
        let mut mob = RandomWaypoint::new(5, 0.1, 8);
        mob.step(&mut net);
        assert_eq!(net.topology().position(crate::NodeId(0)), before);
    }

    #[test]
    fn movement_changes_connectivity_over_time() {
        let mut net = net(30, 9);
        let mut mob = RandomWaypoint::new(30, 0.05, 10);
        let neighbors_before: Vec<usize> = net
            .node_ids()
            .map(|i| net.topology().neighbors(i).len())
            .collect();
        for _ in 0..30 {
            mob.step(&mut net);
        }
        let neighbors_after: Vec<usize> = net
            .node_ids()
            .map(|i| net.topology().neighbors(i).len())
            .collect();
        assert_ne!(
            neighbors_before, neighbors_after,
            "connectivity never changed"
        );
    }
}
