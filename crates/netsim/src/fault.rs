//! Deterministic fault injection: scripted failure timelines.
//!
//! The paper's robustness story (Kotidis §5.3, §6.4) is that the
//! snapshot *self-heals*: when a representative dies, its orphans are
//! re-covered by maintenance, and message loss only degrades — never
//! corrupts — the answer. Exercising that story needs more than ad-hoc
//! `kill()` calls in tests: experiments want *scripted* failure
//! timelines (crash node 7 at tick 50, black out a region at tick 200,
//! switch the channel to bursty loss at tick 400) that replay
//! identically under any `--jobs` value.
//!
//! A [`FaultPlan`] is a tick-ordered schedule of [`FaultEvent`]s. The
//! simulator owns at most one compiled [`FaultSchedule`]; at every tick
//! boundary ([`Network::deliver`](crate::sim::Network::deliver)) it
//! applies the events that have come due, emitting typed telemetry
//! (`FaultInjected`, `NodeRecovered`) so traces record exactly what was
//! injected and when. `random` targets are resolved from a dedicated
//! RNG stream derived from the network seed, keeping the whole timeline
//! deterministic.
//!
//! Plans are written in a tiny line-oriented text format (`*.fault`
//! files, parsed by [`FaultPlan::parse`] with zero dependencies); the
//! grammar and semantics are documented operator-style in `FAULTS.md`
//! at the repository root.

use crate::link::GilbertElliott;
use crate::node::NodeId;
use crate::rng::{DetRng, RngExt};
use crate::topology::Position;
use std::collections::BTreeMap;

/// Which node a per-node fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A specific node id.
    Node(u32),
    /// A node drawn uniformly from the nodes alive when the fault
    /// fires (skipped when nobody is alive).
    Random,
}

/// One fault action, applied at a tick boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanently kill a node. A crash on an already-dead node is a
    /// no-op: no state change, no telemetry.
    Crash {
        /// The victim.
        target: FaultTarget,
    },
    /// Kill a node and revive it `down_for` ticks later (battery
    /// permitting). An outage landing on a node that is already down
    /// with a pending recovery extends that recovery to the later
    /// tick; an outage on a permanently-dead node is a no-op.
    Outage {
        /// The victim.
        target: FaultTarget,
        /// Ticks until the scheduled recovery.
        down_for: u64,
    },
    /// Kill every alive node within `radius` of `center`, permanently
    /// (pending outage recoveries inside the disc are cancelled).
    Blackout {
        /// Center of the blackout disc.
        center: Position,
        /// Disc radius (same units as node coordinates).
        radius: f64,
    },
    /// Set a battery drain multiplier: every subsequent energy draw by
    /// the affected node(s) is scaled by `factor`.
    Drain {
        /// Affected node, or `None` for the whole network.
        node: Option<u32>,
        /// Multiplier applied to every energy draw (1.0 = nominal).
        factor: f64,
    },
    /// Swap the link model to i.i.d. loss with probability `p_loss`.
    LinkIid {
        /// Per-delivery loss probability.
        p_loss: f64,
    },
    /// Swap the link model to a bursty Gilbert–Elliott channel (all
    /// links restart in the good state).
    LinkBurst {
        /// Chain parameters shared by every directed link.
        params: GilbertElliott,
    },
}

/// One scheduled fault: `kind` fires at the first tick boundary at or
/// after `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulation tick the fault comes due.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A tick-ordered schedule of fault events.
///
/// Construction sorts events stably by tick, so same-tick events fire
/// in the order they were written.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Why one line of a `.fault` file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseErrorKind {
    /// The line does not start with an unsigned tick number.
    BadTick,
    /// The directive after the tick names no known fault.
    UnknownDirective(String),
    /// A required argument is absent.
    MissingArgument(&'static str),
    /// An argument failed to parse or is out of range.
    BadArgument(&'static str),
    /// Extra tokens after a complete directive.
    TrailingTokens,
}

/// A line-anchored parse failure from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: FaultParseErrorKind,
}

impl core::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fault plan line {}: ", self.line)?;
        match &self.kind {
            FaultParseErrorKind::BadTick => write!(f, "expected an unsigned tick number"),
            FaultParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            FaultParseErrorKind::MissingArgument(a) => write!(f, "missing argument `{a}`"),
            FaultParseErrorKind::BadArgument(a) => write!(f, "bad value for `{a}`"),
            FaultParseErrorKind::TrailingTokens => write!(f, "unexpected trailing tokens"),
        }
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Build a plan from events, sorting stably by tick.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The scheduled events, tick-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse the `.fault` text format (grammar in `FAULTS.md`).
    ///
    /// One directive per line; blank lines and `#` comments (full-line
    /// or trailing) are ignored:
    ///
    /// ```text
    /// <tick> crash <node|random>
    /// <tick> outage <node|random> for <ticks>
    /// <tick> blackout <x> <y> <radius>
    /// <tick> drain <node|all> x<factor>
    /// <tick> link iid <p_loss>
    /// <tick> link burst <p_good_to_bad> <p_bad_to_good> <p_loss_good> <p_loss_bad>
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, FaultParseError> {
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let at = |kind| FaultParseError { line, kind };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let tick: u64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| at(FaultParseErrorKind::BadTick))?;
            let directive = tokens
                .next()
                .ok_or_else(|| at(FaultParseErrorKind::MissingArgument("directive")))?;
            let kind = match directive {
                "crash" => FaultKind::Crash {
                    target: parse_target(tokens.next(), line)?,
                },
                "outage" => {
                    let target = parse_target(tokens.next(), line)?;
                    match tokens.next() {
                        Some("for") => {}
                        _ => return Err(at(FaultParseErrorKind::MissingArgument("for"))),
                    }
                    let down_for = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .filter(|&d: &u64| d > 0)
                        .ok_or_else(|| at(FaultParseErrorKind::BadArgument("ticks")))?;
                    FaultKind::Outage { target, down_for }
                }
                "blackout" => {
                    let mut coord = |name| {
                        tokens
                            .next()
                            .and_then(|t| t.parse::<f64>().ok())
                            .filter(|v| v.is_finite())
                            .ok_or(FaultParseError {
                                line,
                                kind: FaultParseErrorKind::BadArgument(name),
                            })
                    };
                    let x = coord("x")?;
                    let y = coord("y")?;
                    let radius = coord("radius")?;
                    if radius < 0.0 {
                        return Err(at(FaultParseErrorKind::BadArgument("radius")));
                    }
                    FaultKind::Blackout {
                        center: Position::new(x, y),
                        radius,
                    }
                }
                "drain" => {
                    let node = match tokens.next() {
                        Some("all") => None,
                        Some(t) => Some(
                            t.parse()
                                .map_err(|_| at(FaultParseErrorKind::BadArgument("node")))?,
                        ),
                        None => return Err(at(FaultParseErrorKind::MissingArgument("node"))),
                    };
                    let factor = tokens
                        .next()
                        .and_then(|t| t.strip_prefix('x'))
                        .and_then(|t| t.parse::<f64>().ok())
                        .filter(|f| f.is_finite() && *f >= 0.0)
                        .ok_or_else(|| at(FaultParseErrorKind::BadArgument("factor")))?;
                    FaultKind::Drain { node, factor }
                }
                "link" => match tokens.next() {
                    Some("iid") => {
                        let p_loss = parse_prob(tokens.next(), "p_loss", line)?;
                        FaultKind::LinkIid { p_loss }
                    }
                    Some("burst") => {
                        let p_good_to_bad = parse_prob(tokens.next(), "p_good_to_bad", line)?;
                        let p_bad_to_good = parse_prob(tokens.next(), "p_bad_to_good", line)?;
                        let p_loss_good = parse_prob(tokens.next(), "p_loss_good", line)?;
                        let p_loss_bad = parse_prob(tokens.next(), "p_loss_bad", line)?;
                        FaultKind::LinkBurst {
                            params: GilbertElliott {
                                p_good_to_bad,
                                p_bad_to_good,
                                p_loss_good,
                                p_loss_bad,
                            },
                        }
                    }
                    Some(other) => {
                        return Err(at(FaultParseErrorKind::UnknownDirective(format!(
                            "link {other}"
                        ))))
                    }
                    None => return Err(at(FaultParseErrorKind::MissingArgument("link model"))),
                },
                other => return Err(at(FaultParseErrorKind::UnknownDirective(other.to_owned()))),
            };
            if tokens.next().is_some() {
                return Err(at(FaultParseErrorKind::TrailingTokens));
            }
            events.push(FaultEvent { at: tick, kind });
        }
        Ok(FaultPlan::new(events))
    }
}

fn parse_target(token: Option<&str>, line: usize) -> Result<FaultTarget, FaultParseError> {
    match token {
        Some("random") => Ok(FaultTarget::Random),
        Some(t) => t
            .parse()
            .map(FaultTarget::Node)
            .map_err(|_| FaultParseError {
                line,
                kind: FaultParseErrorKind::BadArgument("node"),
            }),
        None => Err(FaultParseError {
            line,
            kind: FaultParseErrorKind::MissingArgument("node"),
        }),
    }
}

fn parse_prob(
    token: Option<&str>,
    name: &'static str,
    line: usize,
) -> Result<f64, FaultParseError> {
    token
        .and_then(|t| t.parse::<f64>().ok())
        .filter(|p| (0.0..=1.0).contains(p))
        .ok_or(FaultParseError {
            line,
            kind: FaultParseErrorKind::BadArgument(name),
        })
}

/// A [`FaultPlan`] compiled against a live network: tracks which events
/// have fired, outstanding outage recoveries, and the RNG stream that
/// resolves `random` targets.
///
/// Owned by [`Network`](crate::sim::Network); applied once per tick
/// boundary from `deliver`. The application logic itself lives in
/// `sim.rs` (it needs the network's mutators); this type holds the
/// bookkeeping so it can be taken out of the network during
/// application without borrow conflicts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    plan: FaultPlan,
    next: usize,
    /// node id -> recovery tick; overlapping outages keep the max.
    recoveries: BTreeMap<u32, u64>,
    rng: DetRng,
}

impl FaultSchedule {
    /// Compile a plan; `seed` should be derived from the network seed
    /// so `random` targets replay deterministically.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultSchedule {
            plan,
            next: 0,
            recoveries: BTreeMap::new(),
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// The earliest tick at which this schedule has work to do: the
    /// next unfired plan event or the soonest pending recovery,
    /// whichever comes first. `None` once the plan is exhausted and no
    /// recoveries are pending. O(1) — lets [`crate::sim::Network::deliver`]
    /// skip fault application entirely on quiescent ticks instead of
    /// walking the schedule.
    // xtask-contract(zero_alloc)
    pub(crate) fn next_due_tick(&self) -> Option<u64> {
        let next_event = self.plan.events.get(self.next).map(|e| e.at);
        let next_recovery = self.recoveries.values().min().copied();
        match (next_event, next_recovery) {
            (Some(e), Some(r)) => Some(e.min(r)),
            (a, b) => a.or(b),
        }
    }

    /// Events due at or before `tick` that have not fired yet, in
    /// schedule order. Advances the cursor; each event is handed out
    /// exactly once. (Cloning here is fine: fault application is a
    /// cold path, off the per-envelope delivery loop.)
    pub(crate) fn take_due(&mut self, tick: u64) -> Vec<FaultEvent> {
        let start = self.next;
        while self.next < self.plan.events.len() && self.plan.events[self.next].at <= tick {
            self.next += 1;
        }
        self.plan.events[start..self.next].to_vec()
    }

    /// Recoveries due at or before `tick`, removed from the pending
    /// set, in node-id order.
    pub(crate) fn take_due_recoveries(&mut self, tick: u64) -> Vec<u32> {
        let due: Vec<u32> = self
            .recoveries
            .iter()
            .filter(|&(_, &when)| when <= tick)
            .map(|(&node, _)| node)
            .collect();
        for node in &due {
            self.recoveries.remove(node);
        }
        due
    }

    /// Schedule (or extend) a recovery for `node`; overlapping outages
    /// resolve to the later tick.
    pub(crate) fn schedule_recovery(&mut self, node: u32, when: u64) {
        let slot = self.recoveries.entry(node).or_insert(when);
        *slot = (*slot).max(when);
    }

    /// True when `node` has a recovery pending.
    pub(crate) fn has_pending_recovery(&self, node: u32) -> bool {
        self.recoveries.contains_key(&node)
    }

    /// Cancel a pending recovery (blackouts are permanent).
    pub(crate) fn cancel_recovery(&mut self, node: u32) {
        self.recoveries.remove(&node);
    }

    /// Resolve a fault target against the alive set, drawing from the
    /// schedule's private RNG stream for `random`.
    pub(crate) fn resolve_target(
        &mut self,
        target: FaultTarget,
        alive: &[NodeId],
    ) -> Option<NodeId> {
        match target {
            FaultTarget::Node(id) => Some(NodeId(id)),
            FaultTarget::Random => {
                if alive.is_empty() {
                    None
                } else {
                    Some(alive[self.rng.random_range(0..alive.len())])
                }
            }
        }
    }

    /// True when every scheduled event has fired and no recovery is
    /// pending.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.events.len() && self.recoveries.is_empty()
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_directive_and_comments() {
        let text = "\
# a full timeline
10 crash 3
20 outage random for 15   # transient
30 blackout 0.5 0.5 0.25
40 drain all x2.5
45 drain 7 x0.0
50 link iid 0.3
60 link burst 0.05 0.25 0.0 0.4
";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.events().len(), 7);
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: 10,
                kind: FaultKind::Crash {
                    target: FaultTarget::Node(3)
                }
            }
        );
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::Outage {
                target: FaultTarget::Random,
                down_for: 15
            }
        );
        assert!(matches!(
            plan.events()[3].kind,
            FaultKind::Drain {
                node: None,
                factor: _
            }
        ));
        assert!(matches!(plan.events()[6].kind, FaultKind::LinkBurst { .. }));
    }

    #[test]
    fn parse_sorts_stably_by_tick() {
        let plan = FaultPlan::parse("30 crash 1\n10 crash 2\n30 crash 3\n").expect("parses");
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(ticks, vec![10, 30, 30]);
        // Same-tick events keep file order.
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::Crash {
                target: FaultTarget::Node(1)
            }
        );
        assert_eq!(
            plan.events()[2].kind,
            FaultKind::Crash {
                target: FaultTarget::Node(3)
            }
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = FaultPlan::parse("10 crash 1\nnonsense here\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, FaultParseErrorKind::BadTick);

        let err = FaultPlan::parse("10 explode 1\n").unwrap_err();
        assert_eq!(
            err.kind,
            FaultParseErrorKind::UnknownDirective("explode".into())
        );

        let err = FaultPlan::parse("10 outage 1 for zero\n").unwrap_err();
        assert_eq!(err.kind, FaultParseErrorKind::BadArgument("ticks"));

        let err = FaultPlan::parse("10 link iid 1.5\n").unwrap_err();
        assert_eq!(err.kind, FaultParseErrorKind::BadArgument("p_loss"));

        let err = FaultPlan::parse("10 crash 1 extra\n").unwrap_err();
        assert_eq!(err.kind, FaultParseErrorKind::TrailingTokens);

        let err = FaultPlan::parse("10 drain 3 2.0\n").unwrap_err();
        assert_eq!(
            err.kind,
            FaultParseErrorKind::BadArgument("factor"),
            "drain factor requires the x prefix"
        );
    }

    #[test]
    fn schedule_hands_out_due_events_once() {
        let plan = FaultPlan::parse("5 crash 0\n10 crash 1\n").expect("parses");
        let mut sched = FaultSchedule::new(plan, 1);
        assert!(sched.take_due(4).is_empty());
        assert_eq!(sched.take_due(7).len(), 1);
        assert!(sched.take_due(7).is_empty(), "events fire once");
        assert_eq!(sched.take_due(100).len(), 1);
        assert!(sched.exhausted());
    }

    #[test]
    fn overlapping_recoveries_keep_the_later_tick() {
        let mut sched = FaultSchedule::new(FaultPlan::default(), 1);
        sched.schedule_recovery(4, 20);
        sched.schedule_recovery(4, 35);
        sched.schedule_recovery(4, 25); // earlier than pending: ignored
        assert!(sched.take_due_recoveries(30).is_empty());
        assert_eq!(sched.take_due_recoveries(35), vec![4]);
        assert!(sched.exhausted());
    }

    #[test]
    fn random_target_resolution_is_seed_deterministic() {
        let alive: Vec<NodeId> = (0..10).map(NodeId).collect();
        let pick = |seed| {
            let mut sched = FaultSchedule::new(FaultPlan::default(), seed);
            (0..5)
                .map(|_| {
                    sched
                        .resolve_target(FaultTarget::Random, &alive)
                        .map(|n| n.0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(7), pick(7));
        let mut sched = FaultSchedule::new(FaultPlan::default(), 1);
        assert_eq!(sched.resolve_target(FaultTarget::Random, &[]), None);
        assert_eq!(
            sched.resolve_target(FaultTarget::Node(3), &[]),
            Some(NodeId(3))
        );
    }
}
