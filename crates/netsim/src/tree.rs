//! Aggregation trees (TAG-style).
//!
//! Section 6.2 of the paper executes aggregate queries by forming a
//! routing tree rooted at a randomly chosen sink via flooding, then
//! aggregating measurements up the tree. The experiment's key metric —
//! how many nodes *participate* in a query — counts both the nodes
//! that contribute a measurement and the nodes that merely route
//! partial aggregates toward the sink. [`AggregationTree::participants`]
//! computes exactly that set.

use crate::flood::FloodOutcome;
use crate::node::NodeId;
use std::collections::BTreeSet;

/// A routing tree rooted at a sink node.
#[derive(Debug, Clone)]
pub struct AggregationTree {
    sink: NodeId,
    parent: Vec<Option<NodeId>>,
    hops: Vec<Option<u32>>,
}

impl AggregationTree {
    /// Build a tree from a flood outcome.
    pub fn from_flood(outcome: &FloodOutcome) -> Self {
        AggregationTree {
            sink: outcome.sink,
            parent: outcome.parent.clone(),
            hops: outcome.hops.clone(),
        }
    }

    /// Build a tree by breadth-first search over the radio graph,
    /// restricted to nodes for which `alive` returns true.
    ///
    /// This is the *idealized* (lossless, zero-message-cost) tree the
    /// paper's query experiments assume: Section 6.2 charges nodes
    /// only "when responding to a query", not for tree formation.
    /// Use [`crate::flood::flood`] instead when tree formation itself
    /// must pay for (and suffer) radio traffic.
    pub fn bfs(
        topology: &crate::topology::Topology,
        sink: NodeId,
        alive: impl Fn(NodeId) -> bool,
    ) -> Self {
        Self::bfs_preferring(topology, sink, alive, |_| false)
    }

    /// Like [`AggregationTree::bfs`], but when a node could attach to
    /// several parents at the same depth, a parent for which `prefer`
    /// returns true wins.
    ///
    /// This implements the routing refinement the paper sketches after
    /// Table 3: "One can modify the protocol to favor (when
    /// applicable) representative nodes for routing the messages. This
    /// will result in further reduction in the number of sensor nodes
    /// used during snapshot queries" — preferred (representative)
    /// parents are on the path anyway, so fewer passive nodes are
    /// dragged in as routers. Paths stay shortest (it is still BFS);
    /// only the choice among equal-depth parents changes.
    pub fn bfs_preferring(
        topology: &crate::topology::Topology,
        sink: NodeId,
        alive: impl Fn(NodeId) -> bool,
        prefer: impl Fn(NodeId) -> bool,
    ) -> Self {
        let n = topology.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut hops: Vec<Option<u32>> = vec![None; n];
        if alive(sink) {
            parent[sink.index()] = Some(sink);
            hops[sink.index()] = Some(0);
            let mut level = vec![sink];
            let mut depth = 0u32;
            while !level.is_empty() {
                depth += 1;
                // Collect every attachable node with all its candidate
                // parents in the current level, then pick preferred
                // parents.
                let mut next: Vec<NodeId> = Vec::new();
                for &cur in &level {
                    for &nb in topology.neighbors(cur) {
                        if !alive(nb) || parent[nb.index()].is_some() {
                            continue;
                        }
                        // First parent claims the node...
                        parent[nb.index()] = Some(cur);
                        hops[nb.index()] = Some(depth);
                        next.push(nb);
                    }
                }
                // ...then preferred same-depth parents override.
                for &nb in &next {
                    // Everything in `next` was attached just above;
                    // an unattached entry simply keeps its parent.
                    if parent[nb.index()].is_some_and(&prefer) {
                        continue;
                    }
                    for &cand in topology.neighbors(nb) {
                        if hops[cand.index()] == Some(depth - 1) && prefer(cand) {
                            parent[nb.index()] = Some(cand);
                            break;
                        }
                    }
                }
                level = next;
            }
        }
        AggregationTree { sink, parent, hops }
    }

    /// The root.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// True when the node joined the tree.
    pub fn contains(&self, id: NodeId) -> bool {
        self.parent[id.index()].is_some()
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }

    /// True when the tree is empty (flood never started).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parent of a node (`None` when outside the tree; the sink is its
    /// own parent).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id.index()]
    }

    /// Hop distance from the sink.
    pub fn depth(&self, id: NodeId) -> Option<u32> {
        self.hops[id.index()]
    }

    /// The path from `id` up to the sink, inclusive of both ends.
    /// Empty when `id` is outside the tree.
    pub fn path_to_sink(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = id;
        if !self.contains(cur) {
            return path;
        }
        loop {
            path.push(cur);
            if cur == self.sink {
                break;
            }
            match self.parent(cur) {
                Some(p) if p != cur => cur = p,
                _ => break, // malformed entry; stop defensively
            }
            if path.len() > self.parent.len() {
                break; // cycle guard; cannot happen for flood-built trees
            }
        }
        path
    }

    /// Every node that participates when `responders` report through
    /// this tree: the responders themselves (those actually in the
    /// tree) plus every ancestor on their paths to the sink.
    ///
    /// This is the quantity averaged in the paper's Table 3
    /// (`N_regular` and `N_snapshot`).
    pub fn participants(&self, responders: &[NodeId]) -> BTreeSet<NodeId> {
        let mut set = BTreeSet::new();
        for &r in responders {
            for hop in self.path_to_sink(r) {
                set.insert(hop);
            }
        }
        set
    }

    /// Participants that only route (are not themselves responders).
    pub fn routers(&self, responders: &[NodeId]) -> BTreeSet<NodeId> {
        let responders_set: BTreeSet<NodeId> = responders.iter().copied().collect();
        self.participants(responders)
            .into_iter()
            .filter(|id| !responders_set.contains(id))
            .collect()
    }

    /// Children lists, for traversals.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut children = vec![Vec::new(); self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                let id = NodeId::from_index(i);
                if *p != id {
                    children[p.index()].push(id);
                }
            }
        }
        children
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::FloodOutcome;

    /// Hand-built tree:
    ///        0 (sink)
    ///       / \
    ///      1   2
    ///     /     \
    ///    3       4
    ///            |
    ///            5        (node 6 unreached)
    fn sample_tree() -> AggregationTree {
        let parent = vec![
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(4)),
            None,
        ];
        let hops = vec![Some(0), Some(1), Some(1), Some(2), Some(2), Some(3), None];
        AggregationTree::from_flood(&FloodOutcome {
            sink: NodeId(0),
            parent,
            hops,
        })
    }

    #[test]
    fn path_walks_to_sink() {
        let t = sample_tree();
        assert_eq!(
            t.path_to_sink(NodeId(5)),
            vec![NodeId(5), NodeId(4), NodeId(2), NodeId(0)]
        );
        assert_eq!(t.path_to_sink(NodeId(0)), vec![NodeId(0)]);
        assert!(t.path_to_sink(NodeId(6)).is_empty());
    }

    #[test]
    fn participants_count_responders_and_routers() {
        let t = sample_tree();
        let parts = t.participants(&[NodeId(3), NodeId(5)]);
        // 3 -> 1 -> 0 and 5 -> 4 -> 2 -> 0
        let expect: BTreeSet<NodeId> = [0, 1, 2, 3, 4, 5].into_iter().map(NodeId).collect();
        assert_eq!(parts, expect);
        let routers = t.routers(&[NodeId(3), NodeId(5)]);
        let expect_r: BTreeSet<NodeId> = [0, 1, 2, 4].into_iter().map(NodeId).collect();
        assert_eq!(routers, expect_r);
    }

    #[test]
    fn unreached_responders_contribute_nothing() {
        let t = sample_tree();
        assert!(t.participants(&[NodeId(6)]).is_empty());
    }

    #[test]
    fn tree_size_and_membership() {
        let t = sample_tree();
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert!(t.contains(NodeId(5)));
        assert!(!t.contains(NodeId(6)));
        assert_eq!(t.depth(NodeId(5)), Some(3));
        assert_eq!(t.sink(), NodeId(0));
    }

    #[test]
    fn children_invert_parents() {
        let t = sample_tree();
        let ch = t.children();
        assert_eq!(ch[0], vec![NodeId(1), NodeId(2)]);
        assert_eq!(ch[4], vec![NodeId(5)]);
        assert!(ch[3].is_empty());
        assert!(ch[6].is_empty());
    }

    #[test]
    fn shared_path_segments_counted_once() {
        let t = sample_tree();
        // 4 and 5 share the 4 -> 2 -> 0 segment.
        let parts = t.participants(&[NodeId(4), NodeId(5)]);
        assert_eq!(parts.len(), 4); // {0,2,4,5}
    }

    #[test]
    fn bfs_tree_spans_the_connected_component() {
        use crate::topology::{Position, Topology};
        // Line of 5 nodes, adjacent-only connectivity.
        let positions = (0..5).map(|i| Position::new(i as f64 * 0.1, 0.0)).collect();
        let topo = Topology::new(positions, 0.15).unwrap();
        let t = AggregationTree::bfs(&topo, NodeId(0), |_| true);
        assert_eq!(t.len(), 5);
        for i in 0..5u32 {
            assert_eq!(t.depth(NodeId(i)), Some(i));
        }
    }

    #[test]
    fn bfs_tree_excludes_dead_nodes() {
        use crate::topology::{Position, Topology};
        let positions = (0..5).map(|i| Position::new(i as f64 * 0.1, 0.0)).collect();
        let topo = Topology::new(positions, 0.15).unwrap();
        // Node 2 dead cuts the line in two.
        let t = AggregationTree::bfs(&topo, NodeId(0), |id| id != NodeId(2));
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(3)), "nodes past the cut are unreachable");
    }

    #[test]
    fn preferring_bfs_keeps_shortest_paths() {
        use crate::topology::{Position, Topology};
        let positions = (0..6).map(|i| Position::new(i as f64 * 0.1, 0.0)).collect();
        let topo = Topology::new(positions, 0.15).unwrap();
        let plain = AggregationTree::bfs(&topo, NodeId(0), |_| true);
        let pref = AggregationTree::bfs_preferring(&topo, NodeId(0), |_| true, |n| n.0 % 2 == 0);
        for i in 0..6u32 {
            assert_eq!(
                plain.depth(NodeId(i)),
                pref.depth(NodeId(i)),
                "depth changed for N{i}"
            );
        }
    }

    #[test]
    fn preferring_bfs_picks_preferred_parents_among_equals() {
        use crate::topology::{Position, Topology};
        // Diamond: sink 0 at origin; 1 and 2 equidistant at depth 1;
        // node 3 adjacent to both. Preferring node 2 must route 3
        // through it.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(0.1, 0.05),
            Position::new(0.1, -0.05),
            Position::new(0.2, 0.0),
        ];
        let topo = Topology::new(positions, 0.13).unwrap();
        let pref = AggregationTree::bfs_preferring(&topo, NodeId(0), |_| true, |n| n == NodeId(2));
        assert_eq!(pref.parent(NodeId(3)), Some(NodeId(2)));
        let pref1 = AggregationTree::bfs_preferring(&topo, NodeId(0), |_| true, |n| n == NodeId(1));
        assert_eq!(pref1.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn bfs_with_dead_sink_is_empty() {
        use crate::topology::{Position, Topology};
        let positions = (0..3).map(|i| Position::new(i as f64 * 0.1, 0.0)).collect();
        let topo = Topology::new(positions, 1.0).unwrap();
        let t = AggregationTree::bfs(&topo, NodeId(0), |id| id != NodeId(0));
        assert!(t.is_empty());
    }
}
