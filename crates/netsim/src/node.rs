//! Node identifiers and liveness state.

use std::fmt;

/// Identifier of a sensor node.
///
/// The paper assumes nodes carry unique ids (e.g. their MAC address)
/// that are totally ordered; the election protocol uses the ordering to
/// break ties ("favor `N_{i1}` if `i1 > i2`"). We use a dense `u32` so
/// ids double as indices into per-node vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a vector index.
    #[inline]
    #[allow(clippy::expect_used)] // documented fail-fast, see xtask-allow below
    pub fn from_index(i: usize) -> Self {
        // xtask-allow(no_expect): truncating would silently alias node ids; real deployments are far below u32::MAX
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Liveness of a node.
///
/// A node dies when its battery is depleted (or when failure is
/// injected by an experiment); dead nodes neither send nor receive.
/// Death is permanent unless the fault engine scheduled a transient
/// outage, in which case `Network::revive` flips the node back to
/// [`NodeState::Alive`] at the recovery tick (battery permitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Operating normally.
    Alive,
    /// Battery depleted or failure injected; silent until revived by
    /// a scheduled outage recovery (battery depletion is never
    /// revivable — a drained battery stays drained).
    Dead,
}

impl NodeState {
    /// `true` when the node is alive.
    #[inline]
    pub fn is_alive(self) -> bool {
        matches!(self, NodeState::Alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        for raw in [0u32, 1, 99, 100_000] {
            let id = NodeId(raw);
            assert_eq!(NodeId::from_index(id.index()), id);
        }
    }

    #[test]
    fn node_id_ordering_matches_raw_ordering() {
        assert!(NodeId(3) > NodeId(2));
        assert!(NodeId(0) < NodeId(1));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn node_id_displays_with_paper_notation() {
        assert_eq!(NodeId(4).to_string(), "N4");
    }

    #[test]
    fn node_state_liveness() {
        assert!(NodeState::Alive.is_alive());
        assert!(!NodeState::Dead.is_alive());
    }
}
