//! Framework configuration.

use crate::cache::CacheConfig;
use crate::metrics::ErrorMetric;

/// All tunables of the snapshot framework, with the paper's defaults.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotConfig {
    /// The representation threshold `T`: `N_i` may represent `N_j`
    /// when `d(x_j, x̂_j) <= T` (paper sweeps 0.1..=10; sensitivity
    /// experiments use 1).
    pub threshold: f64,
    /// The error metric `d()` (paper: sse).
    pub metric: ErrorMetric,
    /// Cache sizing and replacement policy.
    pub cache: CacheConfig,
    /// Maximum refinement rounds a node waits with an undefined mode
    /// before Rule-4 forces a decision (the paper's `MAX_WAIT`).
    pub max_wait: u32,
    /// Probability of switching to ACTIVE per round once `MAX_WAIT`
    /// is exceeded (the paper's `P_wait` randomization that avoids
    /// synchronized switches).
    pub p_wait: f64,
    /// Probability that a node snoops (and caches) a neighbor's
    /// broadcast outside dedicated training (Section 6.3 uses 5%).
    pub snoop_prob: f64,
    /// Probability that a node hearing a *maintenance invitation*
    /// caches the inviter's fresh value after evaluating its model.
    /// Invitations are rare, explicit announcements, so the default is
    /// to always learn from them; energy-constrained deployments can
    /// lower this (each cached observation costs a cache-update
    /// charge).
    pub invite_learn_prob: f64,
    /// Battery fraction below which a representative initiates
    /// handoff of the nodes it represents (Section 5.1's energy-aware
    /// maintenance; 0 disables).
    pub energy_handoff_fraction: f64,
    /// Master seed for protocol-level randomness (Rule-4 coin flips,
    /// snooping decisions).
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            threshold: 1.0,
            metric: ErrorMetric::Sse,
            cache: CacheConfig::default(),
            max_wait: 10,
            p_wait: 0.5,
            snoop_prob: 0.05,
            invite_learn_prob: 1.0,
            energy_handoff_fraction: 0.0,
            seed: 0,
        }
    }
}

impl SnapshotConfig {
    /// The paper's sensitivity-analysis configuration: `T`, a cache
    /// budget in bytes, and a seed; everything else at paper defaults.
    pub fn paper(threshold: f64, cache_bytes: usize, seed: u64) -> Self {
        SnapshotConfig {
            threshold,
            cache: CacheConfig {
                budget_bytes: cache_bytes,
                ..CacheConfig::default()
            },
            seed,
            ..SnapshotConfig::default()
        }
    }

    /// Panic-free validation for configuration loaded from outside.
    pub fn validate(&self) -> Result<(), String> {
        if self.threshold.is_nan() || self.threshold < 0.0 {
            return Err(format!("threshold must be >= 0, got {}", self.threshold));
        }
        if !(0.0..=1.0).contains(&self.p_wait) {
            return Err(format!("p_wait must be a probability, got {}", self.p_wait));
        }
        if !(0.0..=1.0).contains(&self.snoop_prob) {
            return Err(format!(
                "snoop_prob must be a probability, got {}",
                self.snoop_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.invite_learn_prob) {
            return Err(format!(
                "invite_learn_prob must be a probability, got {}",
                self.invite_learn_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.energy_handoff_fraction) {
            return Err(format!(
                "energy_handoff_fraction must be a probability, got {}",
                self.energy_handoff_fraction
            ));
        }
        if self.max_wait == 0 {
            return Err("max_wait must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = SnapshotConfig::default();
        assert_eq!(c.threshold, 1.0);
        assert_eq!(c.metric, ErrorMetric::Sse);
        assert_eq!(c.cache.budget_bytes, 2048);
        assert_eq!(c.cache.pair_bytes, 8);
        assert!((c.snoop_prob - 0.05).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_constructor_overrides_the_sweep_axes() {
        let c = SnapshotConfig::paper(0.1, 512, 9);
        assert_eq!(c.threshold, 0.1);
        assert_eq!(c.cache.budget_bytes, 512);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            SnapshotConfig {
                threshold: -1.0,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                threshold: f64::NAN,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                p_wait: 1.5,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                snoop_prob: -0.1,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                invite_learn_prob: 7.0,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                max_wait: 0,
                ..SnapshotConfig::default()
            },
            SnapshotConfig {
                energy_handoff_fraction: 2.0,
                ..SnapshotConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "accepted invalid config {c:?}");
        }
    }
}
