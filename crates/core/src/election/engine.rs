//! The election engine: invitation → model evaluation → initial
//! selection → refinement (Rules 0–4 of Figure 5).
//!
//! Two entry points share one implementation:
//!
//! * [`run_full_election`] — the initial, network-wide discovery: all
//!   representation state is reset, every alive node invites, and
//!   offers are ranked by candidate-list length alone.
//! * [`run_maintenance_election`] — the Section 5.1 re-election: only
//!   the given initiators invite (nodes whose representative failed or
//!   drifted, or self-only actives fishing for a representative);
//!   standing representation links are preserved, and offers are
//!   ranked by candidate-list length *plus* the number of nodes the
//!   candidate already represents.
//!
//! Everything is exchanged as real messages over the lossy broadcast;
//! a lost `Recall` leaves a *spurious representative* behind (counted
//! by Figure 13), a lost `RepresentAck` parks the waiting node in
//! UNDEFINED until Rule 4 times it out into ACTIVE.

use crate::config::SnapshotConfig;
use crate::election::messages::ProtocolMsg;
use crate::sensor::{Mode, Offer, SensorNode};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_netsim::{Event, Network, NodeId, Phase, SpanKind};

/// Summary of one election run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionOutcome {
    /// The epoch stamped on every acceptance of this election.
    pub epoch: Epoch,
    /// Refinement rounds executed before the protocol settled.
    pub refinement_rounds: u32,
    /// Alive ACTIVE nodes after the election — the snapshot size `n1`.
    pub snapshot_size: usize,
    /// Alive PASSIVE nodes.
    pub passive: usize,
    /// Nodes forced ACTIVE by the Rule-4 timeout (lost handshakes,
    /// circular dependencies).
    pub forced_active: usize,
}

#[derive(Clone, Copy)]
enum Scope<'a> {
    Full,
    Partial(&'a [NodeId]),
}

impl Scope<'_> {
    fn is_electing(&self, id: NodeId) -> bool {
        match self {
            Scope::Full => true,
            Scope::Partial(set) => set.contains(&id),
        }
    }
}

/// Run the initial, network-wide election (Section 5, Figure 2).
// xtask-contract(deterministic)
pub fn run_full_election(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
) -> ElectionOutcome {
    run_election(net, nodes, values, cfg, epoch, rng, Scope::Full, false)
}

/// Run a maintenance re-election for the given initiators
/// (Section 5.1). Offers are scored by candidate-list length plus the
/// candidate's current member count.
// xtask-contract(deterministic)
pub fn run_maintenance_election(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
    initiators: &[NodeId],
) -> ElectionOutcome {
    run_election(
        net,
        nodes,
        values,
        cfg,
        epoch,
        rng,
        Scope::Partial(initiators),
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_election(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
    scope: Scope<'_>,
    count_already: bool,
) -> ElectionOutcome {
    debug_assert_eq!(nodes.len(), values.len());
    let election_span = net.open_span(SpanKind::Election);
    let ids: Vec<NodeId> = net.node_ids().collect();

    // ---- Reset state -------------------------------------------------
    // Remember the representative each initiator is abandoning so it
    // can be recalled after a new choice is made.
    let mut old_rep: Vec<Option<NodeId>> = vec![None; nodes.len()];
    match scope {
        Scope::Full => {
            for &i in &ids {
                if net.is_alive(i) {
                    nodes[i.index()].reset_for_full_election();
                }
            }
        }
        Scope::Partial(initiators) => {
            for &i in &ids {
                if net.is_alive(i) {
                    nodes[i.index()].reset_scratch();
                }
            }
            for &i in initiators {
                if !net.is_alive(i) {
                    continue;
                }
                let node = &mut nodes[i.index()];
                old_rep[i.index()] = node.representative();
                node.mode = Mode::Undefined;
                node.rep_of = None;
            }
        }
    }

    // ---- Phase 1: invitation ------------------------------------------
    let invite_span = net.open_span(SpanKind::ElectionInvite);
    let tick = net.round();
    net.emit(Event::ElectionPhase {
        tick,
        epoch: epoch.0,
        phase: Phase::Invitation,
    });
    for &j in &ids {
        if net.is_alive(j) && scope.is_electing(j) {
            net.broadcast(
                j,
                ProtocolMsg::Invite {
                    value: values[j.index()],
                    epoch,
                },
                ProtocolMsg::Invite { value: 0.0, epoch }.wire_bytes(),
                Phase::Invitation,
            );
        }
    }
    net.deliver();
    net.close_span(invite_span);

    // ---- Phase 2: model evaluation + candidate lists -------------------
    let cand_span = net.open_span(SpanKind::ElectionCandidates);
    let tick = net.round();
    net.emit(Event::ElectionPhase {
        tick,
        epoch: epoch.0,
        phase: Phase::Candidates,
    });
    // Outgoing queue: (sender, Some(unicast target) | None for broadcast, message).
    let mut to_send: Vec<(NodeId, Option<NodeId>, ProtocolMsg)> = Vec::new();
    // One reusable delivery buffer serves every drain in this election;
    // `take_inbox_into` swaps capacity with the node's inbox, so the
    // steady-state message loops never touch the heap.
    let mut inbox = Vec::new();
    for &i in &ids {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        // Nodes shedding load — or too drained to take on the role —
        // do not offer candidacy ("a representative node that finds
        // its energy capacity fall below a threshold value ... simply
        // ignores these invitations", Section 5.1).
        let drained = cfg.energy_handoff_fraction > 0.0
            && net.battery(i).fraction() < cfg.energy_handoff_fraction;
        let node = &mut nodes[i.index()];
        if node.refusing_invites || drained {
            continue;
        }
        let own = values[i.index()];
        let learn = !matches!(scope, Scope::Full);
        for d in inbox.drain(..) {
            if let ProtocolMsg::Invite { value, .. } = d.payload {
                if d.from == i {
                    continue;
                }
                if let Some(est) = node.cache.estimate(d.from, own) {
                    if cfg.metric.within(value, est, cfg.threshold) {
                        node.cand_list.push(d.from);
                    }
                }
                // Maintenance invitations carry the inviter's fresh
                // measurement; hearers cache it (after evaluating
                // their pre-invite model, which is what the candidacy
                // test must use). Invitations are rare, explicit
                // announcements — unlike ambient data traffic they are
                // always worth offering to the cache manager, whose
                // model-aware admission policy decides whether the
                // pair earns its keep. This keeps models of drifting
                // nodes from going permanently stale between
                // elections.
                if learn && cfg.invite_learn_prob > 0.0 && rng.random_bool(cfg.invite_learn_prob) {
                    let decision = node.cache.observe(d.from, own, value);
                    net.charge_cache_update(i);
                    crate::trace::record_cache_decision(net, i, d.from, &decision, &node.cache);
                }
            }
        }
        if !node.cand_list.is_empty() {
            // Energy viability (only when the handoff mechanism is in
            // force): taking on `cand_list.len()` members means paying
            // roughly three messages per member for the election plus
            // a heartbeat-reply round — a candidate that would hit its
            // own handoff floor immediately after winning must not
            // offer, or the role churns from one exhausted node to the
            // next, billing the members for each move.
            let viable = cfg.energy_handoff_fraction == 0.0 || {
                let prospective = node.cand_list.len() + node.member_count();
                let battery = net.battery(i);
                let need = (3 * prospective) as f64 * net.energy_model().tx_cost
                    + 0.05 * battery.capacity();
                battery.remaining() >= need
            };
            if viable {
                let msg = ProtocolMsg::Candidates {
                    cand: node.cand_list.clone(),
                    already: node.member_count(),
                };
                to_send.push((i, None, msg));
            } else {
                node.cand_list.clear();
            }
        }
    }
    for (i, _, msg) in to_send.drain(..) {
        let bytes = msg.wire_bytes();
        net.broadcast(i, msg, bytes, Phase::Candidates);
    }
    net.deliver();
    net.close_span(cand_span);

    // ---- Phase 3: initial selection ------------------------------------
    let accept_span = net.open_span(SpanKind::ElectionAccept);
    let tick = net.round();
    net.emit(Event::ElectionPhase {
        tick,
        epoch: epoch.0,
        phase: Phase::Accept,
    });
    for &j in &ids {
        if !net.is_alive(j) {
            net.clear_inbox(j);
            continue;
        }
        net.take_inbox_into(j, &mut inbox);
        let node = &mut nodes[j.index()];
        for d in inbox.drain(..) {
            if let ProtocolMsg::Candidates { cand, already } = d.payload {
                node.heard_cand_len.insert(d.from, cand.len());
                if scope.is_electing(j) && cand.contains(&j) {
                    node.offers.push(Offer {
                        from: d.from,
                        cand_len: cand.len(),
                        already,
                    });
                }
            }
        }
        if scope.is_electing(j) {
            if let Some(best) = node.best_offer(count_already) {
                node.rep_of = Some((best.from, epoch));
                to_send.push((j, Some(best.from), ProtocolMsg::Accept { epoch }));
                if net.telemetry_enabled() {
                    let tick = net.round();
                    net.emit(Event::InviteAccepted {
                        tick,
                        member: j.0,
                        rep: best.from.0,
                        epoch: epoch.0,
                    });
                }
                // A maintenance initiator abandoning a different
                // representative recalls it (best effort; a lost
                // recall leaves a spurious representative behind).
                if let Some(old) = old_rep[j.index()] {
                    if old != best.from {
                        net.unicast(
                            j,
                            old,
                            ProtocolMsg::Recall,
                            ProtocolMsg::Recall.wire_bytes(),
                            Phase::Refinement,
                        );
                    }
                }
            }
            // No offers: rep_of stays None; Rule 1 will set ACTIVE.
        }
    }
    for (j, dst, msg) in to_send.drain(..) {
        // Acceptances are only queued with a chosen representative; a
        // destination-less entry is dropped rather than panicking.
        let Some(rep) = dst else { continue };
        let bytes = msg.wire_bytes();
        net.unicast(j, rep, msg, bytes, Phase::Accept);
    }
    net.deliver();

    // Acceptances arrive.
    for &i in &ids {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        let node = &mut nodes[i.index()];
        for d in inbox.drain(..) {
            if !d.addressed {
                continue;
            }
            match d.payload {
                ProtocolMsg::Accept { epoch: e } => {
                    node.represents.insert(d.from, e);
                    // In a maintenance election an already-settled node
                    // (possibly PASSIVE) gaining a member must serve it.
                    if !matches!(scope, Scope::Full) && node.mode == Mode::Passive {
                        node.mode = Mode::Active;
                    }
                }
                ProtocolMsg::Recall => {
                    node.represents.remove(&d.from);
                }
                _ => {}
            }
        }
    }

    net.close_span(accept_span);

    // ---- Phase 4: refinement (Rules 0-4) --------------------------------
    let refine_span = net.open_span(SpanKind::ElectionRefine);
    let tick = net.round();
    net.emit(Event::ElectionPhase {
        tick,
        epoch: epoch.0,
        phase: Phase::Refinement,
    });
    let hard_cap = cfg.max_wait + 16;
    let mut rounds = 0u32;
    for round in 0..hard_cap {
        rounds = round + 1;
        // Rules pass.
        for &i in &ids {
            if !net.is_alive(i) {
                continue;
            }
            let node = &mut nodes[i.index()];

            // Rule 0: mutual representation — the stronger candidate
            // (longer list, then larger id) goes ACTIVE.
            if node.mode == Mode::Undefined {
                if let Some((j, _)) = node.rep_of {
                    if j != i && node.represents.contains_key(&j) {
                        let mine = (node.cand_list.len(), i);
                        let theirs = (node.heard_len(j), j);
                        if mine > theirs {
                            node.mode = Mode::Active;
                            node.waiting_ack_from = None;
                        }
                    }
                }
            }

            // Rule 1: nodes that are not represented stay active.
            if node.mode == Mode::Undefined && node.rep_of.is_none() {
                node.mode = Mode::Active;
                node.waiting_ack_from = None;
            }

            // Rule 2: an ACTIVE node recalls its (now redundant)
            // representative.
            if node.mode == Mode::Active && !node.sent_recall {
                if let Some((j, _)) = node.rep_of {
                    if j != i {
                        node.sent_recall = true;
                        node.rep_of = None;
                        to_send.push((i, Some(j), ProtocolMsg::Recall));
                    }
                }
            }

            // Rule 3: represented, representing nobody -> go passive.
            // If the representative has already been overheard
            // acknowledging this node as a member, it is ACTIVE and
            // aware of us: go PASSIVE with no further exchange.
            // Otherwise ask it to stay active and await the
            // acknowledgment broadcast, re-sending the notification
            // every other round while still waiting (retries only
            // happen when loss ate the handshake; under perfect links
            // the first acknowledgment lands before the cooldown
            // expires).
            if node.mode == Mode::Undefined && node.represents.is_empty() {
                if let Some((j, _)) = node.rep_of {
                    if node.acked_reps.contains(&j) {
                        node.mode = Mode::Passive;
                        node.waiting_ack_from = None;
                    } else if node.notify_cooldown == 0 {
                        node.waiting_ack_from = Some(j);
                        node.notify_cooldown = 1;
                        to_send.push((i, Some(j), ProtocolMsg::StayActive));
                    } else {
                        node.notify_cooldown -= 1;
                    }
                }
            }

            // Rule 4: timeout. A node stuck UNDEFINED past MAX_WAIT
            // flips ACTIVE with probability P_wait per round, avoiding
            // a synchronized stampede.
            if node.mode == Mode::Undefined {
                node.rounds_undefined += 1;
                if node.rounds_undefined > cfg.max_wait && rng.random_bool(cfg.p_wait) {
                    node.mode = Mode::Active;
                    node.waiting_ack_from = None;
                    node.forced_active = true;
                }
            }
        }

        // Send rule messages (Recall / StayActive are unicasts to the
        // representative recorded when the rule fired).
        for (i, dst, msg) in to_send.drain(..) {
            let bytes = msg.wire_bytes();
            match dst {
                Some(t) => net.unicast(i, t, msg, bytes, Phase::Refinement),
                None => net.broadcast(i, msg, bytes, Phase::Refinement),
            }
        }

        // Representatives acknowledge the members that asked them to
        // stay active: one broadcast listing everyone they represent
        // (the paper's footnote-optimized acknowledgment). The
        // broadcast fires only when a StayActive arrived this round,
        // and waiting members remember *any* overheard member list, so
        // under perfect links every representative broadcasts at most
        // once; repeats happen only when loss forces notify retries.
        for &i in &ids {
            if !net.is_alive(i) {
                continue;
            }
            let node = &mut nodes[i.index()];
            if !node.pending_ack_members.is_empty() {
                node.pending_ack_members.clear();
                let msg = ProtocolMsg::RepresentAck {
                    members: node.members().collect(),
                };
                let bytes = msg.wire_bytes();
                net.broadcast(i, msg, bytes, Phase::Refinement);
            }
        }

        let delivered = net.deliver();

        // Process refinement traffic.
        for &i in &ids {
            if !net.is_alive(i) {
                net.clear_inbox(i);
                continue;
            }
            net.take_inbox_into(i, &mut inbox);
            let node = &mut nodes[i.index()];
            for d in inbox.drain(..) {
                match d.payload {
                    ProtocolMsg::Recall if d.addressed => {
                        node.represents.remove(&d.from);
                    }
                    ProtocolMsg::StayActive if d.addressed => {
                        if node.mode == Mode::Passive {
                            // The paper forbids PASSIVE -> ACTIVE flips
                            // during refinement; the sender will time
                            // out via Rule 4.
                            continue;
                        }
                        // A StayActive implies "you represent me" — it
                        // recovers acceptances lost on the way.
                        node.represents.entry(d.from).or_insert(epoch);
                        node.mode = Mode::Active;
                        node.waiting_ack_from = None;
                        node.pending_ack_members.push(d.from);
                    }
                    ProtocolMsg::RepresentAck { members } => {
                        if members.contains(&i) {
                            // Remember the claim; Rule 3 may use it in
                            // a later round even if we are not waiting
                            // for it yet.
                            node.acked_reps.insert(d.from);
                        }
                        if node.mode == Mode::Undefined
                            && node.waiting_ack_from == Some(d.from)
                            && members.contains(&i)
                        {
                            node.mode = Mode::Passive;
                            node.waiting_ack_from = None;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Converged? No undefined node and no traffic in flight.
        let any_undefined = ids
            .iter()
            .any(|&i| net.is_alive(i) && nodes[i.index()].mode == Mode::Undefined);
        let any_pending_ack = ids
            .iter()
            .any(|&i| net.is_alive(i) && !nodes[i.index()].pending_ack_members.is_empty());
        if !any_undefined && !any_pending_ack && delivered == 0 && net.pending() == 0 {
            break;
        }
    }
    net.close_span(refine_span);

    // Safety valve: anything still undefined after the hard cap goes
    // ACTIVE (the conservative choice — it can only improve accuracy).
    for &i in &ids {
        if net.is_alive(i) && nodes[i.index()].mode == Mode::Undefined {
            nodes[i.index()].mode = Mode::Active;
            nodes[i.index()].waiting_ack_from = None;
            nodes[i.index()].forced_active = true;
        }
    }

    let mut active = 0;
    let mut passive = 0;
    let mut forced = 0;
    for &i in &ids {
        if !net.is_alive(i) {
            continue;
        }
        match nodes[i.index()].mode {
            Mode::Active => active += 1,
            Mode::Passive => {
                passive += 1;
                // Record the standing representation link.
                if net.telemetry_enabled() {
                    if let Some((rep, _)) = nodes[i.index()].rep_of {
                        let tick = net.round();
                        net.emit(Event::Represented {
                            tick,
                            member: i.0,
                            rep: rep.0,
                            epoch: epoch.0,
                        });
                    }
                }
            }
            // The safety valve above forces every live node out of
            // Undefined; should that invariant ever break, degrade to
            // ACTIVE (the paper's Rule 1 default) instead of aborting
            // the simulation.
            Mode::Undefined => {
                nodes[i.index()].mode = Mode::Active;
                active += 1;
            }
        }
        if nodes[i.index()].forced_active {
            forced += 1;
        }
    }

    net.close_span(election_span);

    ElectionOutcome {
        epoch,
        refinement_rounds: rounds,
        snapshot_size: active,
        passive,
        forced_active: forced,
    }
}

#[cfg(test)]
mod tests {
    // Engine behaviour is exercised end-to-end in `network.rs` tests
    // and the integration suite; unit tests here cover the pure
    // helpers.
    use super::*;

    #[test]
    fn scope_membership() {
        let ids = [NodeId(1), NodeId(3)];
        let p = Scope::Partial(&ids);
        assert!(p.is_electing(NodeId(1)));
        assert!(!p.is_electing(NodeId(2)));
        assert!(Scope::Full.is_electing(NodeId(99)));
    }
}
