//! The protocol's wire messages.
//!
//! One payload type covers every protocol the framework runs —
//! election, maintenance, data reporting and tree formation — so a
//! single [`snapshot_netsim::Network`] carries all traffic and the
//! per-phase statistics stay comparable to the paper's Table 2.

use snapshot_netsim::clock::Epoch;
use snapshot_netsim::flood::FloodToken;
use snapshot_netsim::NodeId;

/// Every message the snapshot framework exchanges.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolMsg {
    /// "I am looking for a representative" — carries the sender's
    /// current measurement so receivers can test their models.
    Invite {
        /// The sender's current measurement `x_j(t)`.
        value: f64,
        /// Election epoch (time-stamps representative claims).
        epoch: Epoch,
    },
    /// The sender's candidate list: nodes it can represent within the
    /// threshold, plus how many nodes it already represents
    /// (the maintenance-mode score component).
    Candidates {
        /// Nodes the sender can represent.
        cand: Vec<NodeId>,
        /// Nodes the sender already represents.
        already: usize,
    },
    /// Unicast: "I accept you as my representative."
    Accept {
        /// Epoch of the acceptance.
        epoch: Epoch,
    },
    /// Unicast: "you need not represent me" (Rule 2 / re-election).
    Recall,
    /// Unicast: "I am going passive; you must stay active" (Rule 3).
    StayActive,
    /// Broadcast acknowledgment: the full member list of the sender;
    /// a member hearing itself listed may go PASSIVE.
    RepresentAck {
        /// All nodes the sender represents.
        members: Vec<NodeId>,
    },
    /// Unicast heartbeat from a passive node to its representative,
    /// carrying the current measurement (Section 5.1).
    Heartbeat {
        /// The sender's current measurement.
        value: f64,
    },
    /// Unicast reply to a heartbeat: the representative's estimate of
    /// the member's measurement.
    Estimate {
        /// The estimate `x̂_j(t)`.
        value: f64,
    },
    /// A measurement broadcast in response to a query (the traffic
    /// neighbors snoop on to build models).
    Data {
        /// The sender's measurement.
        value: f64,
    },
    /// Aggregation-tree formation (TAG-style flooding).
    Flood(FloodToken),
    /// A partial aggregate flowing up the aggregation tree during
    /// message-level TAG execution (Section 6.2's in-network
    /// aggregation). Carries the algebraic decomposition every
    /// SQL aggregate in the dialect can be rebuilt from.
    Partial {
        /// Sum of contributing values.
        sum: f64,
        /// Number of contributing values.
        count: u64,
        /// Minimum contributing value (+inf when empty).
        min: f64,
        /// Maximum contributing value (-inf when empty).
        max: f64,
    },
    /// Broadcast by a representative whose battery is low: members
    /// must find themselves a new representative (Section 5.1).
    EnergyHandoff,
}

impl ProtocolMsg {
    /// Approximate wire size in bytes (for accounting; 4-byte floats
    /// and ids, matching the paper's cache accounting).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            ProtocolMsg::Invite { .. } => 8,
            ProtocolMsg::Candidates { cand, .. } => 8 + 4 * cand.len() as u32,
            ProtocolMsg::Accept { .. } => 8,
            ProtocolMsg::Recall => 4,
            ProtocolMsg::StayActive => 4,
            ProtocolMsg::RepresentAck { members } => 4 + 4 * members.len() as u32,
            ProtocolMsg::Heartbeat { .. } => 8,
            ProtocolMsg::Estimate { .. } => 8,
            ProtocolMsg::Data { .. } => 8,
            ProtocolMsg::Flood(_) => 8,
            ProtocolMsg::Partial { .. } => 20,
            ProtocolMsg::EnergyHandoff => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_lists_grow_on_the_wire() {
        let short = ProtocolMsg::Candidates {
            cand: vec![],
            already: 0,
        };
        let long = ProtocolMsg::Candidates {
            cand: vec![NodeId(1), NodeId(2), NodeId(3)],
            already: 0,
        };
        assert!(long.wire_bytes() > short.wire_bytes());
        assert_eq!(long.wire_bytes() - short.wire_bytes(), 12);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(ProtocolMsg::Recall.wire_bytes() <= 8);
        assert!(ProtocolMsg::StayActive.wire_bytes() <= 8);
        assert!(ProtocolMsg::EnergyHandoff.wire_bytes() <= 8);
    }
}
