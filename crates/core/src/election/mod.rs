//! Discovery and maintenance of representative nodes (Section 5).
//!
//! The election is a localized protocol of at most five messages per
//! node (six during maintenance, counting the heartbeat exchange):
//!
//! | Phase             | Msgs | What happens                                    |
//! |-------------------|------|-------------------------------------------------|
//! | Invitation        | 1    | every node broadcasts its current measurement   |
//! | Model evaluation  | 1    | nodes broadcast the candidate lists they built  |
//! | Initial selection | 1    | each node accepts the best candidate            |
//! | Refinement        | 0–2  | Rules 0–4 (Figure 5) settle ACTIVE/PASSIVE      |
//!
//! The engine executes these phases as real messages over the lossy
//! simulator broadcast, so loss perturbs candidate lists, acceptances
//! and recalls exactly as it would in a deployment — the effect the
//! paper quantifies in Figures 7 and 13.

mod engine;
mod messages;

pub use engine::{run_full_election, run_maintenance_election, ElectionOutcome};
pub use messages::ProtocolMsg;
