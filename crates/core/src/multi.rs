//! Multi-query threshold sharing (Section 3.1).
//!
//! "Given queries `Q1, Q2, ...` with error thresholds `T1 <= T2 <= ...`
//! we can obtain a single set of representatives (snapshot) for the
//! most tight threshold `T1` and use them for answering all other
//! queries." Correctness follows from the threshold check being an
//! upper bound: a representative that satisfies `d(x_j, x̂_j) <= T1`
//! satisfies every looser `T >= T1` with the same estimate.
//!
//! [`ThresholdLadder`] is the planning half: it registers the
//! thresholds of the active continuous queries and answers "which
//! threshold must the shared snapshot be elected at?" (the minimum)
//! and "would admitting this new query force a re-election?" (only
//! when its threshold undercuts the current tightest). The savings
//! are concrete: each avoided re-election saves an election cycle of
//! up to ~5 messages per node.

use std::collections::BTreeMap;

/// Tracks the thresholds of the running queries and the threshold the
/// shared snapshot was elected at.
///
/// ```
/// use snapshot_core::{SnapshotAction, ThresholdLadder};
///
/// let mut ladder = ThresholdLadder::new();
/// assert_eq!(ladder.register(1.0), SnapshotAction::ElectAt(1.0));
/// ladder.mark_elected(1.0);
/// // Looser queries reuse the standing snapshot...
/// assert_eq!(ladder.register(5.0), SnapshotAction::Reuse);
/// // ...a tighter one forces a re-election at the new minimum.
/// assert_eq!(ladder.register(0.25), SnapshotAction::ElectAt(0.25));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThresholdLadder {
    /// threshold bits -> reference count (ordered map keyed by the
    /// threshold's bit pattern; thresholds are finite and positive, so
    /// the bit order matches the numeric order).
    queries: BTreeMap<u64, usize>,
    /// The threshold the current snapshot was elected at, if any.
    elected_at: Option<f64>,
}

/// What the planner asks the network to do when a query arrives or
/// departs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotAction {
    /// The current snapshot already serves every registered query.
    Reuse,
    /// A (re-)election at the given threshold is required.
    ElectAt(f64),
}

impl ThresholdLadder {
    /// An empty ladder.
    pub fn new() -> Self {
        ThresholdLadder::default()
    }

    fn key(t: f64) -> u64 {
        assert!(
            t.is_finite() && t > 0.0,
            "thresholds must be positive and finite, got {t}"
        );
        t.to_bits()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.values().sum()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The tightest registered threshold, if any.
    pub fn tightest(&self) -> Option<f64> {
        self.queries.keys().next().map(|&bits| f64::from_bits(bits))
    }

    /// The threshold the current snapshot was elected at.
    pub fn elected_at(&self) -> Option<f64> {
        self.elected_at
    }

    /// Register a query with threshold `t`. Returns what the network
    /// must do: reuse the standing snapshot (because `t` is no tighter
    /// than what it was elected at) or elect at a new threshold.
    pub fn register(&mut self, t: f64) -> SnapshotAction {
        *self.queries.entry(Self::key(t)).or_insert(0) += 1;
        match self.elected_at {
            Some(current) if current <= t => SnapshotAction::Reuse,
            // `tightest()` is `Some` because `t` was just registered;
            // fall back to `t` itself rather than panicking.
            _ => SnapshotAction::ElectAt(self.tightest().unwrap_or(t)),
        }
    }

    /// Deregister a query with threshold `t` (no-op if unknown).
    /// Returns the action that would *optimally* follow: loosening the
    /// snapshot is an optimization (a larger threshold admits fewer
    /// representatives), never a correctness requirement, so the
    /// action is `Reuse` unless the ladder became empty.
    pub fn deregister(&mut self, t: f64) -> SnapshotAction {
        if let Some(count) = self.queries.get_mut(&Self::key(t)) {
            *count -= 1;
            if *count == 0 {
                self.queries.remove(&Self::key(t));
            }
        }
        SnapshotAction::Reuse
    }

    /// Record that the network elected at threshold `t`.
    pub fn mark_elected(&mut self, t: f64) {
        self.elected_at = Some(t);
    }

    /// True when the standing snapshot (if any) serves a query with
    /// threshold `t`.
    pub fn serves(&self, t: f64) -> bool {
        self.elected_at.is_some_and(|e| e <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_query_forces_an_election() {
        let mut l = ThresholdLadder::new();
        assert_eq!(l.register(1.0), SnapshotAction::ElectAt(1.0));
        l.mark_elected(1.0);
        assert!(l.serves(1.0));
        assert!(l.serves(5.0));
        assert!(!l.serves(0.5));
    }

    #[test]
    fn looser_queries_reuse_the_snapshot() {
        let mut l = ThresholdLadder::new();
        l.register(0.5);
        l.mark_elected(0.5);
        assert_eq!(l.register(1.0), SnapshotAction::Reuse);
        assert_eq!(l.register(10.0), SnapshotAction::Reuse);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn tighter_query_forces_a_reelection_at_the_new_minimum() {
        let mut l = ThresholdLadder::new();
        l.register(2.0);
        l.mark_elected(2.0);
        assert_eq!(l.register(0.25), SnapshotAction::ElectAt(0.25));
        l.mark_elected(0.25);
        assert_eq!(l.tightest(), Some(0.25));
    }

    #[test]
    fn deregistration_never_requires_a_reelection() {
        let mut l = ThresholdLadder::new();
        l.register(0.5);
        l.register(0.5);
        l.register(2.0);
        l.mark_elected(0.5);
        assert_eq!(l.deregister(0.5), SnapshotAction::Reuse);
        assert_eq!(l.len(), 2);
        // Refcounting: the second 0.5 query still holds the threshold.
        assert_eq!(l.tightest(), Some(0.5));
        l.deregister(0.5);
        assert_eq!(l.tightest(), Some(2.0));
        // The snapshot elected at 0.5 still (over-)serves T = 2.
        assert!(l.serves(2.0));
    }

    #[test]
    fn deregistering_unknown_thresholds_is_a_noop() {
        let mut l = ThresholdLadder::new();
        l.register(1.0);
        l.deregister(3.0);
        assert_eq!(l.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_thresholds_are_rejected() {
        let mut l = ThresholdLadder::new();
        l.register(0.0);
    }
}
