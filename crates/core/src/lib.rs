//! # snapshot-core
//!
//! The primary contribution of *Kotidis, "Snapshot Queries: Towards
//! Data-Centric Sensor Networks" (ICDE 2005)*, implemented as a
//! library over the [`snapshot_netsim`] simulator:
//!
//! * [`metrics`] — the application-chosen error metric `d()`.
//! * [`model`] — per-neighbor linear correlation models (Lemma 1).
//! * [`cache`] — the byte-budgeted, model-aware cache manager
//!   (Section 4).
//! * [`election`] — the localized representative-election protocol:
//!   invitation, model evaluation, initial selection and the
//!   refinement Rules 0–4 (Section 5, Figures 2/3/4/5).
//! * [`maintenance`] — heartbeats, re-election on failure or model
//!   drift, spurious-representative accounting, energy-aware handoff
//!   (Section 5.1).
//! * [`snapshot`] — the network snapshot: who represents whom, with
//!   election epochs for reconciling stale claims.
//! * [`sensor`] — the per-node state machine tying the above together.
//! * [`network`] — `SensorNetwork`, the orchestration facade driving a
//!   whole deployment through training, election, maintenance and
//!   queries.
//! * [`query`] — snapshot query execution: spatial predicates,
//!   aggregates and drill-through over the representative set, plus the
//!   regular (every-node) baseline.
//! * [`checkpoint`] — frozen deployment images: extraction, pure
//!   time-travel execution (`AS OF`) and crash-restart rehydration,
//!   persisted by the `snapshot-store` crate.
//!
//! The protocol implementations are message-passing programs over the
//! simulator's lossy broadcast — not oracles with global knowledge —
//! so the paper's robustness experiments (message loss, node death)
//! exercise the very code paths a deployment would run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod coverage;
pub mod election;
pub mod error;
pub mod maintenance;
pub mod metrics;
pub mod model;
pub mod multi;
pub mod network;
pub mod query;
pub mod sensor;
pub mod snapshot;
pub(crate) mod trace;

pub use cache::{CacheConfig, CacheDecision, CachePolicy, LineKey, MeasurementId, ModelCache};
pub use checkpoint::{execute_at, CheckpointState, LineCheckpoint, NodeCheckpoint, QualitySummary};
pub use config::SnapshotConfig;
pub use coverage::CoverageTracker;
pub use election::{ElectionOutcome, ProtocolMsg};
pub use error::CoreError;
pub use maintenance::{MaintenanceReport, RepairRecord, RepairTracker};
pub use metrics::ErrorMetric;
pub use model::{LinearModel, SuffStats};
pub use multi::{SnapshotAction, ThresholdLadder};
pub use network::SensorNetwork;
pub use query::{
    execute_tag, Aggregate, Comparison, QueryMode, QueryResult, SnapshotQuery, SpatialPredicate,
    TagResult, ValueFilter,
};
pub use sensor::{Mode, SensorNode};
pub use snapshot::Snapshot;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::cache::{
        CacheConfig, CacheDecision, CachePolicy, LineKey, MeasurementId, ModelCache,
    };
    pub use crate::checkpoint::{execute_at, CheckpointState, QualitySummary};
    pub use crate::config::SnapshotConfig;
    pub use crate::coverage::CoverageTracker;
    pub use crate::election::{ElectionOutcome, ProtocolMsg};
    pub use crate::error::CoreError;
    pub use crate::maintenance::{MaintenanceReport, RepairRecord, RepairTracker};
    pub use crate::metrics::ErrorMetric;
    pub use crate::model::{LinearModel, SuffStats};
    pub use crate::multi::{SnapshotAction, ThresholdLadder};
    pub use crate::network::SensorNetwork;
    pub use crate::query::{
        Aggregate, Comparison, QueryMode, QueryResult, SnapshotQuery, SpatialPredicate, ValueFilter,
    };
    pub use crate::sensor::{Mode, SensorNode};
    pub use crate::snapshot::Snapshot;
}
