//! Linear correlation models (Lemma 1 of the paper).
//!
//! Node `N_i` models its neighbor `N_j`'s measurement as a linear
//! projection of its own: `x̂_j(t) = a_{i,j} * x_i(t) + b_{i,j}`. For the
//! sum-squared error the optimal `(a, b)` is the least-squares
//! regression line over the cached pairs (Lemma 1); the degenerate case
//! — constant `x_i`, including a single pair — falls back to
//! `a = 0, b = mean(x_j)`.
//!
//! Fits and error evaluations run in O(1) from *sufficient statistics*
//! `(n, Σx, Σy, Σxy, Σx², Σy²)` maintained incrementally by the cache
//! line; [`SuffStats::from_pairs`] provides the recompute-from-scratch
//! path that property tests check the incremental path against.

use crate::error::CoreError;

/// Sufficient statistics of a set of `(x, y)` pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuffStats {
    /// Number of pairs.
    pub n: u32,
    /// Σx
    pub sx: f64,
    /// Σy
    pub sy: f64,
    /// Σxy
    pub sxy: f64,
    /// Σx²
    pub sxx: f64,
    /// Σy²
    pub syy: f64,
}

impl SuffStats {
    /// Empty statistics.
    pub fn new() -> Self {
        SuffStats::default()
    }

    /// Recompute from raw pairs (the reference implementation).
    pub fn from_pairs<'a, I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = &'a (f64, f64)>,
    {
        let mut s = SuffStats::new();
        for &(x, y) in pairs {
            s.add(x, y);
        }
        s
    }

    /// Add a pair.
    #[inline]
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxy += x * y;
        self.sxx += x * x;
        self.syy += y * y;
    }

    /// Remove a pair previously added.
    ///
    /// # Panics
    /// Panics when the statistics are already empty.
    #[inline]
    pub fn remove(&mut self, x: f64, y: f64) {
        assert!(self.n > 0, "removing from empty statistics");
        self.n -= 1;
        self.sx -= x;
        self.sy -= y;
        self.sxy -= x * y;
        self.sxx -= x * x;
        self.syy -= y * y;
    }

    /// Statistics of `self` with one extra pair (non-destructive).
    #[inline]
    pub fn with(&self, x: f64, y: f64) -> Self {
        let mut s = *self;
        s.add(x, y);
        s
    }

    /// Statistics of `self` minus one pair (non-destructive).
    #[inline]
    pub fn without(&self, x: f64, y: f64) -> Self {
        let mut s = *self;
        s.remove(x, y);
        s
    }

    /// Fit the Lemma 1 least-squares line.
    pub fn fit(&self) -> LinearModel {
        LinearModel::fit(self)
    }

    /// Mean squared error of predicting every cached `y` as
    /// `a*x + b`, i.e. the paper's `sse(c, a, b)` (which it defines as
    /// an *average* over the cache line). Returns 0 for empty stats.
    ///
    /// Expansion: `Σ(y - a x - b)² =
    /// Σy² + a²Σx² + n b² - 2aΣxy - 2bΣy + 2abΣx`.
    pub fn sse(&self, model: &LinearModel) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let (a, b) = (model.a, model.b);
        let total = self.syy + a * a * self.sxx + self.n as f64 * b * b
            - 2.0 * a * self.sxy
            - 2.0 * b * self.sy
            + 2.0 * a * b * self.sx;
        // Cancellation can leave a tiny negative residue.
        (total / self.n as f64).max(0.0)
    }

    /// Mean squared error of the *no-answer* policy (no model, no
    /// estimate): the paper scores an unanswerable `x_j` as `x_j²`,
    /// i.e. an implicit estimate of zero.
    pub fn no_answer_sse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.syy / self.n as f64
        }
    }

    /// The paper's `benefit(c, a, b) = no_answer_sse(c) - sse(c, a, b)`:
    /// expected gain of using the model over having no estimate at all.
    pub fn benefit(&self, model: &LinearModel) -> f64 {
        self.no_answer_sse() - self.sse(model)
    }
}

/// A fitted line `x̂_j = a * x_i + b`.
///
/// ```
/// use snapshot_core::{LinearModel, SuffStats};
///
/// // Fit the paper's Lemma 1 least-squares line over cached pairs.
/// let stats = SuffStats::from_pairs(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]);
/// let model = stats.fit();
/// assert!((model.a - 2.0).abs() < 1e-9);
/// assert!((model.b - 1.0).abs() < 1e-9);
/// assert!((model.predict(10.0) - 21.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Slope `a_{i,j}`.
    pub a: f64,
    /// Intercept `b_{i,j}`.
    pub b: f64,
}

impl LinearModel {
    /// The model predicting a constant.
    pub fn constant(b: f64) -> Self {
        LinearModel { a: 0.0, b }
    }

    /// Fit the optimal parameters of Lemma 1:
    ///
    /// `a* = (n Σxy - Σx Σy) / (n Σx² - (Σx)²)`,
    /// `b* = (Σy - a* Σx) / n`.
    ///
    /// When `x` is constant (including `n <= 1`) the denominator
    /// vanishes and the optimal fallback is `a = 0, b = mean(y)`;
    /// empty statistics yield the zero model (equivalent to the
    /// no-answer policy). Use [`LinearModel::try_fit`] when the caller
    /// must distinguish a genuine regression from the fallback.
    pub fn fit(stats: &SuffStats) -> Self {
        match LinearModel::try_fit(stats) {
            Ok(model) => model,
            Err(CoreError::DegenerateFit { mean_y, .. }) => LinearModel::constant(mean_y),
            Err(_) => LinearModel::constant(0.0),
        }
    }

    /// Like [`LinearModel::fit`], but surfaces the degenerate case
    /// (zero x-variance, including `n <= 1` and empty statistics) as
    /// [`CoreError::DegenerateFit`] instead of silently falling back
    /// to a constant model. The error carries the mean of `y` so the
    /// caller can still degrade explicitly.
    pub fn try_fit(stats: &SuffStats) -> Result<Self, CoreError> {
        if stats.n == 0 {
            return Err(CoreError::DegenerateFit { n: 0, mean_y: 0.0 });
        }
        let n = stats.n as f64;
        let denom = n * stats.sxx - stats.sx * stats.sx;
        // Guard against x-variance that is zero or pure rounding noise
        // relative to the magnitude of the data.
        let scale = (n * stats.sxx).abs().max(stats.sx * stats.sx);
        if denom.abs() <= scale * 1e-12 {
            return Err(CoreError::DegenerateFit {
                n: stats.n,
                mean_y: stats.sy / n,
            });
        }
        let a = (n * stats.sxy - stats.sx * stats.sy) / denom;
        let b = (stats.sy - a * stats.sx) / n;
        Ok(LinearModel { a, b })
    }

    /// Predict `x̂_j` from `x_i`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.a * x + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_pairs(pairs: &[(f64, f64)]) -> LinearModel {
        SuffStats::from_pairs(pairs).fit()
    }

    #[test]
    fn exact_line_is_recovered() {
        // y = 3x - 2, no noise.
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let m = fit_pairs(&pairs);
        assert!((m.a - 3.0).abs() < 1e-9, "a = {}", m.a);
        assert!((m.b + 2.0).abs() < 1e-9, "b = {}", m.b);
        assert!((m.predict(100.0) - 298.0).abs() < 1e-6);
    }

    #[test]
    fn constant_x_falls_back_to_mean_of_y() {
        let pairs = [(2.0, 1.0), (2.0, 3.0), (2.0, 5.0)];
        let m = fit_pairs(&pairs);
        assert_eq!(m.a, 0.0);
        assert!((m.b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_pair_predicts_that_pairs_y() {
        let m = fit_pairs(&[(7.0, 4.5)]);
        assert_eq!(m.a, 0.0);
        assert!((m.b - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_give_the_zero_model() {
        let m = LinearModel::fit(&SuffStats::new());
        assert_eq!(m, LinearModel::constant(0.0));
    }

    #[test]
    fn least_squares_beats_any_other_line_on_sse() {
        let pairs = [(0.0, 1.0), (1.0, 2.9), (2.0, 5.2), (3.0, 6.8), (4.0, 9.1)];
        let stats = SuffStats::from_pairs(&pairs);
        let best = stats.fit();
        let best_sse = stats.sse(&best);
        for da in [-0.5, -0.1, 0.1, 0.5] {
            for db in [-0.5, -0.1, 0.1, 0.5] {
                let other = LinearModel {
                    a: best.a + da,
                    b: best.b + db,
                };
                assert!(
                    stats.sse(&other) >= best_sse - 1e-9,
                    "perturbed line beat the least-squares fit"
                );
            }
        }
    }

    #[test]
    fn sse_expansion_matches_direct_computation() {
        let pairs = [(1.0, 2.0), (2.5, -1.0), (4.0, 8.0), (0.5, 0.25)];
        let stats = SuffStats::from_pairs(&pairs);
        let m = LinearModel { a: 1.2, b: -0.7 };
        let direct: f64 = pairs
            .iter()
            .map(|&(x, y)| {
                let e = y - m.predict(x);
                e * e
            })
            .sum::<f64>()
            / pairs.len() as f64;
        assert!((stats.sse(&m) - direct).abs() < 1e-9);
    }

    #[test]
    fn no_answer_sse_is_mean_square_of_y() {
        let pairs = [(0.0, 3.0), (1.0, -4.0)];
        let stats = SuffStats::from_pairs(&pairs);
        assert!((stats.no_answer_sse() - (9.0 + 16.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn benefit_is_positive_when_the_model_helps() {
        let pairs: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 10.0 + i as f64)).collect();
        let stats = SuffStats::from_pairs(&pairs);
        let m = stats.fit();
        assert!(stats.benefit(&m) > 0.0);
        // The optimal model's benefit dominates the constant-zero model's.
        assert!(stats.benefit(&m) >= stats.benefit(&LinearModel::constant(0.0)));
    }

    #[test]
    fn add_remove_roundtrip_restores_stats() {
        let mut s = SuffStats::from_pairs(&[(1.0, 2.0), (3.0, 4.0)]);
        let before = s;
        s.add(5.0, 6.0);
        s.remove(5.0, 6.0);
        assert!((s.sx - before.sx).abs() < 1e-12);
        assert!((s.sxy - before.sxy).abs() < 1e-12);
        assert_eq!(s.n, before.n);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn removing_from_empty_stats_panics() {
        SuffStats::new().remove(1.0, 1.0);
    }

    #[test]
    fn with_without_are_non_destructive() {
        let s = SuffStats::from_pairs(&[(1.0, 1.0)]);
        let s2 = s.with(2.0, 2.0);
        assert_eq!(s.n, 1);
        assert_eq!(s2.n, 2);
        let s3 = s2.without(2.0, 2.0);
        assert_eq!(s3.n, 1);
        assert!((s3.sx - s.sx).abs() < 1e-12);
    }

    #[test]
    fn try_fit_reports_degenerate_input() {
        let stats = SuffStats::from_pairs(&[(2.0, 1.0), (2.0, 3.0)]);
        match LinearModel::try_fit(&stats) {
            Err(CoreError::DegenerateFit { n, mean_y }) => {
                assert_eq!(n, 2);
                assert!((mean_y - 2.0).abs() < 1e-12);
            }
            other => panic!("expected DegenerateFit, got {other:?}"),
        }
        // The infallible path degrades to the constant the error names.
        assert_eq!(stats.fit(), LinearModel::constant(2.0));
    }

    #[test]
    fn try_fit_succeeds_on_sloped_data() {
        let stats = SuffStats::from_pairs(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]);
        let m = LinearModel::try_fit(&stats).expect("non-degenerate");
        assert!((m.a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sse_of_empty_stats_is_zero() {
        let s = SuffStats::new();
        assert_eq!(s.sse(&LinearModel::constant(5.0)), 0.0);
        assert_eq!(s.no_answer_sse(), 0.0);
    }

    #[test]
    fn near_constant_x_is_treated_as_degenerate() {
        // x varies only by rounding noise relative to its magnitude.
        let x0 = 1.0e9;
        let pairs = [(x0, 1.0), (x0 + 1e-4, 2.0), (x0 - 1e-4, 3.0)];
        let m = fit_pairs(&pairs);
        // Slope from noise would be astronomically steep; the guard
        // must fall back to the mean model.
        assert_eq!(m.a, 0.0);
        assert!((m.b - 2.0).abs() < 1e-9);
    }
}
