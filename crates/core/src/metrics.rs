//! Error metrics.
//!
//! Section 3 of the paper: "Given an error metric `d()` and a threshold
//! value `T`, node `N_i` can represent node `N_j` if
//! `d(x_j, x̂_j) <= T`." The metric is supplied by the application; the
//! paper lists three common choices, all implemented here. All of the
//! paper's experiments use the sum-squared error.

/// The application-chosen error metric `d(actual, estimate)`.
///
/// ```
/// use snapshot_core::ErrorMetric;
///
/// let sse = ErrorMetric::Sse;
/// assert_eq!(sse.d(5.0, 3.0), 4.0);          // (5-3)^2
/// assert!(sse.within(5.0, 4.5, 0.3));        // 0.25 <= T
/// assert!(!sse.within(5.0, 4.0, 0.3));       // 1.0  >  T
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ErrorMetric {
    /// Squared error `(x - x̂)^2` — the paper's default ("sse").
    #[default]
    Sse,
    /// Absolute error `|x - x̂|`.
    Absolute,
    /// Relative error `|x - x̂| / max(s, |x|)`, with `s > 0` a sanity
    /// bound guarding against `x = 0`.
    Relative {
        /// The sanity bound `s`.
        sanity: f64,
    },
}

impl ErrorMetric {
    /// Relative error with the conventional sanity bound of 1.
    pub fn relative() -> Self {
        ErrorMetric::Relative { sanity: 1.0 }
    }

    /// Evaluate `d(actual, estimate)`.
    #[inline]
    pub fn d(&self, actual: f64, estimate: f64) -> f64 {
        match *self {
            ErrorMetric::Sse => {
                let e = actual - estimate;
                e * e
            }
            ErrorMetric::Absolute => (actual - estimate).abs(),
            ErrorMetric::Relative { sanity } => {
                debug_assert!(sanity > 0.0, "sanity bound must be positive");
                (actual - estimate).abs() / sanity.max(actual.abs())
            }
        }
    }

    /// True when the estimate is acceptable under threshold `t`.
    #[inline]
    pub fn within(&self, actual: f64, estimate: f64, t: f64) -> bool {
        self.d(actual, estimate) <= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_squares_the_difference() {
        assert_eq!(ErrorMetric::Sse.d(5.0, 2.0), 9.0);
        assert_eq!(ErrorMetric::Sse.d(2.0, 5.0), 9.0);
        assert_eq!(ErrorMetric::Sse.d(3.0, 3.0), 0.0);
    }

    #[test]
    fn absolute_is_symmetric() {
        assert_eq!(ErrorMetric::Absolute.d(5.0, 2.0), 3.0);
        assert_eq!(ErrorMetric::Absolute.d(2.0, 5.0), 3.0);
    }

    #[test]
    fn relative_normalizes_by_magnitude() {
        let m = ErrorMetric::relative();
        assert!((m.d(10.0, 9.0) - 0.1).abs() < 1e-12);
        // Sanity bound takes over near zero.
        assert!((m.d(0.0, 0.5) - 0.5).abs() < 1e-12);
        let m = ErrorMetric::Relative { sanity: 2.0 };
        assert!((m.d(0.0, 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn within_respects_threshold_boundary() {
        let m = ErrorMetric::Sse;
        assert!(m.within(1.0, 2.0, 1.0)); // d = 1 <= T = 1: inclusive
        assert!(!m.within(1.0, 2.01, 1.0));
    }

    #[test]
    fn default_is_sse_like_the_paper() {
        assert_eq!(ErrorMetric::default(), ErrorMetric::Sse);
    }
}
