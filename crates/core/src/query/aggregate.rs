//! Aggregate functions.

/// SQL-style aggregates over the matching nodes' measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of measurements.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of available measurements.
    Count,
}

impl Aggregate {
    /// Fold an iterator of measurements. Returns `None` for an empty
    /// input on all aggregates except `Count` (which returns 0).
    pub fn apply(&self, values: impl IntoIterator<Item = f64>) -> Option<f64> {
        let mut iter = values.into_iter();
        match self {
            Aggregate::Count => Some(iter.count() as f64),
            Aggregate::Sum => {
                let mut any = false;
                let mut sum = 0.0;
                for v in iter {
                    any = true;
                    sum += v;
                }
                any.then_some(sum)
            }
            Aggregate::Avg => {
                let mut n = 0usize;
                let mut sum = 0.0;
                for v in iter {
                    n += 1;
                    sum += v;
                }
                (n > 0).then(|| sum / n as f64)
            }
            Aggregate::Min => iter.next().map(|first| {
                let mut m = first;
                for v in iter {
                    if v < m {
                        m = v;
                    }
                }
                m
            }),
            Aggregate::Max => iter.next().map(|first| {
                let mut m = first;
                for v in iter {
                    if v > m {
                        m = v;
                    }
                }
                m
            }),
        }
    }

    /// Parse the SQL spelling (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            "COUNT" => Some(Aggregate::Count),
            _ => None,
        }
    }

    /// The canonical SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
            Aggregate::Count => "COUNT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 4] = [3.0, -1.0, 7.0, 1.0];

    #[test]
    fn aggregates_compute_textbook_answers() {
        assert_eq!(Aggregate::Sum.apply(DATA), Some(10.0));
        assert_eq!(Aggregate::Avg.apply(DATA), Some(2.5));
        assert_eq!(Aggregate::Min.apply(DATA), Some(-1.0));
        assert_eq!(Aggregate::Max.apply(DATA), Some(7.0));
        assert_eq!(Aggregate::Count.apply(DATA), Some(4.0));
    }

    #[test]
    fn empty_input_yields_none_except_count() {
        let empty: [f64; 0] = [];
        assert_eq!(Aggregate::Sum.apply(empty), None);
        assert_eq!(Aggregate::Avg.apply(empty), None);
        assert_eq!(Aggregate::Min.apply(empty), None);
        assert_eq!(Aggregate::Max.apply(empty), None);
        assert_eq!(Aggregate::Count.apply(empty), Some(0.0));
    }

    #[test]
    fn parse_roundtrips_names() {
        for agg in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Count,
        ] {
            assert_eq!(Aggregate::parse(agg.name()), Some(agg));
            assert_eq!(Aggregate::parse(&agg.name().to_lowercase()), Some(agg));
        }
        assert_eq!(Aggregate::parse("MEDIAN"), None);
    }
}
