//! Query execution over the sensor network.
//!
//! Execution follows Section 6.2's methodology: an aggregation tree is
//! rooted at the sink (over the currently alive nodes), matching nodes
//! respond through it, and each participant — responder or router —
//! is charged one transmission. The only difference between the two
//! modes is *who responds*:
//!
//! * regular: every alive matching node;
//! * snapshot: unrepresented matching nodes answer for themselves, and
//!   representatives answer for their matching members with model
//!   estimates — so most of the network stays idle.

use super::{QueryMode, SnapshotQuery};
use crate::election::ProtocolMsg;
use crate::sensor::SensorNode;
use crate::snapshot::Snapshot;
use snapshot_netsim::tree::AggregationTree;
use snapshot_netsim::{Network, NodeId, Phase, Topology};
use std::collections::BTreeSet;

/// The outcome of one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Mode the query ran in.
    pub mode: QueryMode,
    /// Nodes that contributed measurements or estimates.
    pub responders: Vec<NodeId>,
    /// Responders plus routers: every node that participated
    /// (the paper's `N_regular` / `N_snapshot`).
    pub participants: usize,
    /// One row per answered target: `(target, value-or-estimate)`.
    pub rows: Vec<(NodeId, f64)>,
    /// The aggregate over `rows` (None for drill-through or when no
    /// rows were available).
    pub value: Option<f64>,
    /// The same aggregate over *all* matching targets' true values —
    /// the infinite-battery, lossless reference.
    pub ground_truth: Option<f64>,
    /// Number of matching targets (alive or dead).
    pub targets: usize,
    /// `rows.len() / targets` — the paper's coverage metric
    /// (1.0 when the region is empty).
    pub coverage: f64,
}

impl QueryResult {
    /// Absolute error of the aggregate against the ground truth, when
    /// both exist.
    pub fn absolute_error(&self) -> Option<f64> {
        Some((self.value? - self.ground_truth?).abs())
    }

    /// Mean squared error of the drill-through rows against the true
    /// values (`None` when no rows).
    pub fn rows_mse(&self, truth: impl Fn(NodeId) -> f64) -> Option<f64> {
        if self.rows.is_empty() {
            return None;
        }
        let sum: f64 = self
            .rows
            .iter()
            .map(|&(id, v)| {
                let e = v - truth(id);
                e * e
            })
            .sum();
        Some(sum / self.rows.len() as f64)
    }
}

/// Rows assembled for one query execution: who answers, with what.
pub(crate) struct CollectedRows {
    /// Nodes that contribute at least one row, in id order.
    pub responders: BTreeSet<NodeId>,
    /// `(target, value-or-estimate)` rows that passed the filters.
    pub rows: Vec<(NodeId, f64)>,
    /// Obtainable measurements pre-value-filter (coverage numerator).
    pub available: usize,
    /// Per-responder contributed values (the local inputs to
    /// in-network aggregation).
    pub contributions: std::collections::BTreeMap<NodeId, Vec<f64>>,
}

/// Determine who answers a query and with which values — shared by
/// the idealized executor and the message-level TAG executor.
pub(crate) fn collect_rows(
    alive: impl Fn(NodeId) -> bool,
    nodes: &[SensorNode],
    values: &[f64],
    query: &SnapshotQuery,
    tree: &AggregationTree,
    snapshot: Option<&Snapshot>,
    targets: &[NodeId],
) -> CollectedRows {
    let mut responders: BTreeSet<NodeId> = BTreeSet::new();
    let mut rows: Vec<(NodeId, f64)> = Vec::new();
    let mut contributions: std::collections::BTreeMap<NodeId, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut available = 0usize;

    // The value filter is evaluated on whatever value would be
    // reported (the true reading in regular mode, the estimate in
    // snapshot mode); a filtered-out row costs no response. The
    // paper's alert-style reading: the representative checks the
    // predicate locally and stays silent when nothing matches.
    let passes = |v: f64| query.value_filter.is_none_or(|f| f.matches(v));
    let mut contribute = |responders: &mut BTreeSet<NodeId>,
                          rows: &mut Vec<(NodeId, f64)>,
                          who: NodeId,
                          target: NodeId,
                          v: f64| {
        responders.insert(who);
        rows.push((target, v));
        contributions.entry(who).or_default().push(v);
    };

    // Snapshot collection needs a built snapshot; when the caller asks
    // for snapshot mode without one, degrade to regular collection
    // (true readings) rather than panicking mid-simulation.
    let snap = match query.mode {
        QueryMode::Regular => None,
        QueryMode::Snapshot => snapshot,
    };
    match snap {
        None => {
            for &t in targets {
                if alive(t) && tree.contains(t) {
                    available += 1;
                    let v = values[t.index()];
                    if passes(v) {
                        contribute(&mut responders, &mut rows, t, t, v);
                    }
                }
            }
        }
        Some(snapshot) => {
            for &t in targets {
                let rep = snapshot.representative_of(t);
                if rep == t {
                    // Unrepresented: the node answers for itself when
                    // it is up, active and reachable.
                    if alive(t) && snapshot.is_active(t) && tree.contains(t) {
                        available += 1;
                        let v = values[t.index()];
                        if passes(v) {
                            contribute(&mut responders, &mut rows, t, t, v);
                        }
                    }
                } else if alive(rep) && tree.contains(rep) {
                    // Represented: the representative estimates the
                    // member's value from its own current measurement.
                    if let Some(est) = nodes[rep.index()].cache.estimate(t, values[rep.index()]) {
                        available += 1;
                        if passes(est) {
                            contribute(&mut responders, &mut rows, rep, t, est);
                        }
                    }
                }
            }
        }
    }

    CollectedRows {
        responders,
        rows,
        available,
        contributions,
    }
}

/// Execute a query against *frozen* network state: a topology, an
/// aliveness predicate, node protocol state and current measurements.
/// Pure — no energy is charged, no clock moves — so the same inputs
/// always produce the same result, which is what lets time-travel
/// (`AS OF`) answers from a checkpoint match a replayed simulation
/// byte-for-byte. Returns the result plus the participant list so the
/// live wrapper can charge energy.
pub fn execute_frozen(
    topology: &Topology,
    alive: impl Fn(NodeId) -> bool,
    nodes: &[SensorNode],
    values: &[f64],
    query: &SnapshotQuery,
    sink: NodeId,
) -> (QueryResult, BTreeSet<NodeId>) {
    debug_assert_eq!(nodes.len(), values.len());
    let snapshot = matches!(query.mode, QueryMode::Snapshot).then(|| Snapshot::from_nodes(nodes));
    let tree = match &snapshot {
        Some(s) if query.prefer_representative_routing => {
            AggregationTree::bfs_preferring(topology, sink, &alive, |id| s.is_active(id))
        }
        _ => AggregationTree::bfs(topology, sink, &alive),
    };
    let targets = query.predicate.targets(topology);
    let collected = collect_rows(
        &alive,
        nodes,
        values,
        query,
        &tree,
        snapshot.as_ref(),
        &targets,
    );
    let CollectedRows {
        responders,
        rows,
        available,
        contributions: _,
    } = collected;

    let responder_list: Vec<NodeId> = responders.iter().copied().collect();
    let participants = tree.participants(&responder_list);

    let value = query
        .aggregate
        .and_then(|a| a.apply(rows.iter().map(|&(_, v)| v)));
    let truth_passes = |v: f64| query.value_filter.is_none_or(|f| f.matches(v));
    let ground_truth = query.aggregate.and_then(|a| {
        a.apply(
            targets
                .iter()
                .map(|t| values[t.index()])
                .filter(|&v| truth_passes(v)),
        )
    });
    let coverage = if targets.is_empty() {
        1.0
    } else {
        available as f64 / targets.len() as f64
    };

    let result = QueryResult {
        mode: query.mode,
        responders: responder_list,
        participants: participants.len(),
        rows,
        value,
        ground_truth,
        targets: targets.len(),
        coverage,
    };
    (result, participants)
}

/// Execute a query with `sink` as the collection point. `values[i]`
/// is `N_i`'s true current measurement. Participants are charged one
/// transmission each and counted under the `"query"` phase.
pub fn execute(
    net: &mut Network<ProtocolMsg>,
    nodes: &[SensorNode],
    values: &[f64],
    query: &SnapshotQuery,
    sink: NodeId,
) -> QueryResult {
    let (result, participants) = execute_frozen(
        net.topology(),
        |id| net.is_alive(id),
        nodes,
        values,
        query,
        sink,
    );

    // Charge each participant one transmission (partial aggregates
    // flowing up the tree) and account it under the "query" phase.
    let tx = net.energy_model().tx_cost;
    for &p in &participants {
        net.charge(p, tx, Phase::Query);
        net.stats_mut().record_send(p, Phase::Query);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::query::{Aggregate, SpatialPredicate};
    use crate::sensor::Mode;
    use snapshot_netsim::clock::Epoch;
    use snapshot_netsim::prelude::*;

    /// Fully connected 4-node network with node 0 representing 1 and 2
    /// via the models y = x (trained on three exact pairs).
    fn setup() -> (Network<ProtocolMsg>, Vec<SensorNode>, Vec<f64>) {
        let topo = Topology::random_uniform(4, 2.0, 21).expect("valid deployment");
        let net = Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 3);
        let mut nodes: Vec<SensorNode> = (0..4)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        for member in [1u32, 2] {
            nodes[member as usize].mode = Mode::Passive;
            nodes[member as usize].rep_of = Some((NodeId(0), Epoch(1)));
            nodes[0].represents.insert(NodeId(member), Epoch(1));
            for &(x, y) in &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)] {
                nodes[0].cache.observe(NodeId(member), x, y);
            }
        }
        let values = vec![10.0, 10.5, 9.5, 20.0];
        (net, nodes, values)
    }

    #[test]
    fn regular_mode_uses_every_alive_target() {
        let (mut net, nodes, values) = setup();
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.responders.len(), 4);
        assert_eq!(r.value, Some(50.0));
        assert_eq!(r.ground_truth, Some(50.0));
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn snapshot_mode_answers_through_representatives() {
        let (mut net, nodes, values) = setup();
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Snapshot);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        // Only nodes 0 and 3 respond; 1 and 2 are estimated as x_0=10.
        assert_eq!(r.responders, vec![NodeId(0), NodeId(3)]);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.value, Some(10.0 + 10.0 + 10.0 + 20.0));
        assert_eq!(r.ground_truth, Some(50.0));
        assert!(r.absolute_error().unwrap() <= 1.0);
        assert!(r.participants <= 4);
    }

    #[test]
    fn snapshot_queries_use_fewer_participants() {
        let (mut net, nodes, values) = setup();
        let q_reg =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular);
        let q_snap =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Snapshot);
        let reg = execute(&mut net, &nodes, &values, &q_reg, NodeId(3));
        let snap = execute(&mut net, &nodes, &values, &q_snap, NodeId(3));
        assert!(snap.participants < reg.participants);
    }

    #[test]
    fn dead_member_is_covered_by_its_representative() {
        let (mut net, nodes, values) = setup();
        net.kill(NodeId(1));
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Snapshot);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        // All four targets still produce rows: node 1 via its rep.
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.coverage, 1.0);

        // Under regular execution the dead node costs coverage.
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Regular);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.rows.len(), 3);
        assert!((r.coverage - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dead_representative_costs_coverage_until_maintenance() {
        let (mut net, nodes, values) = setup();
        net.kill(NodeId(0));
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Snapshot);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        // Members 1 and 2 are passive and their representative is
        // gone: only node 3 answers.
        assert_eq!(r.rows.len(), 1);
        assert!((r.coverage - 0.25).abs() < 1e-12);
    }

    #[test]
    fn participants_are_charged_energy() {
        let topo = Topology::random_uniform(3, 2.0, 4).expect("valid deployment");
        let mut net: Network<ProtocolMsg> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            5.0,
            3,
        );
        let nodes: Vec<SensorNode> = (0..3)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        let values = vec![1.0, 2.0, 3.0];
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Avg, QueryMode::Regular);
        let before: f64 = (0..3).map(|i| net.battery(NodeId(i)).remaining()).sum();
        let r = execute(&mut net, &nodes, &values, &q, NodeId(0));
        let after: f64 = (0..3).map(|i| net.battery(NodeId(i)).remaining()).sum();
        assert_eq!(r.participants, 3);
        assert!(
            (before - after - 3.0).abs() < 1e-9,
            "each participant pays one tx"
        );
        assert_eq!(net.stats().phase_total(Phase::Query), 3);
    }

    #[test]
    fn spatial_predicate_restricts_targets() {
        let (mut net, nodes, values) = setup();
        // Window around node 0's position only.
        let pos = net.topology().position(NodeId(0));
        let q = SnapshotQuery::aggregate(
            SpatialPredicate::window(pos.x, pos.y, 1e-6),
            Aggregate::Count,
            QueryMode::Regular,
        );
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.targets, 1);
        assert_eq!(r.value, Some(1.0));
    }

    #[test]
    fn empty_region_has_full_coverage_and_no_value() {
        let (mut net, nodes, values) = setup();
        let q = SnapshotQuery::aggregate(
            SpatialPredicate::Rect {
                x0: 5.0,
                y0: 5.0,
                x1: 6.0,
                y1: 6.0,
            },
            Aggregate::Sum,
            QueryMode::Regular,
        );
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.targets, 0);
        assert_eq!(r.value, None);
        assert_eq!(r.coverage, 1.0);
        assert_eq!(r.participants, 0);
    }

    #[test]
    fn value_filters_run_on_estimates_in_snapshot_mode() {
        use crate::query::{Comparison, ValueFilter};
        let (mut net, nodes, values) = setup();
        // True values: [10.0, 10.5, 9.5, 20.0]; estimates for 1 and 2
        // are both 10.0 (model y = x on x_0 = 10).
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Snapshot)
            .with_value_filter(ValueFilter::new(Comparison::Gt, 9.9));
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        // Node 2's true value (9.5) fails the filter, but its estimate
        // (10.0) passes: approximate selection includes it.
        assert_eq!(r.rows.len(), 4);
        // Coverage counts obtainable measurements, pre-filter.
        assert_eq!(r.coverage, 1.0);

        // Regular mode filters on true values: 9.5 is excluded.
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Regular)
            .with_value_filter(ValueFilter::new(Comparison::Gt, 9.9));
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn value_filtered_aggregates_use_filtered_ground_truth() {
        use crate::query::{Comparison, ValueFilter};
        let (mut net, nodes, values) = setup();
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Count, QueryMode::Regular)
                .with_value_filter(ValueFilter::new(Comparison::Ge, 10.0));
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        // 10.0, 10.5, 20.0 pass; 9.5 fails.
        assert_eq!(r.value, Some(3.0));
        assert_eq!(r.ground_truth, Some(3.0));
    }

    #[test]
    fn filtered_out_representatives_do_not_respond() {
        use crate::query::{Comparison, ValueFilter};
        let (mut net, nodes, values) = setup();
        // Nothing estimates above 50: no responders at all in
        // snapshot mode except... nothing.
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Count, QueryMode::Snapshot)
                .with_value_filter(ValueFilter::new(Comparison::Gt, 50.0));
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        assert_eq!(r.value, Some(0.0));
        assert!(r.responders.is_empty());
        assert_eq!(r.participants, 0, "a fully-filtered query wakes nobody");
    }

    #[test]
    fn rows_mse_measures_estimate_quality() {
        let (mut net, nodes, values) = setup();
        let q = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Snapshot);
        let r = execute(&mut net, &nodes, &values, &q, NodeId(3));
        let mse = r.rows_mse(|id| values[id.index()]).unwrap();
        // Estimates are 10.0 for true 10.5 / 9.5: mse = (0.25+0.25)/4.
        assert!((mse - 0.125).abs() < 1e-9);
    }
}
