//! Spatial predicates.
//!
//! "For many applications like habitat monitoring, spatial filters may
//! be the most common predicate" (Section 3.1). The paper's query
//! workload draws axis-aligned windows
//! `[x - W/2, x + W/2] x [y - W/2, y + W/2]` around random centers
//! (Section 6.2); [`SpatialPredicate::window`] builds exactly those.

use snapshot_netsim::topology::{Position, Topology};
use snapshot_netsim::NodeId;

/// A spatial filter over node locations.
///
/// ```
/// use snapshot_core::SpatialPredicate;
/// use snapshot_netsim::topology::Position;
///
/// // The paper's W x W query window (area W^2 = 0.01).
/// let window = SpatialPredicate::window(0.5, 0.5, 0.1);
/// assert!(window.matches(Position::new(0.52, 0.48)));
/// assert!(!window.matches(Position::new(0.7, 0.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialPredicate {
    /// Matches every node.
    All,
    /// Axis-aligned rectangle `[x0, x1] x [y0, y1]` (inclusive).
    Rect {
        /// Left edge.
        x0: f64,
        /// Bottom edge.
        y0: f64,
        /// Right edge.
        x1: f64,
        /// Top edge.
        y1: f64,
    },
    /// Disk of radius `r` around `(x, y)`.
    Circle {
        /// Center x.
        x: f64,
        /// Center y.
        y: f64,
        /// Radius.
        r: f64,
    },
}

impl SpatialPredicate {
    /// The paper's query window: a `W x W` square centered at
    /// `(x, y)` (area `W²`).
    pub fn window(x: f64, y: f64, w: f64) -> Self {
        let half = w / 2.0;
        SpatialPredicate::Rect {
            x0: x - half,
            y0: y - half,
            x1: x + half,
            y1: y + half,
        }
    }

    /// True when `pos` satisfies the predicate.
    pub fn matches(&self, pos: Position) -> bool {
        match *self {
            SpatialPredicate::All => true,
            SpatialPredicate::Rect { x0, y0, x1, y1 } => pos.in_rect(x0, y0, x1, y1),
            SpatialPredicate::Circle { x, y, r } => pos.distance(&Position::new(x, y)) <= r,
        }
    }

    /// All nodes (alive or dead) whose position matches.
    pub fn targets(&self, topo: &Topology) -> Vec<NodeId> {
        topo.node_ids()
            .filter(|&id| self.matches(topo.position(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_has_the_papers_geometry() {
        // W² = 0.01 means W = 0.1.
        let p = SpatialPredicate::window(0.5, 0.5, 0.1);
        assert!(p.matches(Position::new(0.5, 0.5)));
        assert!(p.matches(Position::new(0.45, 0.55)));
        assert!(!p.matches(Position::new(0.39, 0.5)));
        assert!(!p.matches(Position::new(0.5, 0.61)));
    }

    #[test]
    fn all_matches_everything() {
        assert!(SpatialPredicate::All.matches(Position::new(-5.0, 42.0)));
    }

    #[test]
    fn circle_uses_euclidean_distance() {
        let p = SpatialPredicate::Circle {
            x: 0.0,
            y: 0.0,
            r: 1.0,
        };
        assert!(p.matches(Position::new(0.6, 0.8))); // exactly on the rim
        assert!(!p.matches(Position::new(0.8, 0.8)));
    }

    #[test]
    fn targets_filter_a_topology() {
        let topo = Topology::grid(4, 0.5); // 16 nodes
        let left = SpatialPredicate::Rect {
            x0: 0.0,
            y0: 0.0,
            x1: 0.5,
            y1: 1.0,
        };
        assert_eq!(left.targets(&topo).len(), 8);
        assert_eq!(SpatialPredicate::All.targets(&topo).len(), 16);
    }
}
