//! Measurement predicates.
//!
//! The paper's "basic queries in sensor networks consist of a
//! SELECT-FROM-WHERE clause"; beyond the spatial filter its example
//! uses, deployments routinely filter on the measured value
//! ("report regions where wind speed exceeds 10 m/s"). Under snapshot
//! execution the filter runs on the representative's *estimate* — an
//! approximate selection whose error is bounded by the election
//! threshold, evaluated without waking a single represented node.

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl Comparison {
    /// Evaluate `value OP threshold`.
    #[inline]
    pub fn eval(&self, value: f64, threshold: f64) -> bool {
        match self {
            Comparison::Lt => value < threshold,
            Comparison::Le => value <= threshold,
            Comparison::Gt => value > threshold,
            Comparison::Ge => value >= threshold,
            Comparison::Eq => value == threshold,
            Comparison::Ne => value != threshold,
        }
    }

    /// The SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
            Comparison::Eq => "=",
            Comparison::Ne => "!=",
        }
    }
}

/// `measurement OP threshold`.
///
/// ```
/// use snapshot_core::{Comparison, ValueFilter};
///
/// let gusty = ValueFilter::new(Comparison::Gt, 10.0);
/// assert!(gusty.matches(12.5));
/// assert!(!gusty.matches(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueFilter {
    /// The comparison.
    pub op: Comparison,
    /// The literal to compare against.
    pub threshold: f64,
}

impl ValueFilter {
    /// Build a filter.
    pub fn new(op: Comparison, threshold: f64) -> Self {
        ValueFilter { op, threshold }
    }

    /// True when `value` passes the filter.
    #[inline]
    pub fn matches(&self, value: f64) -> bool {
        self.op.eval(value, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_follow_their_symbols() {
        assert!(Comparison::Lt.eval(1.0, 2.0));
        assert!(!Comparison::Lt.eval(2.0, 2.0));
        assert!(Comparison::Le.eval(2.0, 2.0));
        assert!(Comparison::Gt.eval(3.0, 2.0));
        assert!(Comparison::Ge.eval(2.0, 2.0));
        assert!(Comparison::Eq.eval(2.0, 2.0));
        assert!(Comparison::Ne.eval(2.5, 2.0));
        assert_eq!(Comparison::Ge.symbol(), ">=");
    }

    #[test]
    fn filter_applies_its_operator() {
        let f = ValueFilter::new(Comparison::Gt, 10.0);
        assert!(f.matches(10.5));
        assert!(!f.matches(10.0));
    }
}
