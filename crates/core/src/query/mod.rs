//! Snapshot query execution (Sections 3.1 and 6.2).
//!
//! A query names a spatial predicate, an optional aggregate (absent
//! for drill-through queries, which return per-node rows), and a mode:
//!
//! * [`QueryMode::Regular`] — every alive node matching the predicate
//!   responds through the aggregation tree (the paper's baseline).
//! * [`QueryMode::Snapshot`] — only representatives respond: a node
//!   contributes when it is unrepresented and matches, or when it
//!   represents a matching node (answering with its model's estimate).
//!
//! The result carries the paper's two headline metrics: the number of
//! *participants* (responders plus routing nodes — Table 3 compares
//! these across modes) and *coverage* (available measurements over
//! the infinite-battery ideal — Figure 10).

mod aggregate;
mod exec;
mod predicate;
pub mod tag;
mod value_filter;

pub use aggregate::Aggregate;
pub use exec::{execute, execute_frozen, QueryResult};
pub use predicate::SpatialPredicate;
pub use tag::{execute_tag, TagResult};
pub use value_filter::{Comparison, ValueFilter};

/// Whether a query runs over all nodes or the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Every matching node responds (no `USE SNAPSHOT`).
    Regular,
    /// Only representatives respond (`USE SNAPSHOT`).
    Snapshot,
}

/// A query against the sensor network.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotQuery {
    /// Which nodes the query addresses.
    pub predicate: SpatialPredicate,
    /// The aggregate to compute; `None` means drill-through
    /// (per-node rows).
    pub aggregate: Option<Aggregate>,
    /// Execution mode.
    pub mode: QueryMode,
    /// Route partial aggregates through representative nodes when a
    /// same-length path exists — the refinement the paper sketches
    /// after Table 3 ("favor ... representative nodes for routing"),
    /// which further reduces the number of participating nodes. Only
    /// meaningful in [`QueryMode::Snapshot`].
    pub prefer_representative_routing: bool,
    /// Optional measurement predicate (`WHERE temperature > 5`).
    /// Under [`QueryMode::Snapshot`] the filter is evaluated on the
    /// representative's *estimate* — the approximate-selection
    /// semantics that make the snapshot useful for alert-style
    /// queries without waking the members.
    pub value_filter: Option<ValueFilter>,
}

impl SnapshotQuery {
    /// An aggregate query.
    pub fn aggregate(predicate: SpatialPredicate, aggregate: Aggregate, mode: QueryMode) -> Self {
        SnapshotQuery {
            predicate,
            aggregate: Some(aggregate),
            mode,
            prefer_representative_routing: false,
            value_filter: None,
        }
    }

    /// A drill-through query returning per-node measurements.
    pub fn drill_through(predicate: SpatialPredicate, mode: QueryMode) -> Self {
        SnapshotQuery {
            predicate,
            aggregate: None,
            mode,
            prefer_representative_routing: false,
            value_filter: None,
        }
    }

    /// Enable representative-favoring routing (see the field docs).
    pub fn with_representative_routing(mut self) -> Self {
        self.prefer_representative_routing = true;
        self
    }

    /// Restrict the query to measurements satisfying the filter.
    pub fn with_value_filter(mut self, filter: ValueFilter) -> Self {
        self.value_filter = Some(filter);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_shape() {
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Snapshot);
        assert_eq!(q.aggregate, Some(Aggregate::Sum));
        let d = SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Regular);
        assert_eq!(d.aggregate, None);
        assert_eq!(d.mode, QueryMode::Regular);
    }
}
