//! Message-level TAG aggregation (Madden et al., reference \[11\] of the
//! paper).
//!
//! [`super::execute`] is the paper's *accounting* model: it computes
//! who would participate and charges them, without simulating the
//! aggregate's journey. This module is the full protocol: the tree is
//! formed by real flooding, and partial aggregates flow leaf-to-root
//! as real unicasts — both subject to message loss, so a dropped
//! partial silently loses an entire subtree, exactly the failure mode
//! that motivated sketch-based robustness work (\[3\] in the paper).
//!
//! Under a lossless link model the TAG result equals the idealized
//! executor's result bit-for-bit (tested); under loss it degrades by
//! whole subtrees.

use super::exec::collect_rows;
use super::{QueryMode, SnapshotQuery};
use crate::election::ProtocolMsg;
use crate::error::CoreError;
use crate::query::Aggregate;
use crate::sensor::SensorNode;
use crate::snapshot::Snapshot;
use snapshot_netsim::flood::{flood, FloodToken};
use snapshot_netsim::tree::AggregationTree;
use snapshot_netsim::{Network, NodeId, Phase};

/// A combinable partial aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partial {
    /// Sum of contributing values.
    pub sum: f64,
    /// Number of contributing values.
    pub count: u64,
    /// Minimum contributing value (`+inf` when empty).
    pub min: f64,
    /// Maximum contributing value (`-inf` when empty).
    pub max: f64,
}

impl Partial {
    /// The identity element.
    pub fn empty() -> Self {
        Partial {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one value in.
    pub fn add_value(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another partial in (associative, commutative).
    pub fn merge(&mut self, other: &Partial) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Extract the final answer for an aggregate function.
    pub fn finish(&self, agg: Aggregate) -> Option<f64> {
        match agg {
            Aggregate::Count => Some(self.count as f64),
            Aggregate::Sum => (self.count > 0).then_some(self.sum),
            Aggregate::Avg => (self.count > 0).then(|| self.sum / self.count as f64),
            Aggregate::Min => (self.count > 0).then_some(self.min),
            Aggregate::Max => (self.count > 0).then_some(self.max),
        }
    }
}

/// Outcome of one message-level TAG execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TagResult {
    /// The aggregate computed at the sink (`None` when no value
    /// reached it).
    pub value: Option<f64>,
    /// Values that actually made it into the sink's partial.
    pub delivered_count: u64,
    /// Values that responders contributed locally (before loss).
    pub contributed_count: u64,
    /// Nodes the formation flood reached.
    pub tree_size: usize,
    /// Messages sent during this execution (flood + partials).
    pub messages: u64,
}

/// Execute an aggregate query as the real TAG protocol: flood-formed
/// tree, per-depth rounds of partial aggregates, loss applied to every
/// message.
///
/// Returns [`CoreError::MissingAggregate`] when the query has no
/// aggregate (drill-through queries do not aggregate in-network).
pub fn execute_tag(
    net: &mut Network<ProtocolMsg>,
    nodes: &[SensorNode],
    values: &[f64],
    query: &SnapshotQuery,
    sink: NodeId,
) -> Result<TagResult, CoreError> {
    let Some(agg) = query.aggregate else {
        return Err(CoreError::MissingAggregate);
    };
    let msgs_before = net.stats().total_sent();

    // 1. Tree formation by real flooding.
    let outcome = flood(
        net,
        sink,
        ProtocolMsg::Flood,
        |p| match p {
            ProtocolMsg::Flood(t) => Some(*t),
            _ => None,
        },
        net.len(),
        Phase::Flood,
    );
    let _ = FloodToken { hops: 0 }; // keep the import honest
    let tree = AggregationTree::from_flood(&outcome);

    // 2. Local contributions (same row logic as the idealized path).
    let snapshot = matches!(query.mode, QueryMode::Snapshot).then(|| Snapshot::from_nodes(nodes));
    let targets = query.predicate.targets(net.topology());
    let collected = collect_rows(
        |id| net.is_alive(id),
        nodes,
        values,
        query,
        &tree,
        snapshot.as_ref(),
        &targets,
    );

    let n = net.len();
    let mut partials: Vec<Partial> = vec![Partial::empty(); n];
    let mut contributed = 0u64;
    for (who, vals) in &collected.contributions {
        for &v in vals {
            partials[who.index()].add_value(v);
            contributed += 1;
        }
    }

    // 3. Leaf-to-root rounds: at each depth (deepest first), nodes
    //    unicast their accumulated partial to their parent; parents
    //    fold in whatever survives the radio.
    let max_depth = (0..n)
        .filter_map(|i| tree.depth(NodeId::from_index(i)))
        .max()
        .unwrap_or(0);
    let mut inbox = Vec::new();
    for depth in (1..=max_depth).rev() {
        let senders: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|&id| tree.depth(id) == Some(depth) && net.is_alive(id))
            .collect();
        for &id in &senders {
            let p = partials[id.index()];
            // Nothing to report and nothing inherited: stay silent
            // (TAG's suppression of empty partials).
            if p.count == 0 {
                continue;
            }
            // A sender at depth > 0 always has a parent in the
            // formation tree; skip (suppress) rather than panic if
            // the tree is ever inconsistent.
            let Some(parent) = tree.parent(id) else {
                continue;
            };
            let msg = ProtocolMsg::Partial {
                sum: p.sum,
                count: p.count,
                min: p.min,
                max: p.max,
            };
            let bytes = msg.wire_bytes();
            net.unicast(id, parent, msg, bytes, Phase::Query);
        }
        net.deliver();
        // Parents (any node above this depth) fold in delivered partials.
        let ids: Vec<NodeId> = net.node_ids().collect();
        for id in ids {
            if !net.is_alive(id) {
                net.clear_inbox(id);
                continue;
            }
            net.take_inbox_into(id, &mut inbox);
            for d in inbox.drain(..) {
                if let ProtocolMsg::Partial {
                    sum,
                    count,
                    min,
                    max,
                } = d.payload
                {
                    if d.addressed && tree.contains(id) {
                        partials[id.index()].merge(&Partial {
                            sum,
                            count,
                            min,
                            max,
                        });
                    }
                }
            }
        }
    }

    let sink_partial = partials[sink.index()];
    Ok(TagResult {
        value: sink_partial.finish(agg),
        delivered_count: sink_partial.count,
        contributed_count: contributed,
        tree_size: tree.len(),
        messages: net.stats().total_sent() - msgs_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::query::{execute, SpatialPredicate};
    use snapshot_netsim::prelude::*;

    fn setup(
        n: usize,
        range: f64,
        loss: f64,
        seed: u64,
    ) -> (Network<ProtocolMsg>, Vec<SensorNode>, Vec<f64>) {
        let topo = Topology::random_uniform(n, range, seed).expect("valid deployment");
        let net = Network::new(
            topo,
            LinkModel::iid_loss(loss),
            EnergyModel::default(),
            seed,
        );
        let nodes: Vec<SensorNode> = (0..n)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        let values: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        (net, nodes, values)
    }

    #[test]
    fn lossless_tag_matches_the_idealized_executor() {
        for agg in [
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Count,
        ] {
            let (mut net, nodes, values) = setup(30, 0.5, 0.0, 7);
            let q = SnapshotQuery::aggregate(SpatialPredicate::All, agg, QueryMode::Regular);
            let tag =
                execute_tag(&mut net, &nodes, &values, &q, NodeId(3)).expect("aggregate query");

            let (mut net2, nodes2, values2) = setup(30, 0.5, 0.0, 7);
            let ideal = execute(&mut net2, &nodes2, &values2, &q, NodeId(3));
            assert_eq!(tag.value, ideal.value, "{agg:?} diverged");
            assert_eq!(tag.delivered_count, tag.contributed_count);
        }
    }

    #[test]
    fn partial_merge_is_associative_on_the_algebra() {
        let mut a = Partial::empty();
        a.add_value(3.0);
        a.add_value(-1.0);
        let mut b = Partial::empty();
        b.add_value(10.0);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.finish(Aggregate::Sum), Some(12.0));
        assert_eq!(ab.finish(Aggregate::Count), Some(3.0));
        assert_eq!(ab.finish(Aggregate::Min), Some(-1.0));
        assert_eq!(ab.finish(Aggregate::Max), Some(10.0));
        assert_eq!(ab.finish(Aggregate::Avg), Some(4.0));
    }

    #[test]
    fn empty_partial_finishes_to_none_except_count() {
        let p = Partial::empty();
        assert_eq!(p.finish(Aggregate::Sum), None);
        assert_eq!(p.finish(Aggregate::Avg), None);
        assert_eq!(p.finish(Aggregate::Min), None);
        assert_eq!(p.finish(Aggregate::Max), None);
        assert_eq!(p.finish(Aggregate::Count), Some(0.0));
    }

    #[test]
    fn loss_drops_whole_subtrees() {
        // Under loss the count delivered at the sink can only shrink.
        let (mut net, nodes, values) = setup(50, 0.3, 0.3, 11);
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Count, QueryMode::Regular);
        let tag = execute_tag(&mut net, &nodes, &values, &q, NodeId(5)).expect("aggregate query");
        assert!(tag.delivered_count <= tag.contributed_count);
        assert!(tag.tree_size <= 50);
        // With 30% loss on a multi-hop tree, *some* attrition is
        // overwhelmingly likely.
        assert!(
            tag.delivered_count < 50,
            "no attrition at 30% loss is implausible: {tag:?}"
        );
    }

    #[test]
    fn total_loss_leaves_only_the_sinks_own_reading() {
        let (mut net, nodes, values) = setup(20, 1.0, 1.0, 3);
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Count, QueryMode::Regular);
        let tag = execute_tag(&mut net, &nodes, &values, &q, NodeId(0)).expect("aggregate query");
        // The flood never leaves the sink, so only the sink is in the
        // tree and only its own value is counted.
        assert_eq!(tag.tree_size, 1);
        assert_eq!(tag.value, Some(1.0));
    }

    #[test]
    fn message_counts_reflect_flood_plus_partials() {
        let (mut net, nodes, values) = setup(20, 0.5, 0.0, 9);
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular);
        let tag = execute_tag(&mut net, &nodes, &values, &q, NodeId(1)).expect("aggregate query");
        // Lossless: every node floods once (20) and every non-sink
        // tree node sends one partial (19).
        assert_eq!(tag.messages, 20 + 19);
    }

    #[test]
    fn empty_subtree_partials_are_suppressed() {
        // Only node values inside a tiny predicate contribute; nodes
        // with empty partials must stay silent on the way up.
        let (mut net, nodes, values) = setup(20, 0.5, 0.0, 13);
        let pos = net.topology().position(NodeId(4));
        let q = SnapshotQuery::aggregate(
            SpatialPredicate::window(pos.x, pos.y, 1e-9),
            Aggregate::Count,
            QueryMode::Regular,
        );
        let tag = execute_tag(&mut net, &nodes, &values, &q, NodeId(4)).expect("aggregate query");
        assert_eq!(tag.value, Some(1.0));
        // 20 flood messages; zero partials (the only contributor IS
        // the sink).
        assert_eq!(tag.messages, 20);
    }
}
