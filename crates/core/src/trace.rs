//! Telemetry glue: translate core-layer outcomes into protocol events.
//!
//! The cache manager is deliberately telemetry-free (it returns a
//! [`CacheDecision`] and lets callers decide what to do with it);
//! every `observe` call site funnels that decision through
//! [`record_cache_decision`] so admissions, evictions and refits show
//! up in the trace with byte-budget pressure attached.

use crate::cache::{CacheDecision, ModelCache};
use snapshot_netsim::telemetry::CacheOutcome;
use snapshot_netsim::{Event, Network, NodeId};

/// Record the telemetry events implied by one cache-manager ruling:
/// a `CacheAdmit` always, a `CacheEvict` when a victim lost a pair,
/// and a `ModelRefit` when the observation entered the cache (the
/// line's model is refit on every admission).
pub(crate) fn record_cache_decision<P: Clone>(
    net: &mut Network<P>,
    node: NodeId,
    neighbor: NodeId,
    decision: &CacheDecision,
    cache: &ModelCache,
) {
    if !net.telemetry_enabled() {
        return;
    }
    let tick = net.round();
    let used_bytes = cache.used_bytes() as u32;
    let budget_bytes = cache.config().budget_bytes as u32;
    let outcome = match decision {
        CacheDecision::Inserted => CacheOutcome::Inserted,
        CacheDecision::AdmittedEvicting(_) => CacheOutcome::Augmented,
        CacheDecision::NewcomerEvicting(_) => CacheOutcome::Newcomer,
        CacheDecision::TimeShifted => CacheOutcome::TimeShifted,
        CacheDecision::Rejected => CacheOutcome::Rejected,
    };
    net.emit(Event::CacheAdmit {
        tick,
        node: node.0,
        neighbor: neighbor.0,
        outcome,
        used_bytes,
        budget_bytes,
    });
    if let CacheDecision::AdmittedEvicting(victim) | CacheDecision::NewcomerEvicting(victim) =
        decision
    {
        net.emit(Event::CacheEvict {
            tick,
            node: node.0,
            victim: victim.node.0,
            used_bytes,
            budget_bytes,
        });
    }
    if outcome.admitted() {
        net.emit(Event::ModelRefit {
            tick,
            node: node.0,
            neighbor: neighbor.0,
        });
    }
}
