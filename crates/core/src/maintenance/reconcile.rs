//! Spurious-representative reconciliation (Section 3).
//!
//! A lost Rule-2 recall leaves a node believing it still represents a
//! member that elected somebody else. The paper: "This can be detected
//! and corrected by having time-stamps describing the time that a node
//! N_i was elected as the representative of N_j and using the latest
//! representative based on these time-stamps. ... This filtering and
//! self-correction is performed by the network, transparently from the
//! application."
//!
//! The mechanism here is the natural protocol reading: every
//! representative periodically broadcasts its member list (the same
//! `RepresentAck` used during refinement); any member that hears a
//! stale claim — a list naming it, sent by a node that is *not* its
//! current representative — answers with a `Recall`, and the claimant
//! drops it.

use crate::election::ProtocolMsg;
use crate::sensor::SensorNode;
use snapshot_netsim::{Network, NodeId, Phase};

/// Outcome of one reconciliation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Representatives that announced their member lists.
    pub announcements: usize,
    /// Stale claims members objected to.
    pub objections: usize,
    /// Claims actually dropped (objections that were delivered).
    pub corrected: usize,
}

/// Run one announce/objection/correction pass. Message loss can leave
/// residual stale claims; repeated passes converge.
// xtask-contract(deterministic)
pub fn reconcile(net: &mut Network<ProtocolMsg>, nodes: &mut [SensorNode]) -> ReconcileReport {
    let n = nodes.len();
    // Wake-list drain candidates (DESIGN.md §16): post-deliver drains
    // visit only reached nodes, in ascending id order.
    let mut drained: Vec<NodeId> = Vec::new();
    let mut report = ReconcileReport {
        announcements: 0,
        objections: 0,
        corrected: 0,
    };

    // Announce.
    for i in (0..n).map(NodeId::from_index) {
        if !net.is_alive(i) {
            continue;
        }
        let node = &nodes[i.index()];
        if node.member_count() > 0 {
            let msg = ProtocolMsg::RepresentAck {
                members: node.members().collect(),
            };
            let bytes = msg.wire_bytes();
            net.broadcast(i, msg, bytes, Phase::Announce);
            report.announcements += 1;
        }
    }
    net.deliver();

    // Object to stale claims.
    let mut objections: Vec<(NodeId, NodeId)> = Vec::new();
    let mut inbox = Vec::new();
    net.drain_candidates_into(&mut drained);
    for &i in &drained {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        let node = &nodes[i.index()];
        for d in inbox.drain(..) {
            if let ProtocolMsg::RepresentAck { members } = d.payload {
                if members.contains(&i) && node.representative() != Some(d.from) {
                    objections.push((i, d.from));
                }
            }
        }
    }
    report.objections = objections.len();
    for (i, claimant) in objections {
        net.unicast(
            i,
            claimant,
            ProtocolMsg::Recall,
            ProtocolMsg::Recall.wire_bytes(),
            Phase::Announce,
        );
    }
    net.deliver();

    // Corrections.
    net.drain_candidates_into(&mut drained);
    for &i in &drained {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        let node = &mut nodes[i.index()];
        for d in inbox.drain(..) {
            if matches!(d.payload, ProtocolMsg::Recall)
                && d.addressed
                && node.represents.remove(&d.from).is_some()
            {
                report.corrected += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::sensor::Mode;
    use crate::snapshot::count_spurious;
    use snapshot_netsim::clock::Epoch;
    use snapshot_netsim::prelude::*;

    fn setup(n: usize, loss: f64) -> (Network<ProtocolMsg>, Vec<SensorNode>) {
        let topo = Topology::random_uniform(n, 2.0, 3).expect("valid deployment");
        let net = Network::new(topo, LinkModel::iid_loss(loss), EnergyModel::default(), 11);
        let nodes = (0..n)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        (net, nodes)
    }

    #[test]
    fn stale_claim_is_corrected() {
        let (mut net, mut nodes) = setup(3, 0.0);
        // Node 2's true representative is node 1; node 0 has a stale claim.
        nodes[2].mode = Mode::Passive;
        nodes[2].rep_of = Some((NodeId(1), Epoch(2)));
        nodes[1].represents.insert(NodeId(2), Epoch(2));
        nodes[0].represents.insert(NodeId(2), Epoch(1));
        assert_eq!(count_spurious(&nodes), 1);

        let r = reconcile(&mut net, &mut nodes);
        assert_eq!(r.announcements, 2);
        assert_eq!(r.objections, 1);
        assert_eq!(r.corrected, 1);
        assert_eq!(count_spurious(&nodes), 0);
        // The genuine claim survives.
        assert_eq!(nodes[1].member_count(), 1);
    }

    #[test]
    fn consistent_network_is_untouched() {
        let (mut net, mut nodes) = setup(2, 0.0);
        nodes[1].mode = Mode::Passive;
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        let r = reconcile(&mut net, &mut nodes);
        assert_eq!(r.objections, 0);
        assert_eq!(r.corrected, 0);
        assert_eq!(nodes[0].member_count(), 1);
    }

    #[test]
    fn repeated_passes_converge_under_loss() {
        let (mut net, mut nodes) = setup(4, 0.4);
        nodes[3].mode = Mode::Passive;
        nodes[3].rep_of = Some((NodeId(1), Epoch(5)));
        nodes[1].represents.insert(NodeId(3), Epoch(5));
        nodes[0].represents.insert(NodeId(3), Epoch(1));
        nodes[2].represents.insert(NodeId(3), Epoch(2));
        for _ in 0..50 {
            if count_spurious(&nodes) == 0 {
                break;
            }
            reconcile(&mut net, &mut nodes);
        }
        assert_eq!(count_spurious(&nodes), 0, "reconciliation never converged");
        assert_eq!(nodes[1].member_count(), 1);
    }
}
