//! Time-to-repair measurement for self-healing experiments.
//!
//! When a representative dies, its passive members are *orphans*: they
//! keep pointing at a node that will never answer a heartbeat, and
//! snapshot queries silently lose their rows until a maintenance cycle
//! notices the silence and re-elects. The `heal` experiment (and the
//! fault-injection handbook, `FAULTS.md`) quantify that window with two
//! numbers this module measures:
//!
//! * **time to repair** — simulator ticks from the representative's
//!   death until *every* orphan is re-covered (points at an alive
//!   representative, or represents itself again);
//! * **query error during repair** — the absolute aggregate error of
//!   queries executed while at least one orphan is still dark.
//!
//! [`RepairTracker`] is embedded in
//! [`SensorNetwork`](crate::network::SensorNetwork): call
//! [`SensorNetwork::kill_representative`](crate::network::SensorNetwork::kill_representative)
//! to open an episode, run maintenance cycles until
//! [`RepairTracker::in_repair`] turns false, then read the finished
//! [`RepairRecord`]s.

use snapshot_netsim::NodeId;
use std::collections::BTreeSet;

/// One finished repair episode: a representative died, and after
/// `time_to_repair` ticks every surviving orphan was re-covered.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairRecord {
    /// The representative that died.
    pub rep: NodeId,
    /// Simulator tick (network round) at death.
    pub died_at: u64,
    /// Tick at which the last orphan was re-covered.
    pub repaired_at: u64,
    /// Number of members orphaned by the death.
    pub orphans: usize,
    /// Queries executed while the episode was open.
    pub queries_during_repair: u64,
    /// Sum of absolute aggregate errors of those queries (only the
    /// ones where both a value and a ground truth existed).
    pub query_abs_err_sum: f64,
}

impl RepairRecord {
    /// Ticks from death to full re-coverage.
    pub fn time_to_repair(&self) -> u64 {
        self.repaired_at.saturating_sub(self.died_at)
    }

    /// Mean absolute query error during the repair window (`None`
    /// when no query ran, or none produced an error measurement).
    pub fn mean_query_error(&self) -> Option<f64> {
        (self.queries_during_repair > 0)
            .then(|| self.query_abs_err_sum / self.queries_during_repair as f64)
    }
}

/// Tracks at most one open repair episode and the finished records.
///
/// Orphans that die themselves while the episode is open (battery, a
/// second fault) are removed from the outstanding set — a dead node
/// needs no representative — so the episode always terminates once the
/// survivors are re-covered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairTracker {
    open: Option<OpenEpisode>,
    records: Vec<RepairRecord>,
}

#[derive(Debug, Clone, PartialEq)]
struct OpenEpisode {
    rep: NodeId,
    died_at: u64,
    orphans_total: usize,
    outstanding: BTreeSet<NodeId>,
    queries: u64,
    err_sum: f64,
}

impl RepairTracker {
    /// Fresh tracker with no open episode and no records.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an episode: `rep` died at `tick` orphaning `orphans`.
    /// A second call while an episode is open replaces it (the first
    /// episode is abandoned without a record — overlapping failures
    /// are one compound outage, measured from the later death).
    pub fn begin(&mut self, rep: NodeId, tick: u64, orphans: impl IntoIterator<Item = NodeId>) {
        let outstanding: BTreeSet<NodeId> = orphans.into_iter().collect();
        if outstanding.is_empty() {
            // Nothing to heal: a member-less representative repairs
            // instantly and is not worth a record.
            self.open = None;
            return;
        }
        self.open = Some(OpenEpisode {
            rep,
            died_at: tick,
            orphans_total: outstanding.len(),
            outstanding,
            queries: 0,
            err_sum: 0.0,
        });
    }

    /// True while orphans are still uncovered.
    pub fn in_repair(&self) -> bool {
        self.open.is_some()
    }

    /// Account one query executed during the open episode (no-op when
    /// none is open). `abs_err` is the query's absolute aggregate
    /// error when measurable.
    pub fn record_query(&mut self, abs_err: Option<f64>) {
        if let Some(ep) = &mut self.open {
            ep.queries += 1;
            if let Some(e) = abs_err {
                ep.err_sum += e;
            }
        }
    }

    /// Re-examine the outstanding orphans at `tick`. `covered(j)`
    /// must return true when `j` no longer needs healing: it is dead,
    /// or alive with an alive representative (possibly itself). When
    /// the outstanding set empties, the episode closes and a
    /// [`RepairRecord`] is appended.
    pub fn observe(&mut self, tick: u64, mut covered: impl FnMut(NodeId) -> bool) {
        let Some(ep) = &mut self.open else {
            return;
        };
        ep.outstanding.retain(|&j| !covered(j));
        if !ep.outstanding.is_empty() {
            return;
        }
        if let Some(ep) = self.open.take() {
            self.records.push(RepairRecord {
                rep: ep.rep,
                died_at: ep.died_at,
                repaired_at: tick,
                orphans: ep.orphans_total,
                queries_during_repair: ep.queries,
                query_abs_err_sum: ep.err_sum,
            });
        }
    }

    /// Finished episodes, in completion order.
    pub fn records(&self) -> &[RepairRecord] {
        &self.records
    }

    /// Nodes still waiting for re-coverage (empty when no episode is
    /// open).
    pub fn outstanding(&self) -> Vec<NodeId> {
        self.open
            .as_ref()
            .map(|ep| ep.outstanding.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_closes_when_every_orphan_is_covered() {
        let mut t = RepairTracker::new();
        t.begin(NodeId(0), 10, [NodeId(1), NodeId(2)]);
        assert!(t.in_repair());
        t.observe(12, |j| j == NodeId(1));
        assert!(t.in_repair());
        assert_eq!(t.outstanding(), vec![NodeId(2)]);
        t.observe(15, |_| true);
        assert!(!t.in_repair());
        let r = &t.records()[0];
        assert_eq!(r.time_to_repair(), 5);
        assert_eq!(r.orphans, 2);
    }

    #[test]
    fn queries_during_repair_are_accounted() {
        let mut t = RepairTracker::new();
        t.begin(NodeId(3), 0, [NodeId(4)]);
        t.record_query(Some(2.0));
        t.record_query(None);
        t.record_query(Some(4.0));
        t.observe(7, |_| true);
        let r = &t.records()[0];
        assert_eq!(r.queries_during_repair, 3);
        assert_eq!(r.query_abs_err_sum, 6.0);
        assert_eq!(r.mean_query_error(), Some(2.0));
    }

    #[test]
    fn memberless_death_opens_no_episode() {
        let mut t = RepairTracker::new();
        t.begin(NodeId(0), 0, []);
        assert!(!t.in_repair());
        t.observe(1, |_| true);
        assert!(t.records().is_empty());
    }

    #[test]
    fn queries_outside_an_episode_are_ignored() {
        let mut t = RepairTracker::new();
        t.record_query(Some(9.0));
        t.begin(NodeId(0), 0, [NodeId(1)]);
        t.observe(3, |_| true);
        assert_eq!(t.records()[0].queries_during_repair, 0);
    }

    #[test]
    fn a_second_begin_replaces_the_open_episode() {
        let mut t = RepairTracker::new();
        t.begin(NodeId(0), 0, [NodeId(1)]);
        t.begin(NodeId(2), 5, [NodeId(3)]);
        t.observe(9, |_| true);
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].rep, NodeId(2));
        assert_eq!(t.records()[0].died_at, 5);
    }
}
