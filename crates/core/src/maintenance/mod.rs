//! Snapshot maintenance (Section 5.1): keeping the representative set
//! healthy after elections, without global knowledge.
//!
//! # The maintenance cycle
//!
//! [`run_maintenance`] executes one cycle, in four steps:
//!
//! 1. **Energy handoff** — representatives whose battery has fallen
//!    below the configured fraction (or below one burst of heartbeat
//!    replies plus a query window for their member count) broadcast a
//!    handoff announcement; members that hear it will re-elect. This
//!    step alone is also available as [`run_handoff_check`]: the
//!    battery test is local, so it can run every few queries at no
//!    cost to the members.
//! 2. **Heartbeats** — every PASSIVE node unicasts its current
//!    measurement to its representative. The representative feeds the
//!    pair to its cache manager (fine-tuning the model first, charged
//!    at the paper's 0.1-transmission processing cost) and replies
//!    with its estimate `x̂_j`. Bystanders snoop overheard heartbeats
//!    with the configured probability, keeping their own models warm.
//! 3. **Detection** — a member whose representative stayed silent
//!    (death, message loss) or whose returned estimate violates the
//!    threshold (`d(x_j, x̂_j) > T`) initiates a re-election; so does
//!    every ACTIVE node that represents nobody (it periodically
//!    *fishes* for a representative with a fresh invitation).
//! 4. **One election** settles all initiators at once, scoring offers
//!    by candidate-list length plus current member count.
//!
//! # Message budget
//!
//! The paper bounds the cycle at **six messages per node**: heartbeat
//! and estimate reply, plus the up-to-four election messages
//! (invitation, candidate list, accept, refinement). The repository
//! enforces this bound three ways: unit tests here and in
//! `network.rs`, the `snapshot-trace --assert --max-election-msgs 6`
//! CI gate over the `heal` experiment's trace, and Figure 15-style
//! measured averages in the [`MaintenanceReport`].
//!
//! # Companion passes
//!
//! * [`reconcile`](reconcile::reconcile) — the announce / object /
//!   correct pass that retires *spurious* representative claims left
//!   behind by lost recall messages (epoch numbers decide who is
//!   stale).
//! * [`rotation`](rotate_representatives) — LEACH-style random
//!   stepping-down so the representative role (and its energy bill)
//!   circulates through each cluster.
//! * [`repair`] — measurement only: tracks how many ticks the network
//!   takes to re-cover every orphan after a representative dies, and
//!   the query error paid meanwhile. Used by the fault-injection
//!   `heal` experiment (see `FAULTS.md`).

pub mod reconcile;
pub mod repair;
pub mod rotation;

pub use reconcile::{reconcile, ReconcileReport};
pub use repair::{RepairRecord, RepairTracker};
pub use rotation::{rotate_representatives, RotationReport};

use crate::config::SnapshotConfig;
use crate::election::{run_maintenance_election, ElectionOutcome, ProtocolMsg};
use crate::sensor::{Mode, SensorNode};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_netsim::{Event, Network, NodeId, Phase};
use std::collections::BTreeSet;

/// What one maintenance cycle did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Heartbeats sent by passive nodes.
    pub heartbeats: usize,
    /// Members that re-elected because the estimate violated `T`.
    pub drift_detected: usize,
    /// Members that re-elected because no estimate arrived
    /// (representative dead, or a message lost).
    pub silence_detected: usize,
    /// Representatives that initiated an energy handoff this cycle.
    pub handoffs: usize,
    /// Self-only ACTIVE nodes that fished for a representative.
    pub fishing: usize,
    /// Outcome of the maintenance election (`None` when nothing
    /// needed re-electing).
    pub election: Option<ElectionOutcome>,
}

impl MaintenanceReport {
    /// Total nodes that initiated a re-election.
    pub fn reelections(&self) -> usize {
        self.drift_detected + self.silence_detected + self.fishing
    }
}

/// Run one maintenance cycle. `values[i]` is `N_i`'s current
/// measurement.
// xtask-contract(deterministic)
pub fn run_maintenance(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
) -> MaintenanceReport {
    run_cycle(net, nodes, values, cfg, epoch, rng, true)
}

/// Run only the energy-handoff portion of maintenance: exhausted
/// representatives announce a handoff and their members re-elect.
///
/// The battery check is local to each representative, so this can run
/// far more often than the heartbeat exchange without costing the
/// members anything — the key to the Figure 10 lifetime result, where
/// a representative answers nearly every query and must rotate out
/// well before its battery dies.
// xtask-contract(deterministic)
pub fn run_handoff_check(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
) -> MaintenanceReport {
    run_cycle(net, nodes, values, cfg, epoch, rng, false)
}

#[allow(clippy::too_many_arguments)]
fn run_cycle(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
    with_heartbeats: bool,
) -> MaintenanceReport {
    debug_assert_eq!(nodes.len(), values.len());
    let n = nodes.len();
    // Reusable delivery buffer: `take_inbox_into` swaps capacity with
    // the inboxes, keeping the maintenance loops allocation-free.
    let mut inbox = Vec::new();
    // Wake-list drain candidates (DESIGN.md §16): each post-deliver
    // drain visits only the nodes the round actually reached, in
    // ascending id order — identical RNG/telemetry order to the old
    // all-nodes scan, since undelivered nodes were no-ops there.
    let mut drained: Vec<NodeId> = Vec::new();
    let mut reelect: BTreeSet<NodeId> = BTreeSet::new();
    let mut report = MaintenanceReport {
        heartbeats: 0,
        drift_detected: 0,
        silence_detected: 0,
        handoffs: 0,
        fishing: 0,
        election: None,
    };

    // ---- Energy handoff announcements --------------------------------
    if cfg.energy_handoff_fraction > 0.0 {
        for i in (0..n).map(NodeId::from_index) {
            if !net.is_alive(i) {
                continue;
            }
            let battery = net.battery(i);
            // A representative steps down when its battery falls below
            // the configured fraction — or below what one full round
            // of heartbeat replies *plus* a comparable window of query
            // answering would cost, whichever is larger: it must never
            // die mid-burst (or right after one) while still holding
            // its members, because orphans go dark until the next
            // heartbeat cycle notices the silence.
            let burst_floor =
                (2 * nodes[i.index()].member_count() + 10) as f64 * net.energy_model().tx_cost;
            let battery_fraction = battery.fraction();
            let low =
                battery_fraction < cfg.energy_handoff_fraction || battery.remaining() < burst_floor;
            let node = &mut nodes[i.index()];
            if low && node.mode() == Mode::Active && node.member_count() > 0 {
                node.refusing_invites = true;
                report.handoffs += 1;
                if net.telemetry_enabled() {
                    let tick = net.round();
                    net.emit(Event::HandoffTriggered {
                        tick,
                        node: i.0,
                        battery_fraction,
                    });
                }
                net.broadcast(
                    i,
                    ProtocolMsg::EnergyHandoff,
                    ProtocolMsg::EnergyHandoff.wire_bytes(),
                    Phase::Handoff,
                );
            }
        }
        net.deliver();
        net.drain_candidates_into(&mut drained);
        for &i in &drained {
            if !net.is_alive(i) {
                net.clear_inbox(i);
                continue;
            }
            net.take_inbox_into(i, &mut inbox);
            let node = &nodes[i.index()];
            for d in inbox.drain(..) {
                if matches!(d.payload, ProtocolMsg::EnergyHandoff)
                    && node.representative() == Some(d.from)
                {
                    reelect.insert(i);
                }
            }
        }
    }

    // ---- Heartbeats ----------------------------------------------------
    let mut awaiting: Vec<(NodeId, NodeId)> = Vec::new(); // (member, rep)
    for j in (0..n).map(NodeId::from_index) {
        if !with_heartbeats || !net.is_alive(j) || reelect.contains(&j) {
            continue;
        }
        let node = &nodes[j.index()];
        if node.mode() == Mode::Passive {
            if let Some(rep) = node.representative() {
                let msg = ProtocolMsg::Heartbeat {
                    value: values[j.index()],
                };
                let bytes = msg.wire_bytes();
                net.unicast(j, rep, msg, bytes, Phase::Heartbeat);
                awaiting.push((j, rep));
                report.heartbeats += 1;
            }
        }
    }
    net.deliver();

    // Representatives process heartbeats: fine-tune, reply with the
    // estimate. (The fine-tune happens *before* the estimate is
    // produced, as in the paper: the heartbeat "is also used by N_i to
    // fine-tune its model of N_j" — the reply then reflects the best
    // current model.)
    let mut replies: Vec<(NodeId, NodeId, f64)> = Vec::new();
    net.drain_candidates_into(&mut drained);
    for &i in &drained {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        let own = values[i.index()];
        for d in inbox.drain(..) {
            if let ProtocolMsg::Heartbeat { value } = d.payload {
                if !d.addressed {
                    // Physically a heartbeat is a broadcast: bystanders
                    // snoop it with the configured probability, keeping
                    // their models of the member fresh (the Section 3
                    // mechanism: "snooping ... values broadcast by its
                    // neighbor node ... or by using periodic
                    // announcements").
                    if cfg.snoop_prob > 0.0 && rng.random_bool(cfg.snoop_prob) {
                        let decision = nodes[i.index()].cache.observe(d.from, own, value);
                        net.charge_cache_update(i);
                        crate::trace::record_cache_decision(
                            net,
                            i,
                            d.from,
                            &decision,
                            &nodes[i.index()].cache,
                        );
                    }
                    continue;
                }
                let node = &mut nodes[i.index()];
                let decision = node.cache.observe(d.from, own, value);
                net.charge_cache_update(i);
                crate::trace::record_cache_decision(net, i, d.from, &decision, &node.cache);
                // A heartbeat implies "you are my representative" —
                // repair membership lost to dropped acceptances.
                node.represents.entry(d.from).or_insert(epoch);
                if let Some(est) = node.cache.estimate(d.from, own) {
                    replies.push((i, d.from, est));
                }
            }
        }
    }
    for (i, j, est) in replies {
        let msg = ProtocolMsg::Estimate { value: est };
        let bytes = msg.wire_bytes();
        net.unicast(i, j, msg, bytes, Phase::Estimate);
    }
    net.deliver();

    // Members judge the replies.
    let mut estimates: Vec<Option<f64>> = vec![None; nodes.len()];
    net.drain_candidates_into(&mut drained);
    for &j in &drained {
        if !net.is_alive(j) {
            net.clear_inbox(j);
            continue;
        }
        net.take_inbox_into(j, &mut inbox);
        for d in inbox.drain(..) {
            if let ProtocolMsg::Estimate { value } = d.payload {
                if d.addressed {
                    estimates[j.index()] = Some(value);
                }
            }
        }
    }
    for (j, _rep) in awaiting {
        match estimates[j.index()] {
            Some(est) => {
                if !cfg.metric.within(values[j.index()], est, cfg.threshold) {
                    reelect.insert(j);
                    report.drift_detected += 1;
                }
            }
            None => {
                reelect.insert(j);
                report.silence_detected += 1;
            }
        }
    }

    // ---- Self-only actives fish for a representative -------------------
    if with_heartbeats {
        for i in (0..n).map(NodeId::from_index) {
            if !net.is_alive(i) {
                continue;
            }
            let node = &nodes[i.index()];
            if node.mode() == Mode::Active
                && node.member_count() == 0
                && !node.refusing_invites
                && reelect.insert(i)
            {
                report.fishing += 1;
            }
        }
    }

    // ---- One election settles every initiator ---------------------------
    if !reelect.is_empty() {
        let initiators: Vec<NodeId> = reelect.into_iter().collect();
        let outcome = run_maintenance_election(net, nodes, values, cfg, epoch, rng, &initiators);
        report.election = Some(outcome);
    }

    // Handoff flags last one cycle.
    for node in nodes.iter_mut() {
        node.refusing_invites = false;
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use snapshot_netsim::prelude::*;

    fn setup(n: usize, loss: f64) -> (Network<ProtocolMsg>, Vec<SensorNode>, SnapshotConfig) {
        let topo = Topology::random_uniform(n, 2.0, 5).expect("valid deployment");
        let net = Network::new(topo, LinkModel::iid_loss(loss), EnergyModel::default(), 7);
        let cfg = SnapshotConfig::default();
        let nodes: Vec<SensorNode> = (0..n)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        (net, nodes, cfg)
    }

    /// Wire node `m` as a passive member of `rep`, with a trained model
    /// at the representative.
    fn wire_member(nodes: &mut [SensorNode], rep: NodeId, m: NodeId, pairs: &[(f64, f64)]) {
        nodes[m.index()].mode = Mode::Passive;
        nodes[m.index()].rep_of = Some((rep, Epoch(1)));
        nodes[rep.index()].represents.insert(m, Epoch(1));
        for &(x, y) in pairs {
            nodes[rep.index()].cache.observe(m, x, y);
        }
    }

    #[test]
    fn accurate_member_stays_passive() {
        let (mut net, mut nodes, cfg) = setup(3, 0.0);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        // Model: x_m = x_rep exactly.
        wire_member(
            &mut nodes,
            NodeId(0),
            NodeId(1),
            &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)],
        );
        let values = vec![5.0, 5.0, 7.0];
        let r = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        assert_eq!(r.heartbeats, 1);
        assert_eq!(r.drift_detected, 0);
        assert_eq!(r.silence_detected, 0);
        assert_eq!(nodes[1].mode(), Mode::Passive);
        assert_eq!(nodes[1].representative(), Some(NodeId(0)));
    }

    #[test]
    fn drifted_member_reelects() {
        let (mut net, mut nodes, cfg) = setup(3, 0.0);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        wire_member(
            &mut nodes,
            NodeId(0),
            NodeId(1),
            &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)],
        );
        // Member's data diverged: model predicts 5, member reads 50.
        let values = vec![5.0, 50.0, 7.0];
        let r = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        assert_eq!(r.drift_detected, 1);
        assert!(r.election.is_some());
    }

    #[test]
    fn dead_representative_is_detected_by_silence() {
        let (mut net, mut nodes, cfg) = setup(3, 0.0);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        wire_member(&mut nodes, NodeId(0), NodeId(1), &[(1.0, 1.0), (2.0, 2.0)]);
        net.kill(NodeId(0));
        let values = vec![5.0, 5.0, 7.0];
        let r = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        assert_eq!(r.silence_detected, 1);
        // The member re-elected; with no candidate able to model it
        // (node 2 has no cache line for node 1) it represents itself.
        assert_eq!(nodes[1].mode(), Mode::Active);
    }

    #[test]
    fn self_only_actives_fish_for_representatives() {
        let (mut net, mut nodes, cfg) = setup(2, 0.0);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        // Node 1 can model node 0 perfectly.
        for &(x, y) in &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)] {
            nodes[1].cache.observe(NodeId(0), x, y);
        }
        let values = vec![4.0, 4.0];
        let r = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        assert!(r.fishing >= 1);
        // Node 0 found node 1.
        assert_eq!(nodes[0].representative(), Some(NodeId(1)));
        assert_eq!(nodes[0].mode(), Mode::Passive);
        assert_eq!(nodes[1].mode(), Mode::Active);
    }

    #[test]
    fn heartbeat_fine_tunes_the_model() {
        let (mut net, mut nodes, cfg) = setup(2, 0.0);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        wire_member(&mut nodes, NodeId(0), NodeId(1), &[(1.0, 1.0), (2.0, 2.0)]);
        let before = nodes[0].cache.line(NodeId(1)).unwrap().len();
        let values = vec![3.0, 3.0];
        let _ = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        let after = nodes[0].cache.line(NodeId(1)).unwrap().len();
        assert_eq!(after, before + 1, "heartbeat pair must enter the cache");
    }

    #[test]
    fn energy_handoff_moves_members_away() {
        let (topo_net, mut nodes, mut cfg) = setup(3, 0.0);
        drop(topo_net);
        cfg.energy_handoff_fraction = 0.5;
        let topo = Topology::random_uniform(3, 2.0, 5).expect("valid deployment");
        let mut net: Network<ProtocolMsg> = Network::with_finite_batteries(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            10.0,
            7,
        );
        // Drain rep 0 below 50%.
        net.charge(NodeId(0), 6.0, Phase::Test);
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(1);
        wire_member(&mut nodes, NodeId(0), NodeId(1), &[(1.0, 1.0), (2.0, 2.0)]);
        // Node 2 can also model node 1.
        for &(x, y) in &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)] {
            nodes[2].cache.observe(NodeId(1), x, y);
        }
        let values = vec![4.0, 4.0, 4.0];
        let r = run_maintenance(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng);
        assert_eq!(r.handoffs, 1);
        // The member left the exhausted representative for node 2.
        assert_eq!(nodes[1].representative(), Some(NodeId(2)));
    }
}
