//! LEACH-style representative rotation (Section 5.1).
//!
//! "Another option is to use randomization in the selection of
//! representatives, similar to the one used in the LEACH data routing
//! protocol. The key idea is to have a rotating set of representatives
//! so that energy resources are drained uniformly." Each cycle, every
//! representative independently steps down with probability
//! `rotation_prob`; its members re-elect, and the retiring node
//! refuses candidacy for that election so the role genuinely moves.

use crate::config::SnapshotConfig;
use crate::election::{run_maintenance_election, ElectionOutcome, ProtocolMsg};
use crate::sensor::{Mode, SensorNode};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_netsim::{Event, Network, NodeId, Phase};
use std::collections::BTreeSet;

/// Outcome of a rotation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationReport {
    /// Representatives that stepped down.
    pub retired: usize,
    /// Members that re-elected.
    pub reassigned: usize,
    /// The election outcome, when any member re-elected.
    pub election: Option<ElectionOutcome>,
}

/// Rotate representatives with the given per-representative
/// probability. `values[i]` is `N_i`'s current measurement.
// xtask-contract(deterministic)
#[allow(clippy::too_many_arguments)]
pub fn rotate_representatives(
    net: &mut Network<ProtocolMsg>,
    nodes: &mut [SensorNode],
    values: &[f64],
    cfg: &SnapshotConfig,
    epoch: Epoch,
    rng: &mut DetRng,
    rotation_prob: f64,
) -> RotationReport {
    assert!(
        (0.0..=1.0).contains(&rotation_prob),
        "rotation_prob must be a probability, got {rotation_prob}"
    );
    let n = nodes.len();
    let mut report = RotationReport {
        retired: 0,
        reassigned: 0,
        election: None,
    };

    // Retiring representatives announce a handoff.
    for i in (0..n).map(NodeId::from_index) {
        if !net.is_alive(i) {
            continue;
        }
        let node = &mut nodes[i.index()];
        if node.mode() == Mode::Active && node.member_count() > 0 && rng.random_bool(rotation_prob)
        {
            node.refusing_invites = true;
            report.retired += 1;
            if net.telemetry_enabled() {
                let tick = net.round();
                let battery_fraction = net.battery(i).fraction();
                net.emit(Event::HandoffTriggered {
                    tick,
                    node: i.0,
                    battery_fraction,
                });
            }
            net.broadcast(
                i,
                ProtocolMsg::EnergyHandoff,
                ProtocolMsg::EnergyHandoff.wire_bytes(),
                Phase::Handoff,
            );
        }
    }
    net.deliver();

    // Members of retiring representatives re-elect. Wake-list drain
    // (DESIGN.md §16): only nodes the handoff broadcast reached are
    // visited, in ascending id order.
    let mut initiators: BTreeSet<NodeId> = BTreeSet::new();
    let mut inbox = Vec::new();
    let mut drained: Vec<NodeId> = Vec::new();
    net.drain_candidates_into(&mut drained);
    for &i in &drained {
        if !net.is_alive(i) {
            net.clear_inbox(i);
            continue;
        }
        net.take_inbox_into(i, &mut inbox);
        let node = &nodes[i.index()];
        for d in inbox.drain(..) {
            if matches!(d.payload, ProtocolMsg::EnergyHandoff)
                && node.representative() == Some(d.from)
            {
                initiators.insert(i);
            }
        }
    }
    report.reassigned = initiators.len();

    if !initiators.is_empty() {
        let initiators: Vec<NodeId> = initiators.into_iter().collect();
        report.election = Some(run_maintenance_election(
            net,
            nodes,
            values,
            cfg,
            epoch,
            rng,
            &initiators,
        ));
    }

    for node in nodes.iter_mut() {
        node.refusing_invites = false;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use snapshot_netsim::prelude::*;

    #[test]
    fn rotation_moves_the_role() {
        let topo = Topology::random_uniform(3, 2.0, 1).expect("valid deployment");
        let mut net: Network<ProtocolMsg> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 2);
        let cfg = SnapshotConfig::default();
        let mut nodes: Vec<SensorNode> = (0..3)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        // 0 represents 1; node 2 can also model node 1.
        nodes[1].mode = Mode::Passive;
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        for &(x, y) in &[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)] {
            nodes[2].cache.observe(NodeId(1), x, y);
        }
        let values = vec![4.0, 4.0, 4.0];
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(3);
        let r =
            rotate_representatives(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng, 1.0);
        assert_eq!(r.retired, 1);
        assert_eq!(r.reassigned, 1);
        assert_eq!(nodes[1].representative(), Some(NodeId(2)));
    }

    #[test]
    fn zero_probability_rotates_nothing() {
        let topo = Topology::random_uniform(2, 2.0, 1).expect("valid deployment");
        let mut net: Network<ProtocolMsg> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 2);
        let cfg = SnapshotConfig::default();
        let mut nodes: Vec<SensorNode> = (0..2)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect();
        nodes[1].mode = Mode::Passive;
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        let values = vec![1.0, 1.0];
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(3);
        let r =
            rotate_representatives(&mut net, &mut nodes, &values, &cfg, Epoch(2), &mut rng, 0.0);
        assert_eq!(r.retired, 0);
        assert_eq!(nodes[1].representative(), Some(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_is_rejected() {
        let topo = Topology::random_uniform(1, 2.0, 1).expect("valid deployment");
        let mut net: Network<ProtocolMsg> =
            Network::new(topo, LinkModel::Perfect, EnergyModel::default(), 2);
        let cfg = SnapshotConfig::default();
        let mut nodes = vec![SensorNode::new(NodeId(0), CacheConfig::default())];
        let mut rng = snapshot_netsim::rng::DetRng::seed_from_u64(3);
        let _ = rotate_representatives(&mut net, &mut nodes, &[1.0], &cfg, Epoch(1), &mut rng, 1.5);
    }
}
