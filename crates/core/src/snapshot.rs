//! The network snapshot: who represents whom.
//!
//! A [`Snapshot`] is the queryable view assembled from the nodes'
//! protocol state. Representation claims are reconciled by election
//! epoch: when two nodes both believe they represent `N_j` (the
//! *spurious representative* situation caused by a lost Rule-2
//! recall), the claim with the latest epoch wins — the timestamp
//! filter Section 3 describes. The count of spurious claims is what
//! Figure 13 plots.

use crate::sensor::{Mode, SensorNode};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::NodeId;
use std::collections::BTreeMap;

/// A reconciled view of the representative structure.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `rep_of[i]`: the node that answers for `N_i` (`None` = itself).
    rep_of: Vec<Option<NodeId>>,
    /// Representative -> members (reconciled; excludes self).
    members: BTreeMap<NodeId, Vec<NodeId>>,
    /// `active[i]`: whether `N_i` answers snapshot queries.
    active: Vec<bool>,
}

impl Snapshot {
    /// Build the reconciled snapshot from the nodes' own state.
    ///
    /// Each node's `rep_of` pointer is authoritative for *itself*;
    /// representative member lists are trusted only where they agree
    /// with the member's pointer (this is exactly the timestamp-based
    /// filtering of Section 3, using the member's acceptance epoch as
    /// the latest word).
    pub fn from_nodes(nodes: &[SensorNode]) -> Self {
        let n = nodes.len();
        let mut rep_of = vec![None; n];
        let mut members: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut active = vec![false; n];
        for node in nodes {
            let i = node.id();
            active[i.index()] = node.mode() == Mode::Active;
            if let Some(rep) = node.representative() {
                if rep != i {
                    rep_of[i.index()] = Some(rep);
                    members.entry(rep).or_default().push(i);
                }
            }
        }
        Snapshot {
            rep_of,
            members,
            active,
        }
    }

    /// Number of nodes covered by the snapshot.
    pub fn len(&self) -> usize {
        self.rep_of.len()
    }

    /// True when the snapshot covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.rep_of.is_empty()
    }

    /// The node that answers for `id` (itself when unrepresented).
    pub fn representative_of(&self, id: NodeId) -> NodeId {
        self.rep_of[id.index()].unwrap_or(id)
    }

    /// True when `id` is represented by somebody else.
    pub fn is_represented(&self, id: NodeId) -> bool {
        self.rep_of[id.index()].is_some()
    }

    /// True when `id` answers snapshot queries.
    pub fn is_active(&self, id: NodeId) -> bool {
        self.active[id.index()]
    }

    /// All ACTIVE nodes — the snapshot itself.
    pub fn representatives(&self) -> Vec<NodeId> {
        (0..self.active.len())
            .filter(|&i| self.active[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// The snapshot size `n1` (number of ACTIVE nodes).
    pub fn size(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Members represented by `rep` (reconciled; excludes `rep`).
    pub fn members_of(&self, rep: NodeId) -> &[NodeId] {
        self.members.get(&rep).map_or(&[], Vec::as_slice)
    }

    /// Edges `(representative, member)` of the representation forest —
    /// the lines drawn in the paper's Figure 1.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (rep, members) in &self.members {
            for &m in members {
                out.push((*rep, m));
            }
        }
        out
    }

    /// Render the snapshot as Graphviz DOT (Figure 1 reproduction).
    pub fn to_dot(&self, position: impl Fn(NodeId) -> (f64, f64)) -> String {
        let mut s = String::from("graph snapshot {\n  node [shape=circle];\n");
        for i in 0..self.len() {
            let id = NodeId::from_index(i);
            let (x, y) = position(id);
            let style = if self.active[i] {
                ", style=filled, fillcolor=black, fontcolor=white"
            } else {
                ""
            };
            s.push_str(&format!(
                "  n{i} [pos=\"{:.3},{:.3}!\"{}];\n",
                x * 10.0,
                y * 10.0,
                style
            ));
        }
        for (rep, m) in self.edges() {
            s.push_str(&format!("  n{} -- n{};\n", rep.0, m.0));
        }
        s.push_str("}\n");
        s
    }
}

/// Count *spurious representatives*: nodes that believe they represent
/// some member whose own pointer names a different (or no)
/// representative. These arise from lost Rule-2 recalls; Figure 13
/// plots their number under increasing message loss.
pub fn count_spurious(nodes: &[SensorNode]) -> usize {
    nodes
        .iter()
        .filter(|rep| {
            rep.members()
                .any(|m| nodes[m.index()].representative() != Some(rep.id()))
        })
        .count()
}

/// Total stale member claims (a finer-grained diagnostic than
/// [`count_spurious`]).
pub fn count_stale_claims(nodes: &[SensorNode]) -> usize {
    nodes
        .iter()
        .map(|rep| {
            rep.members()
                .filter(|&m| nodes[m.index()].representative() != Some(rep.id()))
                .count()
        })
        .sum()
}

/// The epoch of the most recent acceptance present anywhere in the
/// network (diagnostic for reconciliation tests).
pub fn latest_epoch(nodes: &[SensorNode]) -> Option<Epoch> {
    nodes.iter().filter_map(|n| n.representative_epoch()).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::sensor::SensorNode;

    fn make_nodes(n: usize) -> Vec<SensorNode> {
        (0..n)
            .map(|i| SensorNode::new(NodeId::from_index(i), CacheConfig::default()))
            .collect()
    }

    #[test]
    fn fresh_nodes_form_an_all_active_snapshot() {
        let nodes = make_nodes(4);
        let s = Snapshot::from_nodes(&nodes);
        assert_eq!(s.size(), 4);
        assert!(s.edges().is_empty());
        for i in 0..4 {
            let id = NodeId::from_index(i);
            assert_eq!(s.representative_of(id), id);
            assert!(!s.is_represented(id));
        }
    }

    #[test]
    fn representation_links_project_into_the_snapshot() {
        let mut nodes = make_nodes(3);
        // 1 represented by 0.
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[1].mode = Mode::Passive;
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        let s = Snapshot::from_nodes(&nodes);
        assert_eq!(s.size(), 2);
        assert_eq!(s.representative_of(NodeId(1)), NodeId(0));
        assert_eq!(s.members_of(NodeId(0)), &[NodeId(1)]);
        assert_eq!(s.edges(), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn member_pointer_wins_over_stale_claims() {
        let mut nodes = make_nodes(3);
        // Node 2 elected node 1 (newer), but node 0 still claims it.
        nodes[2].rep_of = Some((NodeId(1), Epoch(2)));
        nodes[2].mode = Mode::Passive;
        nodes[1].represents.insert(NodeId(2), Epoch(2));
        nodes[0].represents.insert(NodeId(2), Epoch(1)); // stale
        let s = Snapshot::from_nodes(&nodes);
        assert_eq!(s.representative_of(NodeId(2)), NodeId(1));
        assert!(s.members_of(NodeId(0)).is_empty());
    }

    #[test]
    fn spurious_representatives_are_counted() {
        let mut nodes = make_nodes(4);
        nodes[2].rep_of = Some((NodeId(1), Epoch(2)));
        nodes[1].represents.insert(NodeId(2), Epoch(2));
        nodes[0].represents.insert(NodeId(2), Epoch(1)); // spurious claim
        nodes[3].represents.insert(NodeId(2), Epoch(0)); // another spurious claim
        assert_eq!(count_spurious(&nodes), 2);
        assert_eq!(count_stale_claims(&nodes), 2);
        assert_eq!(latest_epoch(&nodes), Some(Epoch(2)));
    }

    #[test]
    fn no_spurious_reps_in_a_consistent_network() {
        let mut nodes = make_nodes(3);
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        assert_eq!(count_spurious(&nodes), 0);
        assert_eq!(count_stale_claims(&nodes), 0);
    }

    #[test]
    fn dot_output_marks_representatives() {
        let mut nodes = make_nodes(2);
        nodes[1].rep_of = Some((NodeId(0), Epoch(1)));
        nodes[1].mode = Mode::Passive;
        nodes[0].represents.insert(NodeId(1), Epoch(1));
        let s = Snapshot::from_nodes(&nodes);
        let dot = s.to_dot(|id| (id.0 as f64 * 0.1, 0.5));
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.starts_with("graph snapshot {"));
    }
}
