//! Error type for the snapshot core.
//!
//! The protocol crates are panic-free in library code (enforced by
//! `cargo xtask analyze`): conditions that used to `expect` now
//! surface here so callers decide whether to degrade or abort.

use std::fmt;

/// Errors surfaced by the snapshot protocol and query execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreError {
    /// TAG execution was requested for a query with no aggregate
    /// function (TAG computes aggregates in-network; a selection
    /// query has nothing to aggregate).
    MissingAggregate,
    /// A least-squares fit was requested on statistics whose `x` has
    /// no variance (including `n <= 1`); Lemma 1's denominator
    /// vanishes and no unique line exists.
    DegenerateFit {
        /// Number of cached pairs.
        n: u32,
        /// Mean of the cached `y` values — the optimal constant
        /// fallback when the caller chooses to degrade.
        mean_y: f64,
    },
    /// A query was issued while the network has no usable nodes (the
    /// sink is dead, or every node is dead — e.g. after a region
    /// blackout injected by the fault engine). Queries on an
    /// unavailable network return this typed error instead of
    /// panicking or reporting zero coverage as if it were data.
    NetworkUnavailable {
        /// Number of alive nodes at query time (0 when the whole
        /// network is down; non-zero means the sink itself was dead).
        alive: usize,
    },
    /// A checkpoint failed structural validation (vector lengths
    /// disagree, an id points outside the deployment, or cache-line
    /// statistics contradict the pair count) — surfaced instead of
    /// indexing panics when store-decoded data is rehydrated.
    InvalidCheckpoint {
        /// What failed, for diagnostics.
        detail: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingAggregate => {
                f.write_str("TAG execution requires an aggregate function")
            }
            CoreError::DegenerateFit { n, mean_y } => write!(
                f,
                "least-squares fit is degenerate ({n} pair(s), zero x-variance); \
                 constant fallback would be {mean_y}"
            ),
            CoreError::NetworkUnavailable { alive } => write!(
                f,
                "query issued on an unavailable network ({alive} node(s) alive)"
            ),
            CoreError::InvalidCheckpoint { detail } => {
                write!(f, "invalid checkpoint: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        assert!(CoreError::MissingAggregate
            .to_string()
            .contains("aggregate"));
        let e = CoreError::DegenerateFit { n: 1, mean_y: 2.5 };
        assert!(e.to_string().contains("1 pair"));
        assert!(e.to_string().contains("2.5"));
        let e = CoreError::NetworkUnavailable { alive: 0 };
        assert!(e.to_string().contains("unavailable"));
        assert!(e.to_string().contains("0 node"));
        let e = CoreError::InvalidCheckpoint {
            detail: "node count",
        };
        assert!(e.to_string().contains("invalid checkpoint"));
        assert!(e.to_string().contains("node count"));
    }
}
