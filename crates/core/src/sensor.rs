//! The per-node state machine.
//!
//! Each sensor owns its model cache, its mode flag (undefined /
//! ACTIVE / PASSIVE, Section 5), its view of who represents it and whom
//! it represents, and the per-election scratch state (offers heard,
//! candidate list, refinement-rule flags). The election engine and the
//! maintenance protocol drive these nodes by delivering messages; no
//! component ever reads another node's private state directly.

use crate::cache::{CacheConfig, ModelCache};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A node's mode flag (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Not yet decided in the current election.
    Undefined,
    /// Represents a non-empty set of nodes (including, by default,
    /// itself); responds to snapshot queries.
    Active,
    /// Represented by another node; stays silent during snapshot
    /// queries.
    Passive,
}

/// An offer of representation heard during an election: `from` claims
/// it can represent this node, along with the size of its candidate
/// list and the number of nodes it already represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// The candidate representative.
    pub from: NodeId,
    /// `length(Cand_nodes_from)` in this election.
    pub cand_len: usize,
    /// Nodes `from` already represents (used by maintenance-mode
    /// selection, Section 5.1).
    pub already: usize,
}

impl Offer {
    /// The paper's selection score. Initial elections rank offers by
    /// candidate-list length alone; maintenance re-elections add the
    /// number of nodes the candidate already represents.
    pub fn score(&self, count_already: bool) -> usize {
        self.cand_len + if count_already { self.already } else { 0 }
    }
}

/// One sensor node's complete protocol state.
#[derive(Debug, Clone)]
pub struct SensorNode {
    id: NodeId,
    /// The model cache (public: the cache manager has its own API).
    pub cache: ModelCache,
    pub(crate) mode: Mode,
    /// Who represents this node: `None` means "myself" (the default).
    pub(crate) rep_of: Option<(NodeId, Epoch)>,
    /// Nodes this node believes it represents, with the epoch of
    /// their election (used to filter spurious claims).
    pub(crate) represents: BTreeMap<NodeId, Epoch>,

    // ---- per-election scratch ----
    /// Nodes this node offered to represent in the current election.
    pub(crate) cand_list: Vec<NodeId>,
    /// Offers heard in the current election.
    pub(crate) offers: Vec<Offer>,
    /// Candidate-list lengths overheard (for Rule-0 tie-breaks).
    pub(crate) heard_cand_len: BTreeMap<NodeId, usize>,
    /// Refinement bookkeeping: whether the Rule-2 recall has been sent
    /// this election (at most one, per the paper's message bound).
    pub(crate) sent_recall: bool,
    /// Rule-3: the representative whose acknowledgment this node is
    /// waiting for before going PASSIVE.
    pub(crate) waiting_ack_from: Option<NodeId>,
    /// Rounds until the Rule-3 notification may be re-sent. Under
    /// perfect links the acknowledgment arrives before the first
    /// retry, so exactly one notification is sent (the paper's <= 2
    /// refinement messages); retries only fire when loss ate the
    /// handshake ("Lost acknowledgments are handled by Rule-4" is the
    /// final backstop).
    pub(crate) notify_cooldown: u8,
    /// Representatives overheard acknowledging this node as a member.
    /// An overheard acknowledgment is as good as an addressed one —
    /// the representative is ACTIVE and lists us — so Rule 3 can go
    /// PASSIVE without a further exchange.
    pub(crate) acked_reps: BTreeSet<NodeId>,
    /// Rounds spent with an undefined mode (drives Rule-4).
    pub(crate) rounds_undefined: u32,
    /// Whether this node was forced ACTIVE by the Rule-4 timeout.
    pub(crate) forced_active: bool,
    /// Members that asked this node to stay active and have not yet
    /// been acknowledged.
    pub(crate) pending_ack_members: Vec<NodeId>,
    /// Set while the node is deliberately shedding load (energy
    /// handoff): it ignores invitations instead of offering candidacy.
    pub(crate) refusing_invites: bool,
}

impl SensorNode {
    /// A fresh node with an empty cache.
    pub fn new(id: NodeId, cache_config: CacheConfig) -> Self {
        SensorNode {
            id,
            cache: ModelCache::new(cache_config),
            mode: Mode::Active, // a lone node answers for itself
            rep_of: None,
            represents: BTreeMap::new(),
            cand_list: Vec::new(),
            offers: Vec::new(),
            heard_cand_len: BTreeMap::new(),
            sent_recall: false,
            waiting_ack_from: None,
            notify_cooldown: 0,
            acked_reps: BTreeSet::new(),
            rounds_undefined: 0,
            forced_active: false,
            pending_ack_members: Vec::new(),
            refusing_invites: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current mode flag.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The node representing this one (`None` = itself).
    pub fn representative(&self) -> Option<NodeId> {
        self.rep_of.map(|(id, _)| id)
    }

    /// Epoch at which the current representative was accepted.
    pub fn representative_epoch(&self) -> Option<Epoch> {
        self.rep_of.map(|(_, e)| e)
    }

    /// The nodes this node believes it represents (never includes
    /// itself; self-representation is implicit).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.represents.keys().copied()
    }

    /// Number of represented nodes (excluding itself).
    pub fn member_count(&self) -> usize {
        self.represents.len()
    }

    /// Epoch recorded for a member claim, if any.
    pub fn member_epoch(&self, member: NodeId) -> Option<Epoch> {
        self.represents.get(&member).copied()
    }

    /// True when this node answers snapshot queries.
    pub fn is_active(&self) -> bool {
        self.mode == Mode::Active
    }

    /// True when this node was forced active by the Rule-4 timeout in
    /// the last election.
    pub fn was_forced_active(&self) -> bool {
        self.forced_active
    }

    /// Candidate list built in the most recent election.
    pub fn candidate_list(&self) -> &[NodeId] {
        &self.cand_list
    }

    /// Reset all election state for a brand-new full election: mode
    /// undefined, representation links cleared, scratch cleared.
    pub(crate) fn reset_for_full_election(&mut self) {
        self.mode = Mode::Undefined;
        self.rep_of = None;
        self.represents.clear();
        self.reset_scratch();
    }

    /// Reset only the per-election scratch (partial / maintenance
    /// elections keep standing representation links).
    pub(crate) fn reset_scratch(&mut self) {
        self.cand_list.clear();
        self.offers.clear();
        self.heard_cand_len.clear();
        self.sent_recall = false;
        self.waiting_ack_from = None;
        self.notify_cooldown = 0;
        self.acked_reps.clear();
        self.rounds_undefined = 0;
        self.forced_active = false;
        self.pending_ack_members.clear();
    }

    /// Pick the best offer: maximum score, ties broken by the larger
    /// node id (the paper's tie-break).
    pub(crate) fn best_offer(&self, count_already: bool) -> Option<Offer> {
        self.offers
            .iter()
            .copied()
            .max_by_key(|o| (o.score(count_already), o.from))
    }

    /// `length(Cand_nodes_j)` as overheard in this election, 0 when
    /// the broadcast was lost.
    pub(crate) fn heard_len(&self, j: NodeId) -> usize {
        self.heard_cand_len.get(&j).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn node(id: u32) -> SensorNode {
        SensorNode::new(NodeId(id), CacheConfig::default())
    }

    #[test]
    fn fresh_node_represents_itself_actively() {
        let n = node(3);
        assert_eq!(n.mode(), Mode::Active);
        assert_eq!(n.representative(), None);
        assert_eq!(n.member_count(), 0);
        assert!(n.is_active());
    }

    #[test]
    fn full_reset_clears_links_and_mode() {
        let mut n = node(1);
        n.rep_of = Some((NodeId(2), Epoch(1)));
        n.represents.insert(NodeId(3), Epoch(1));
        n.reset_for_full_election();
        assert_eq!(n.mode(), Mode::Undefined);
        assert_eq!(n.representative(), None);
        assert_eq!(n.member_count(), 0);
    }

    #[test]
    fn scratch_reset_keeps_links() {
        let mut n = node(1);
        n.rep_of = Some((NodeId(2), Epoch(1)));
        n.represents.insert(NodeId(3), Epoch(1));
        n.sent_recall = true;
        n.reset_scratch();
        assert_eq!(n.representative(), Some(NodeId(2)));
        assert_eq!(n.member_count(), 1);
        assert!(!n.sent_recall);
    }

    #[test]
    fn best_offer_prefers_longer_lists_then_larger_ids() {
        let mut n = node(0);
        n.offers = vec![
            Offer {
                from: NodeId(5),
                cand_len: 2,
                already: 0,
            },
            Offer {
                from: NodeId(9),
                cand_len: 3,
                already: 0,
            },
            Offer {
                from: NodeId(7),
                cand_len: 3,
                already: 0,
            },
        ];
        // Longest list wins; tie between 9 and 7 goes to the larger id.
        assert_eq!(n.best_offer(false).unwrap().from, NodeId(9));
    }

    #[test]
    fn maintenance_scoring_adds_current_members() {
        let mut n = node(0);
        n.offers = vec![
            Offer {
                from: NodeId(1),
                cand_len: 2,
                already: 0,
            },
            Offer {
                from: NodeId(2),
                cand_len: 1,
                already: 4,
            },
        ];
        // Initial-mode scoring ignores `already`.
        assert_eq!(n.best_offer(false).unwrap().from, NodeId(1));
        // Maintenance-mode scoring counts it (Section 5.1).
        assert_eq!(n.best_offer(true).unwrap().from, NodeId(2));
    }

    #[test]
    fn no_offers_means_no_representative() {
        let n = node(0);
        assert!(n.best_offer(true).is_none());
    }

    #[test]
    fn heard_len_defaults_to_zero_for_lost_broadcasts() {
        let mut n = node(0);
        n.heard_cand_len.insert(NodeId(4), 7);
        assert_eq!(n.heard_len(NodeId(4)), 7);
        assert_eq!(n.heard_len(NodeId(5)), 0);
    }
}
