//! `SensorNetwork`: the deployment-level facade.
//!
//! Wires a [`snapshot_netsim::Network`] carrying [`ProtocolMsg`]
//! traffic to a vector of [`SensorNode`] state machines and a
//! measurement [`Trace`], and exposes the operations the paper's
//! experiments are built from: training (the initial select-all query
//! whose broadcasts let neighbors build models), full elections,
//! maintenance cycles, snooping windows, and query execution in both
//! modes.

use crate::config::SnapshotConfig;
use crate::election::{run_full_election, ElectionOutcome, ProtocolMsg};
use crate::error::CoreError;
use crate::maintenance::reconcile::ReconcileReport;
use crate::maintenance::repair::RepairTracker;
use crate::maintenance::rotation::RotationReport;
use crate::maintenance::{
    reconcile, rotate_representatives, run_handoff_check, run_maintenance, MaintenanceReport,
};
use crate::query::tag::{execute_tag, TagResult};
use crate::query::{execute, QueryMode, QueryResult, SnapshotQuery};
use crate::sensor::SensorNode;
use crate::snapshot::{count_spurious, Snapshot};
use snapshot_datagen::Trace;
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::rng::derive_seed;
use snapshot_netsim::rng::DetRng;
use snapshot_netsim::rng::RngExt;
use snapshot_netsim::telemetry::QueryStatus;
use snapshot_netsim::{
    Delivery, EnergyModel, Event, LinkModel, NetStats, Network, NodeId, Phase, SpanKind, Telemetry,
    Topology,
};

/// A full sensor-network deployment.
///
/// `Clone` replicates all protocol and cache state; the clone's
/// protocol RNG is re-seeded deterministically (from the seed and the
/// current epoch), so clones are reproducible but do not continue the
/// parent's exact random stream.
#[derive(Debug)]
pub struct SensorNetwork {
    net: Network<ProtocolMsg>,
    nodes: Vec<SensorNode>,
    cfg: SnapshotConfig,
    trace: Trace,
    now: usize,
    epoch: Epoch,
    rng: DetRng,
    query_seq: u64,
    repair: RepairTracker,
    /// Open telemetry span covering the current repair episode
    /// (0 = none). Opened by [`Self::kill_representative`], closed by
    /// `observe_repair` when every orphan is re-covered.
    repair_span: u64,
    /// Recycled drain-candidate buffer for [`Self::broadcast_and_snoop`]
    /// (pure capacity — always logically empty between steps).
    scratch_ids: Vec<NodeId>,
    /// Recycled inbox buffer for [`Self::broadcast_and_snoop`].
    scratch_inbox: Vec<Delivery<ProtocolMsg>>,
}

impl Clone for SensorNetwork {
    fn clone(&self) -> Self {
        SensorNetwork {
            net: self.net.clone(),
            nodes: self.nodes.clone(),
            cfg: self.cfg,
            trace: self.trace.clone(),
            now: self.now,
            epoch: self.epoch,
            rng: DetRng::seed_from_u64(derive_seed(self.cfg.seed, 0x2_C10 ^ self.epoch.0)),
            query_seq: self.query_seq,
            repair: self.repair.clone(),
            repair_span: self.repair_span,
            // Scratch buffers are pure capacity; clones start cold.
            scratch_ids: Vec::new(),
            scratch_inbox: Vec::new(),
        }
    }
}

/// Broadcast `j`'s current measurement (free function so the caller
/// can keep a borrowed trace snapshot alive across the send loop).
fn send_measurement(net: &mut Network<ProtocolMsg>, values: &[f64], j: NodeId) {
    if net.is_alive(j) {
        let msg = ProtocolMsg::Data {
            value: values[j.index()],
        };
        let bytes = msg.wire_bytes();
        net.broadcast(j, msg, bytes, Phase::Data);
    }
}

impl SensorNetwork {
    /// Build a deployment with infinite batteries (the Section 6.1
    /// sensitivity-analysis setting).
    ///
    /// # Panics
    /// Panics when the trace's node count differs from the topology's
    /// or the configuration is invalid — both are experiment-definition
    /// errors.
    pub fn new(
        topology: Topology,
        link: LinkModel,
        energy: EnergyModel,
        cfg: SnapshotConfig,
        trace: Trace,
    ) -> Self {
        let net = Network::new(topology, link, energy, derive_seed(cfg.seed, 1));
        Self::from_parts(net, cfg, trace)
    }

    /// Build a deployment where every node starts with `capacity`
    /// transmission-equivalents of battery (Figure 10 uses 500).
    pub fn with_battery_capacity(
        topology: Topology,
        link: LinkModel,
        energy: EnergyModel,
        capacity: f64,
        cfg: SnapshotConfig,
        trace: Trace,
    ) -> Self {
        let net = Network::with_finite_batteries(
            topology,
            link,
            energy,
            capacity,
            derive_seed(cfg.seed, 1),
        );
        Self::from_parts(net, cfg, trace)
    }

    #[allow(clippy::expect_used)] // documented fail-fast, see xtask-allow below
    fn from_parts(net: Network<ProtocolMsg>, cfg: SnapshotConfig, trace: Trace) -> Self {
        assert_eq!(
            net.len(),
            trace.nodes(),
            "trace covers {} nodes but the topology has {}",
            trace.nodes(),
            net.len()
        );
        // xtask-allow(no_expect): constructor fail-fast on a bad experiment definition, like the assert above
        cfg.validate().expect("invalid snapshot configuration");
        let nodes = net
            .node_ids()
            .map(|id| SensorNode::new(id, cfg.cache))
            .collect();
        let rng = DetRng::seed_from_u64(derive_seed(cfg.seed, 2));
        SensorNetwork {
            net,
            nodes,
            cfg,
            trace,
            now: 0,
            epoch: Epoch(0),
            rng,
            query_seq: 0,
            repair: RepairTracker::new(),
            repair_span: 0,
            scratch_ids: Vec::new(),
            scratch_inbox: Vec::new(),
        }
    }

    // ---- Accessors -----------------------------------------------------

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the deployment has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The underlying radio network.
    pub fn net(&self) -> &Network<ProtocolMsg> {
        &self.net
    }

    /// Mutable access to the radio network (failure injection,
    /// statistics resets).
    pub fn net_mut(&mut self) -> &mut Network<ProtocolMsg> {
        &mut self.net
    }

    /// One node's protocol state.
    pub fn node(&self, id: NodeId) -> &SensorNode {
        &self.nodes[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// The configuration in force.
    pub fn config(&self) -> &SnapshotConfig {
        &self.cfg
    }

    /// Adjust the representation threshold `T` for subsequent
    /// elections and maintenance checks (Section 3.1: each snapshot
    /// query may define its own error threshold).
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!(
            threshold >= 0.0,
            "threshold must be non-negative, got {threshold}"
        );
        self.cfg.threshold = threshold;
    }

    /// Change the error metric (and threshold) for subsequent
    /// elections — the `d()` of Section 3 is application-chosen.
    pub fn set_metric(&mut self, metric: crate::metrics::ErrorMetric, threshold: f64) {
        assert!(
            threshold >= 0.0,
            "threshold must be non-negative, got {threshold}"
        );
        self.cfg.metric = metric;
        self.cfg.threshold = threshold;
    }

    /// Adjust the probability of caching values carried by maintenance
    /// invitations (see [`SnapshotConfig::invite_learn_prob`]).
    pub fn set_invite_learn_prob(&mut self, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "probability expected, got {prob}"
        );
        self.cfg.invite_learn_prob = prob;
    }

    /// Enable (or adjust) the Section 5.1 energy-aware handoff: during
    /// maintenance, a representative whose battery fraction is below
    /// this value announces a handoff and its members re-elect.
    /// Setting 0 disables the behavior.
    pub fn set_energy_handoff_fraction(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "handoff fraction must be a probability, got {fraction}"
        );
        self.cfg.energy_handoff_fraction = fraction;
    }

    /// Message statistics.
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Current simulation time (index into the trace; clamped reads
    /// past the end hold the last value).
    pub fn now(&self) -> usize {
        self.now
    }

    /// Jump to an absolute time.
    pub fn set_time(&mut self, t: usize) {
        self.now = t;
    }

    /// Advance time by `dt`.
    pub fn advance(&mut self, dt: usize) {
        self.now += dt;
    }

    /// Current election epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// `N_i`'s current measurement.
    pub fn value(&self, id: NodeId) -> f64 {
        self.trace.value(id, self.now.min(self.trace.steps() - 1))
    }

    /// Every node's current measurement.
    pub fn values(&self) -> Vec<f64> {
        let t = self.now.min(self.trace.steps() - 1);
        self.trace.snapshot_at(t).to_vec()
    }

    // ---- Model building --------------------------------------------------

    /// Run the paper's training window: for each tick in
    /// `[from, to)`, every alive node broadcasts its measurement (the
    /// initial query "selecting the values from all nodes") and every
    /// node that hears a broadcast caches the pair. Time is left at
    /// `to` on return.
    pub fn train(&mut self, from: usize, to: usize) {
        for t in from..to {
            self.now = t;
            self.broadcast_and_snoop(None, 1.0);
        }
        self.now = to;
    }

    /// One snooping step (Section 6.3's maintenance runs): nodes in
    /// `participants` (all alive nodes when `None`) broadcast their
    /// measurements; each hearer caches each heard pair independently
    /// with probability `snoop_prob`.
    pub fn snoop_step(&mut self, participants: Option<&[NodeId]>, snoop_prob: f64) {
        self.broadcast_and_snoop(participants, snoop_prob);
    }

    /// Steady-state allocation contract (DESIGN.md §16): no per-step
    /// id-list or value-snapshot clones. Measurements are read from a
    /// borrowed trace snapshot, the `participants: None` sender loop is
    /// index-driven, and the receive side visits only the wake-list
    /// (nodes the delivery round actually reached) through two
    /// recycled scratch buffers.
    fn broadcast_and_snoop(&mut self, participants: Option<&[NodeId]>, snoop_prob: f64) {
        let t = self.now.min(self.trace.steps() - 1);
        let values = self.trace.snapshot_at(t);
        match participants {
            Some(p) => {
                for &j in p {
                    send_measurement(&mut self.net, values, j);
                }
            }
            None => {
                for i in 0..self.nodes.len() {
                    send_measurement(&mut self.net, values, NodeId::from_index(i));
                }
            }
        }
        self.net.deliver();
        let mut drain_ids = std::mem::take(&mut self.scratch_ids);
        self.net.drain_candidates_into(&mut drain_ids);
        let mut inbox = std::mem::take(&mut self.scratch_inbox);
        for &i in &drain_ids {
            if !self.net.is_alive(i) {
                self.net.clear_inbox(i);
                continue;
            }
            self.net.take_inbox_into(i, &mut inbox);
            let own = values[i.index()];
            for d in inbox.drain(..) {
                if let ProtocolMsg::Data { value } = d.payload {
                    if snoop_prob < 1.0 && !self.rng.random_bool(snoop_prob) {
                        continue;
                    }
                    let decision = self.nodes[i.index()].cache.observe(d.from, own, value);
                    crate::trace::record_cache_decision(
                        &mut self.net,
                        i,
                        d.from,
                        &decision,
                        &self.nodes[i.index()].cache,
                    );
                    self.net.charge_cache_update(i);
                }
            }
        }
        self.scratch_inbox = inbox;
        self.scratch_ids = drain_ids;
    }

    // ---- Protocol operations ----------------------------------------------

    /// Run a full network-wide election at the current time.
    pub fn elect(&mut self) -> ElectionOutcome {
        self.epoch = self.epoch.next();
        let values = self.values();
        let outcome = run_full_election(
            &mut self.net,
            &mut self.nodes,
            &values,
            &self.cfg,
            self.epoch,
            &mut self.rng,
        );
        self.observe_repair();
        outcome
    }

    /// Run one maintenance cycle (heartbeats + re-elections) at the
    /// current time. When a repair episode is open (see
    /// [`Self::kill_representative`]), the orphan set is re-examined
    /// afterwards, closing the episode once everyone is re-covered.
    pub fn maintain(&mut self) -> MaintenanceReport {
        self.epoch = self.epoch.next();
        let span = self.net.open_span(SpanKind::Maintenance);
        let values = self.values();
        let report = run_maintenance(
            &mut self.net,
            &mut self.nodes,
            &values,
            &self.cfg,
            self.epoch,
            &mut self.rng,
        );
        self.observe_repair();
        self.net.close_span(span);
        report
    }

    /// Run only the energy-handoff check: exhausted representatives
    /// (battery below the configured fraction) hand their members off
    /// to fresh nodes. Cheap enough to run every few queries.
    pub fn check_handoffs(&mut self) -> MaintenanceReport {
        self.epoch = self.epoch.next();
        let span = self.net.open_span(SpanKind::HandoffCheck);
        let values = self.values();
        let report = run_handoff_check(
            &mut self.net,
            &mut self.nodes,
            &values,
            &self.cfg,
            self.epoch,
            &mut self.rng,
        );
        self.net.close_span(span);
        report
    }

    /// LEACH-style rotation: each representative steps down with the
    /// given probability and its members re-elect.
    pub fn rotate(&mut self, rotation_prob: f64) -> RotationReport {
        self.epoch = self.epoch.next();
        let span = self.net.open_span(SpanKind::Rotation);
        let values = self.values();
        let report = rotate_representatives(
            &mut self.net,
            &mut self.nodes,
            &values,
            &self.cfg,
            self.epoch,
            &mut self.rng,
            rotation_prob,
        );
        self.net.close_span(span);
        report
    }

    /// One spurious-claim reconciliation pass (announce / object /
    /// correct).
    pub fn reconcile(&mut self) -> ReconcileReport {
        let span = self.net.open_span(SpanKind::Reconcile);
        let report = reconcile(&mut self.net, &mut self.nodes);
        self.net.close_span(span);
        report
    }

    // ---- Failure injection & repair measurement ---------------------------

    /// Kill `rep` and open a repair episode tracking its orphaned
    /// members (alive nodes currently pointing at `rep`). Returns the
    /// orphan count. Subsequent [`Self::maintain`] calls close the
    /// episode once every surviving orphan is re-covered; the
    /// measured [`RepairRecord`](crate::maintenance::repair::RepairRecord)s
    /// are available through [`Self::repair`].
    pub fn kill_representative(&mut self, rep: NodeId) -> usize {
        let orphans: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.id() != rep && n.representative() == Some(rep))
            .map(|n| n.id())
            .filter(|&j| self.net.is_alive(j))
            .collect();
        self.net.kill(rep);
        let tick = self.net.round();
        self.repair.begin(rep, tick, orphans.iter().copied());
        if self.repair_span == 0 {
            self.repair_span = self.net.open_span(SpanKind::Repair);
        }
        orphans.len()
    }

    /// The repair tracker: open episode state and finished
    /// time-to-repair records.
    pub fn repair(&self) -> &RepairTracker {
        &self.repair
    }

    /// Close the open repair episode if every surviving orphan points
    /// at an alive representative again (or represents itself).
    fn observe_repair(&mut self) {
        if !self.repair.in_repair() {
            return;
        }
        let tick = self.net.round();
        let net = &self.net;
        let nodes = &self.nodes;
        self.repair.observe(tick, |j| {
            if !net.is_alive(j) {
                // Dead orphans need no representative.
                return true;
            }
            let r = nodes[j.index()].representative().unwrap_or(j);
            net.is_alive(r)
        });
        if !self.repair.in_repair() && self.repair_span != 0 {
            self.net.close_span(self.repair_span);
            self.repair_span = 0;
        }
    }

    /// Execute a query collected at `sink`.
    ///
    /// While a repair episode is open (see
    /// [`Self::kill_representative`]) the query's absolute aggregate
    /// error is accumulated into the episode's record — the
    /// query-error-during-repair metric of the `heal` experiment.
    pub fn query(&mut self, query: &SnapshotQuery, sink: NodeId) -> QueryResult {
        let values = self.values();
        let qspan = self.net.open_span(SpanKind::Query);
        let span = self.begin_query_span(sink, matches!(query.mode, QueryMode::Snapshot));
        let result = execute(&mut self.net, &self.nodes, &values, query, sink);
        self.end_query_span(span, QueryStatus::Ok, result.participants as u32);
        self.net.close_span(qspan);
        self.repair.record_query(result.absolute_error());
        result
    }

    /// Execute a query, first checking the network can answer at all.
    ///
    /// Returns [`CoreError::NetworkUnavailable`] — instead of a
    /// zero-coverage [`QueryResult`] that looks like data — when every
    /// node is dead (e.g. after a fault-engine region blackout swallows
    /// the whole deployment) or when `sink` itself is dead. The failed
    /// attempt still appears in the telemetry trace as a `QueryEnd`
    /// with status `error`.
    pub fn try_query(
        &mut self,
        query: &SnapshotQuery,
        sink: NodeId,
    ) -> Result<QueryResult, CoreError> {
        let alive = self.net.alive_count();
        if alive == 0 || !self.net.is_alive(sink) {
            let qspan = self.net.open_span(SpanKind::Query);
            let span = self.begin_query_span(sink, matches!(query.mode, QueryMode::Snapshot));
            self.end_query_span(span, QueryStatus::Error, 0);
            self.net.close_span(qspan);
            return Err(CoreError::NetworkUnavailable { alive });
        }
        Ok(self.query(query, sink))
    }

    /// Execute an aggregate query as the full message-level TAG
    /// protocol: tree formation by real flooding, partial aggregates
    /// as real (lossy) unicasts. See [`crate::query::tag`].
    ///
    /// Returns [`CoreError::MissingAggregate`] when `query.aggregate`
    /// is `None`.
    pub fn query_tag(
        &mut self,
        query: &SnapshotQuery,
        sink: NodeId,
    ) -> Result<TagResult, CoreError> {
        let values = self.values();
        let qspan = self.net.open_span(SpanKind::Query);
        let span = self.begin_query_span(sink, matches!(query.mode, QueryMode::Snapshot));
        let result = execute_tag(&mut self.net, &self.nodes, &values, query, sink);
        match &result {
            Ok(tag) => self.end_query_span(span, QueryStatus::Ok, tag.tree_size as u32),
            Err(CoreError::MissingAggregate) => {
                self.end_query_span(span, QueryStatus::MissingAggregate, 0);
            }
            Err(_) => self.end_query_span(span, QueryStatus::Error, 0),
        }
        self.net.close_span(qspan);
        result
    }

    // ---- Telemetry --------------------------------------------------------

    /// Switch on event tracing and metrics: a bounded ring of
    /// `capacity` events plus the counter/energy registry. Call before
    /// the operations to observe; export with
    /// [`SensorNetwork::export_trace_jsonl`].
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.net.set_telemetry(Telemetry::full(capacity));
    }

    /// Disable tracing (back to the zero-overhead no-op recorder).
    pub fn disable_telemetry(&mut self) {
        self.net.set_telemetry(Telemetry::off());
    }

    /// The recorded trace as JSON-lines (empty when telemetry is off
    /// or nothing was recorded).
    pub fn export_trace_jsonl(&self) -> String {
        self.net.telemetry().export_jsonl().unwrap_or_default()
    }

    /// Open a query span: allocate an id and emit `QueryBegin`.
    /// Returns `None` (and stays silent) when telemetry is off.
    fn begin_query_span(&mut self, sink: NodeId, snapshot_mode: bool) -> Option<u64> {
        if !self.net.telemetry_enabled() {
            return None;
        }
        self.query_seq += 1;
        let id = self.query_seq;
        let tick = self.net.round();
        self.net.emit(Event::QueryBegin {
            tick,
            id,
            sink: sink.0,
            snapshot_mode,
        });
        Some(id)
    }

    /// Close a query span opened by [`Self::begin_query_span`].
    fn end_query_span(&mut self, span: Option<u64>, status: QueryStatus, participants: u32) {
        if let Some(id) = span {
            let tick = self.net.round();
            self.net.emit(Event::QueryEnd {
                tick,
                id,
                status,
                participants,
            });
        }
    }

    // ---- Inspection -------------------------------------------------------

    /// The reconciled snapshot view.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_nodes(&self.nodes)
    }

    /// Snapshot size `n1`: alive ACTIVE nodes.
    pub fn snapshot_size(&self) -> usize {
        self.net
            .node_ids()
            .filter(|&i| self.net.is_alive(i) && self.nodes[i.index()].is_active())
            .count()
    }

    /// Number of spurious representatives (Figure 13's metric).
    pub fn spurious_representatives(&self) -> usize {
        count_spurious(&self.nodes)
    }

    /// Mean squared error of the estimates representatives would give
    /// for the nodes they represent, at the current time (Figure 12's
    /// metric). `None` when nobody is represented.
    pub fn mean_estimate_sse(&self) -> Option<f64> {
        let values = self.values();
        let mut sum = 0.0;
        let mut n = 0usize;
        for node in &self.nodes {
            let j = node.id();
            if let Some(rep) = node.representative() {
                if let Some(est) = self.nodes[rep.index()]
                    .cache
                    .estimate(j, values[rep.index()])
                {
                    let e = est - values[j.index()];
                    sum += e * e;
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// A deterministic RNG stream for experiment-level randomness
    /// (e.g. random sinks), derived from the configuration seed.
    pub fn experiment_rng(&self) -> DetRng {
        DetRng::seed_from_u64(derive_seed(self.cfg.seed, 3))
    }

    // ---- Checkpointing ----------------------------------------------------

    /// Extract a persistable [`CheckpointState`]: topology (adjacency
    /// verbatim), aliveness, current measurements, and every node's
    /// protocol and cache state with bit-exact statistics. A pure
    /// read — extracting twice yields equal states.
    pub fn checkpoint(&self) -> crate::checkpoint::CheckpointState {
        crate::checkpoint::extract(
            &self.net,
            &self.nodes,
            self.now,
            self.epoch.0,
            self.values(),
        )
    }

    /// Rehydrate this deployment from a checkpoint taken on an
    /// identically-constructed one (same topology, configuration and
    /// trace): restores time, epoch, per-node aliveness and all
    /// protocol/cache state, so queries answer exactly as they would
    /// have on the checkpointed original.
    ///
    /// The protocol RNG is re-seeded deterministically from the seed
    /// and restored epoch (the same scheme [`Clone`] uses), so a
    /// restored deployment is reproducible but does not continue the
    /// original's exact random stream. Aliveness is restored through
    /// the fault-injection API: reviving a battery-depleted corpse is
    /// impossible, so restoring onto a deployment whose batteries have
    /// already drained past the checkpoint is unsupported.
    pub fn restore_checkpoint(
        &mut self,
        cp: &crate::checkpoint::CheckpointState,
    ) -> Result<(), CoreError> {
        cp.validate()?;
        if cp.nodes.len() != self.nodes.len() {
            return Err(CoreError::InvalidCheckpoint {
                detail: "checkpoint size differs from the deployment",
            });
        }
        self.now = cp.tick as usize;
        self.epoch = Epoch(cp.epoch);
        self.rng = DetRng::seed_from_u64(derive_seed(self.cfg.seed, 0x2_C10 ^ self.epoch.0));
        for i in 0..self.nodes.len() {
            let id = NodeId::from_index(i);
            if cp.alive[i] != self.net.is_alive(id) {
                if cp.alive[i] {
                    self.net.revive(id);
                } else {
                    self.net.kill(id);
                }
            }
        }
        crate::checkpoint::apply_nodes(cp, &mut self.nodes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, QueryMode, SpatialPredicate};
    use snapshot_datagen::{random_walk, RandomWalkConfig};

    /// The paper's canonical sensitivity setup: 100 nodes, range √2,
    /// no loss, cache 2048 B, T = 1, train on the first 10 ticks,
    /// elect at t = 100.
    fn paper_setup(k: usize, seed: u64) -> SensorNetwork {
        let data = random_walk(&RandomWalkConfig::paper_defaults(k, seed)).unwrap();
        let topo = Topology::random_uniform(100, std::f64::consts::SQRT_2, seed)
            .expect("valid deployment");
        let cfg = SnapshotConfig::paper(1.0, 2048, seed);
        let mut sn = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            cfg,
            data.trace,
        );
        sn.train(0, 10);
        sn.set_time(99);
        sn
    }

    #[test]
    fn one_class_converges_to_a_tiny_snapshot() {
        // Figure 6, K = 1: "the network successfully picks a single
        // representative for all 100 nodes". Message loss is zero and
        // the radio covers everyone, so the snapshot should be minimal
        // (we allow a little slack for tie-break asymmetries).
        let mut sn = paper_setup(1, 42);
        let out = sn.elect();
        assert!(
            out.snapshot_size <= 3,
            "K=1 snapshot should be ~1 representative, got {}",
            out.snapshot_size
        );
        assert_eq!(out.snapshot_size + out.passive, 100);
    }

    #[test]
    fn snapshot_grows_with_class_count() {
        let mut small = paper_setup(1, 7);
        let s_small = small.elect().snapshot_size;
        let mut large = paper_setup(50, 7);
        let s_large = large.elect().snapshot_size;
        assert!(
            s_large > s_small,
            "K=50 snapshot ({s_large}) should exceed K=1 snapshot ({s_small})"
        );
    }

    #[test]
    fn election_respects_the_papers_message_bound() {
        // Table 2: at most 5 messages per node for discovery
        // (invitation + candidates + accept + up to 2 refinement);
        // one rare cascade corner legitimately adds a third
        // refinement message (notify, then inherit a member and turn
        // ACTIVE: ack + recall), so the hard bound checked here is 6.
        let mut sn = paper_setup(10, 3);
        sn.net_mut().stats_mut().reset();
        let _ = sn.elect();
        let max = sn.stats().max_sent_per_node();
        assert!(max <= 6, "a node sent {max} > 6 messages during election");
        for id in 0..100u32 {
            let id = NodeId(id);
            assert!(sn.stats().sent_in_phase(id, Phase::Invitation) <= 1);
            assert!(sn.stats().sent_in_phase(id, Phase::Candidates) <= 1);
            assert!(sn.stats().sent_in_phase(id, Phase::Accept) <= 1);
            assert!(sn.stats().sent_in_phase(id, Phase::Refinement) <= 3);
        }
    }

    #[test]
    fn snapshot_queries_save_participants_on_real_elections() {
        let mut sn = paper_setup(1, 11);
        let _ = sn.elect();
        let mut rng = sn.experiment_rng();
        let mut saved = 0usize;
        for _ in 0..20 {
            let x: f64 = rng.random_f64();
            let y: f64 = rng.random_f64();
            let sink = NodeId(rng.random_range(0..100u32));
            let pred = SpatialPredicate::window(x, y, 0.5);
            let reg = sn.query(
                &SnapshotQuery::aggregate(pred, Aggregate::Sum, QueryMode::Regular),
                sink,
            );
            let snap = sn.query(
                &SnapshotQuery::aggregate(pred, Aggregate::Sum, QueryMode::Snapshot),
                sink,
            );
            assert!(snap.participants <= reg.participants);
            saved += reg.participants - snap.participants;
        }
        assert!(saved > 0, "snapshot queries never saved a participant");
    }

    #[test]
    fn estimates_respect_the_threshold_at_election_time() {
        // Immediately after election, every represented node's
        // estimate was checked against T (= 1, sse): verify through
        // the public accessor.
        let mut sn = paper_setup(5, 13);
        let _ = sn.elect();
        if let Some(sse) = sn.mean_estimate_sse() {
            assert!(
                sse <= 1.5,
                "mean estimate sse {sse} far above the threshold"
            );
        }
    }

    #[test]
    fn maintenance_on_healthy_network_is_calm() {
        let mut sn = paper_setup(1, 17);
        let _ = sn.elect();
        let before = sn.snapshot_size();
        let report = sn.maintain();
        // No deaths, perfect radio, static-ish walk: no silence
        // failures; snapshot stays small.
        assert_eq!(report.silence_detected, 0);
        let after = sn.snapshot_size();
        assert!(
            after <= before + 3,
            "snapshot exploded: {before} -> {after}"
        );
    }

    #[test]
    fn killed_representative_self_heals_via_maintenance() {
        let mut sn = paper_setup(1, 19);
        let _ = sn.elect();
        let snapshot = sn.snapshot();
        let rep = snapshot.representatives()[0];
        let members = snapshot.members_of(rep).len();
        assert!(members > 0);
        sn.net_mut().kill(rep);
        let report = sn.maintain();
        assert!(
            report.silence_detected > 0,
            "nobody noticed the dead representative"
        );
        // Every survivor has an alive representative again.
        for id in 0..100u32 {
            let id = NodeId(id);
            if !sn.net().is_alive(id) {
                continue;
            }
            let r = sn.node(id).representative().unwrap_or(id);
            assert!(
                sn.net().is_alive(r),
                "{id} points at dead representative {r}"
            );
        }
    }

    #[test]
    fn repair_episode_measures_time_to_repair() {
        let mut sn = paper_setup(1, 19);
        let _ = sn.elect();
        let rep = sn.snapshot().representatives()[0];
        let orphans = sn.kill_representative(rep);
        assert!(orphans > 0, "the K=1 representative must have members");
        assert!(sn.repair().in_repair());
        let mut cycles = 0;
        while sn.repair().in_repair() && cycles < 10 {
            let _ = sn.maintain();
            cycles += 1;
        }
        assert!(!sn.repair().in_repair(), "repair never completed");
        let rec = &sn.repair().records()[0];
        assert_eq!(rec.rep, rep);
        assert_eq!(rec.orphans, orphans);
        assert!(rec.time_to_repair() > 0, "repair cannot be instantaneous");
    }

    #[test]
    fn queries_during_repair_accumulate_error() {
        let mut sn = paper_setup(1, 37);
        let _ = sn.elect();
        let rep = sn.snapshot().representatives()[0];
        sn.kill_representative(rep);
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Snapshot);
        let sink = sn.net().node_ids().find(|&i| sn.net().is_alive(i)).unwrap();
        let _ = sn.query(&q, sink);
        while sn.repair().in_repair() {
            let _ = sn.maintain();
        }
        assert_eq!(sn.repair().records()[0].queries_during_repair, 1);
    }

    #[test]
    fn try_query_on_dead_network_returns_typed_error() {
        let mut sn = paper_setup(1, 31);
        sn.enable_telemetry(1024);
        for id in 0..100u32 {
            sn.net_mut().kill(NodeId(id));
        }
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular);
        let err = sn.try_query(&q, NodeId(0)).unwrap_err();
        assert_eq!(err, CoreError::NetworkUnavailable { alive: 0 });
        let trace = sn.export_trace_jsonl();
        assert!(
            trace.contains("\"status\":\"error\""),
            "failed query must leave an error span in the trace"
        );
    }

    #[test]
    fn try_query_at_a_dead_sink_reports_survivors() {
        let mut sn = paper_setup(1, 31);
        sn.net_mut().kill(NodeId(0));
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular);
        let err = sn.try_query(&q, NodeId(0)).unwrap_err();
        assert_eq!(err, CoreError::NetworkUnavailable { alive: 99 });
        // A live sink still answers.
        assert!(sn.try_query(&q, NodeId(1)).is_ok());
    }

    #[test]
    fn values_track_the_trace() {
        let sn = paper_setup(1, 23);
        assert_eq!(sn.now(), 99);
        let v = sn.values();
        assert_eq!(v.len(), 100);
        assert_eq!(v[5], sn.value(NodeId(5)));
    }

    #[test]
    fn time_past_the_trace_holds_the_last_value() {
        let mut sn = paper_setup(1, 29);
        sn.set_time(99);
        let at_end = sn.value(NodeId(0));
        sn.set_time(5000);
        assert_eq!(sn.value(NodeId(0)), at_end);
    }

    #[test]
    #[should_panic(expected = "trace covers")]
    fn mismatched_trace_is_rejected() {
        let data = random_walk(&RandomWalkConfig {
            n_nodes: 5,
            ..RandomWalkConfig::paper_defaults(1, 1)
        })
        .unwrap();
        let topo = Topology::random_uniform(10, 1.0, 1).expect("valid deployment");
        let _ = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            SnapshotConfig::default(),
            data.trace,
        );
    }
}
