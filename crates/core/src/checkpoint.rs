//! Checkpoint extraction and rehydration.
//!
//! A [`CheckpointState`] is a frozen, self-contained image of a
//! deployment at one simulation tick: the topology (positions, range
//! and the adjacency lists *verbatim*, because BFS tree construction
//! is neighbor-order-sensitive), per-node aliveness, the current
//! measurements, and every node's protocol and cache state — with the
//! cache's running [`SuffStats`] carried bit-exactly rather than
//! recomputed, so a rehydrated query answers byte-identically to the
//! live deployment it was taken from.
//!
//! Three consumers:
//!
//! * [`SensorNetwork::checkpoint`](crate::network::SensorNetwork::checkpoint)
//!   extracts one; the `snapshot-store` crate persists it.
//! * [`execute_at`] answers a query against a checkpoint alone (the
//!   `AS OF <tick>` time-travel path) — no simulator required.
//! * [`SensorNetwork::restore_checkpoint`](crate::network::SensorNetwork::restore_checkpoint)
//!   rehydrates a freshly-constructed deployment for crash recovery.
//!
//! Per-election scratch (offer lists, cooldowns, tie-break tallies) is
//! *not* captured: it is reset at the start of every election, so a
//! checkpoint taken at an operation boundary never needs it. The two
//! scratch flags that do survive elections (`forced_active`,
//! `refusing_invites`) are captured.

use crate::cache::{CacheConfig, CacheLine, CachePolicy, LineKey, MeasurementId, ModelCache};
use crate::election::ProtocolMsg;
use crate::error::CoreError;
use crate::model::SuffStats;
use crate::query::{execute_frozen, QueryResult, SnapshotQuery};
use crate::sensor::{Mode, SensorNode};
use snapshot_netsim::clock::Epoch;
use snapshot_netsim::{Network, NodeId, Position, Topology};
use std::collections::BTreeMap;

/// One cached line of one node: the raw pairs plus the running
/// statistics exactly as they were (see [`CacheLine::from_parts`] for
/// why the stats are not recomputed from the pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct LineCheckpoint {
    /// The modeled neighbor.
    pub node: u32,
    /// Which of its sensing elements.
    pub measurement: u8,
    /// Running sufficient statistics, bit-exact.
    pub stats: SuffStats,
    /// The cached `(x_i, x_j)` pairs, oldest first.
    pub pairs: Vec<(f64, f64)>,
}

/// One node's persistent protocol state.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCheckpoint {
    /// Mode flag (ACTIVE / PASSIVE / undefined).
    pub mode: Mode,
    /// Who represents this node, with the election epoch of the
    /// acceptance (`None` = itself).
    pub rep_of: Option<(u32, u64)>,
    /// Members this node believes it represents, with their epochs,
    /// in id order.
    pub represents: Vec<(u32, u64)>,
    /// Whether the Rule-4 timeout forced this node ACTIVE.
    pub forced_active: bool,
    /// Whether the node is shedding load (energy handoff) and
    /// refusing invitations.
    pub refusing_invites: bool,
    /// The cache's round-robin rotation marker.
    pub rr_after: Option<(u32, u8)>,
    /// Cache lines in key order.
    pub lines: Vec<LineCheckpoint>,
}

/// A frozen image of a whole deployment at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Simulation time the checkpoint was taken at.
    pub tick: u64,
    /// Election epoch at that time.
    pub epoch: u64,
    /// Radio range.
    pub range: f64,
    /// Node positions, in id order.
    pub positions: Vec<(f64, f64)>,
    /// Adjacency lists, verbatim (BFS parent selection depends on
    /// neighbor order, so these must round-trip unsorted).
    pub neighbors: Vec<Vec<u32>>,
    /// Aliveness per node.
    pub alive: Vec<bool>,
    /// Current measurement per node at `tick`.
    pub values: Vec<f64>,
    /// Cache budget in force (shared by every node).
    pub budget_bytes: u64,
    /// Bytes per cached pair.
    pub pair_bytes: u64,
    /// Cache replacement policy.
    pub policy: CachePolicy,
    /// Per-node protocol state, in id order.
    pub nodes: Vec<NodeCheckpoint>,
}

/// Coverage / quality accounting derived from a checkpoint — the
/// flags the store's verifier cross-checks against the persisted
/// node records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySummary {
    /// Deployment size.
    pub nodes: usize,
    /// Alive nodes.
    pub alive: usize,
    /// Alive ACTIVE nodes (the snapshot size `n1`).
    pub active: usize,
    /// Alive PASSIVE nodes.
    pub passive: usize,
    /// Alive nodes still undefined.
    pub undefined: usize,
    /// Alive nodes whose recorded representative is dead — coverage
    /// debt that maintenance has not yet repaired.
    pub stale_links: usize,
    /// Fraction of alive nodes answerable right now: ACTIVE, or
    /// represented by an alive representative (1.0 when nobody is
    /// alive).
    pub coverage: f64,
}

impl CheckpointState {
    /// Deployment size.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a zero-node checkpoint (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Structural validation: every per-node vector has the same
    /// length, ids stay in range, and each line's statistics count
    /// matches its pair count. Decoded store data must pass here
    /// before any index-based access.
    pub fn validate(&self) -> Result<(), CoreError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(CoreError::InvalidCheckpoint {
                detail: "checkpoint has no nodes",
            });
        }
        if self.positions.len() != n
            || self.neighbors.len() != n
            || self.alive.len() != n
            || self.values.len() != n
        {
            return Err(CoreError::InvalidCheckpoint {
                detail: "per-node vectors disagree on deployment size",
            });
        }
        if self.range.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::InvalidCheckpoint {
                detail: "radio range must be positive",
            });
        }
        let in_range = |id: u32| (id as usize) < n;
        for adj in &self.neighbors {
            if !adj.iter().all(|&id| in_range(id)) {
                return Err(CoreError::InvalidCheckpoint {
                    detail: "neighbor id out of range",
                });
            }
        }
        for nc in &self.nodes {
            if let Some((rep, _)) = nc.rep_of {
                if !in_range(rep) {
                    return Err(CoreError::InvalidCheckpoint {
                        detail: "representative id out of range",
                    });
                }
            }
            if !nc.represents.iter().all(|&(m, _)| in_range(m)) {
                return Err(CoreError::InvalidCheckpoint {
                    detail: "member id out of range",
                });
            }
            for lc in &nc.lines {
                if !in_range(lc.node) {
                    return Err(CoreError::InvalidCheckpoint {
                        detail: "cache-line neighbor id out of range",
                    });
                }
                if lc.stats.n as usize != lc.pairs.len() {
                    return Err(CoreError::InvalidCheckpoint {
                        detail: "cache-line statistics disagree with pair count",
                    });
                }
            }
        }
        Ok(())
    }

    /// Compute the quality summary. Index-safe on malformed data
    /// (unknown ids read as dead) so it can run before [`validate`]
    /// without panicking.
    ///
    /// [`validate`]: CheckpointState::validate
    pub fn quality(&self) -> QualitySummary {
        let is_alive = |id: usize| self.alive.get(id).copied().unwrap_or(false);
        let mut alive = 0usize;
        let mut active = 0usize;
        let mut passive = 0usize;
        let mut undefined = 0usize;
        let mut stale_links = 0usize;
        let mut covered = 0usize;
        for (i, nc) in self.nodes.iter().enumerate() {
            if !is_alive(i) {
                continue;
            }
            alive += 1;
            match nc.mode {
                Mode::Active => active += 1,
                Mode::Passive => passive += 1,
                Mode::Undefined => undefined += 1,
            }
            let rep_alive = nc.rep_of.map(|(rep, _)| is_alive(rep as usize));
            if matches!(nc.mode, Mode::Active) || rep_alive == Some(true) {
                covered += 1;
            }
            if rep_alive == Some(false) {
                stale_links += 1;
            }
        }
        let coverage = if alive == 0 {
            1.0
        } else {
            covered as f64 / alive as f64
        };
        QualitySummary {
            nodes: self.nodes.len(),
            alive,
            active,
            passive,
            undefined,
            stale_links,
            coverage,
        }
    }

    /// The cache configuration captured at extraction time.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            budget_bytes: self.budget_bytes as usize,
            pair_bytes: self.pair_bytes as usize,
            policy: self.policy,
        }
    }
}

/// Extract a checkpoint from live deployment parts (called by
/// `SensorNetwork::checkpoint`, which owns the private fields).
pub(crate) fn extract(
    net: &Network<ProtocolMsg>,
    nodes: &[SensorNode],
    now: usize,
    epoch: u64,
    values: Vec<f64>,
) -> CheckpointState {
    let topo = net.topology();
    let positions = topo
        .node_ids()
        .map(|id| {
            let p = topo.position(id);
            (p.x, p.y)
        })
        .collect();
    let neighbors = topo
        .node_ids()
        .map(|id| topo.neighbors(id).iter().map(|n| n.0).collect())
        .collect();
    let alive = topo.node_ids().map(|id| net.is_alive(id)).collect();
    let cache_cfg = nodes.first().map(|n| *n.cache.config()).unwrap_or_default();
    CheckpointState {
        tick: now as u64,
        epoch,
        range: topo.range(),
        positions,
        neighbors,
        alive,
        values,
        budget_bytes: cache_cfg.budget_bytes as u64,
        pair_bytes: cache_cfg.pair_bytes as u64,
        policy: cache_cfg.policy,
        nodes: nodes.iter().map(extract_node).collect(),
    }
}

fn extract_node(n: &SensorNode) -> NodeCheckpoint {
    NodeCheckpoint {
        mode: n.mode,
        rep_of: n.rep_of.map(|(id, e)| (id.0, e.0)),
        represents: n.represents.iter().map(|(&id, &e)| (id.0, e.0)).collect(),
        forced_active: n.forced_active,
        refusing_invites: n.refusing_invites,
        rr_after: n.cache.rr_after().map(|k| (k.node.0, k.measurement.0)),
        lines: n
            .cache
            .lines()
            .map(|(k, line)| LineCheckpoint {
                node: k.node.0,
                measurement: k.measurement.0,
                stats: *line.stats(),
                pairs: line.pairs().copied().collect(),
            })
            .collect(),
    }
}

/// Overwrite one node's protocol and cache state from its checkpoint.
fn apply_node(nc: &NodeCheckpoint, node: &mut SensorNode, cfg: CacheConfig) {
    node.mode = nc.mode;
    node.rep_of = nc.rep_of.map(|(id, e)| (NodeId(id), Epoch(e)));
    node.represents = nc
        .represents
        .iter()
        .map(|&(id, e)| (NodeId(id), Epoch(e)))
        .collect();
    node.forced_active = nc.forced_active;
    node.refusing_invites = nc.refusing_invites;
    let mut lines = BTreeMap::new();
    for lc in &nc.lines {
        let key = LineKey {
            node: NodeId(lc.node),
            measurement: MeasurementId(lc.measurement),
        };
        lines.insert(
            key,
            CacheLine::from_parts(lc.pairs.iter().copied().collect(), lc.stats),
        );
    }
    let rr_after = nc.rr_after.map(|(id, m)| LineKey {
        node: NodeId(id),
        measurement: MeasurementId(m),
    });
    node.cache = ModelCache::from_parts(cfg, lines, rr_after);
}

/// Overwrite every node's state (called by
/// `SensorNetwork::restore_checkpoint` after validation).
pub(crate) fn apply_nodes(cp: &CheckpointState, nodes: &mut [SensorNode]) {
    let cfg = cp.cache_config();
    for (nc, node) in cp.nodes.iter().zip(nodes.iter_mut()) {
        apply_node(nc, node, cfg);
    }
}

/// Rebuild the node vector a checkpoint describes, standalone.
pub(crate) fn rehydrate_nodes(cp: &CheckpointState) -> Vec<SensorNode> {
    let cfg = cp.cache_config();
    cp.nodes
        .iter()
        .enumerate()
        .map(|(i, nc)| {
            let mut node = SensorNode::new(NodeId::from_index(i), cfg);
            apply_node(nc, &mut node, cfg);
            node
        })
        .collect()
}

/// Rebuild the topology a checkpoint describes, adjacency verbatim.
fn rebuild_topology(cp: &CheckpointState) -> Result<Topology, CoreError> {
    let positions = cp
        .positions
        .iter()
        .map(|&(x, y)| Position::new(x, y))
        .collect();
    let neighbors = cp
        .neighbors
        .iter()
        .map(|adj| adj.iter().map(|&id| NodeId(id)).collect())
        .collect();
    Topology::from_parts(positions, cp.range, neighbors).map_err(|_| CoreError::InvalidCheckpoint {
        detail: "topology rebuild rejected the checkpoint geometry",
    })
}

/// Execute a query against a checkpoint alone — the `AS OF <tick>`
/// time-travel path. Pure and side-effect free: no simulator, no
/// energy accounting, no clock. Byte-identical to querying the live
/// deployment the checkpoint was taken from (or a same-seed replay of
/// it), because both funnel into
/// [`execute_frozen`](crate::query::execute_frozen) with identical
/// inputs.
///
/// Mirrors `try_query`'s availability contract: a dead (or absent)
/// sink, or a fully-dead network, returns
/// [`CoreError::NetworkUnavailable`].
pub fn execute_at(
    cp: &CheckpointState,
    query: &SnapshotQuery,
    sink: NodeId,
) -> Result<QueryResult, CoreError> {
    cp.validate()?;
    let alive_count = cp.alive.iter().filter(|&&a| a).count();
    let sink_alive = cp.alive.get(sink.index()).copied().unwrap_or(false);
    if alive_count == 0 || !sink_alive {
        return Err(CoreError::NetworkUnavailable { alive: alive_count });
    }
    let topology = rebuild_topology(cp)?;
    let nodes = rehydrate_nodes(cp);
    let alive = |id: NodeId| cp.alive.get(id.index()).copied().unwrap_or(false);
    let (result, _participants) = execute_frozen(&topology, alive, &nodes, &cp.values, query, sink);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SnapshotConfig;
    use crate::network::SensorNetwork;
    use crate::query::{Aggregate, QueryMode, SpatialPredicate};
    use snapshot_datagen::{random_walk, RandomWalkConfig};
    use snapshot_netsim::{EnergyModel, LinkModel};

    fn deployment(seed: u64) -> SensorNetwork {
        let data = random_walk(&RandomWalkConfig {
            n_nodes: 60,
            ..RandomWalkConfig::paper_defaults(3, seed)
        })
        .unwrap();
        let topo =
            Topology::random_uniform(60, std::f64::consts::SQRT_2, seed).expect("valid deployment");
        let mut sn = SensorNetwork::new(
            topo,
            LinkModel::Perfect,
            EnergyModel::default(),
            SnapshotConfig::paper(1.0, 2048, seed),
            data.trace,
        );
        sn.train(0, 10);
        sn.set_time(40);
        let _ = sn.elect();
        sn
    }

    #[test]
    fn checkpoint_is_deterministic_and_validates() {
        let sn = deployment(5);
        let a = sn.checkpoint();
        let b = sn.checkpoint();
        assert_eq!(a, b, "extraction must be a pure read");
        a.validate().expect("live checkpoint validates");
        assert_eq!(a.len(), 60);
        assert_eq!(a.tick, 40);
    }

    #[test]
    fn quality_matches_live_accounting() {
        let mut sn = deployment(7);
        let q = sn.checkpoint().quality();
        assert_eq!(q.nodes, 60);
        assert_eq!(q.alive, 60);
        assert_eq!(q.active, sn.snapshot_size());
        assert_eq!(q.active + q.passive + q.undefined, q.alive);
        assert_eq!(q.stale_links, 0);
        assert!((q.coverage - 1.0).abs() < 1e-12);

        // Kill a representative: its members' links go stale.
        let rep = sn.snapshot().representatives()[0];
        let members = sn.snapshot().members_of(rep).len();
        sn.net_mut().kill(rep);
        let q = sn.checkpoint().quality();
        assert_eq!(q.alive, 59);
        assert_eq!(q.stale_links, members);
    }

    #[test]
    fn execute_at_matches_the_live_query_exactly() {
        let mut sn = deployment(11);
        let cp = sn.checkpoint();
        for query in [
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Avg, QueryMode::Snapshot),
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Sum, QueryMode::Regular),
            SnapshotQuery::drill_through(SpatialPredicate::All, QueryMode::Snapshot)
                .with_representative_routing(),
        ] {
            let live = sn.query(&query, NodeId(0));
            let frozen = execute_at(&cp, &query, NodeId(0)).expect("checkpoint answers");
            assert_eq!(live, frozen, "frozen answer drifted from live");
        }
    }

    #[test]
    fn execute_at_refuses_a_dead_sink() {
        let mut sn = deployment(13);
        sn.net_mut().kill(NodeId(3));
        let cp = sn.checkpoint();
        let q = SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Avg, QueryMode::Regular);
        let err = execute_at(&cp, &q, NodeId(3)).unwrap_err();
        assert_eq!(err, CoreError::NetworkUnavailable { alive: 59 });
    }

    #[test]
    fn restore_checkpoint_round_trips() {
        let mut sn = deployment(17);
        sn.net_mut().kill(NodeId(9));
        sn.advance(5);
        let _ = sn.maintain();
        let cp = sn.checkpoint();

        // A freshly-built twin restored from the checkpoint answers
        // queries identically to the original.
        let mut twin = {
            let data = random_walk(&RandomWalkConfig {
                n_nodes: 60,
                ..RandomWalkConfig::paper_defaults(3, 17)
            })
            .unwrap();
            let topo = Topology::random_uniform(60, std::f64::consts::SQRT_2, 17)
                .expect("valid deployment");
            SensorNetwork::new(
                topo,
                LinkModel::Perfect,
                EnergyModel::default(),
                SnapshotConfig::paper(1.0, 2048, 17),
                data.trace,
            )
        };
        twin.restore_checkpoint(&cp).expect("shapes match");
        assert_eq!(twin.now(), sn.now());
        assert_eq!(twin.epoch(), sn.epoch());
        assert_eq!(twin.checkpoint(), cp, "re-extraction is idempotent");
        let q =
            SnapshotQuery::aggregate(SpatialPredicate::All, Aggregate::Avg, QueryMode::Snapshot);
        assert_eq!(twin.query(&q, NodeId(0)), sn.query(&q, NodeId(0)));
    }

    #[test]
    fn malformed_checkpoints_are_rejected_with_typed_errors() {
        let sn = deployment(19);
        let good = sn.checkpoint();

        let mut bad = good.clone();
        bad.alive.pop();
        assert!(matches!(
            bad.validate(),
            Err(CoreError::InvalidCheckpoint { .. })
        ));

        let mut bad = good.clone();
        bad.nodes[0].rep_of = Some((999, 1));
        assert!(matches!(
            bad.validate(),
            Err(CoreError::InvalidCheckpoint { .. })
        ));

        let mut bad = good.clone();
        if let Some(line) = bad.nodes.iter_mut().flat_map(|n| n.lines.iter_mut()).next() {
            line.stats.n += 1;
            assert!(matches!(
                bad.validate(),
                Err(CoreError::InvalidCheckpoint { .. })
            ));
        }

        // quality() on malformed data must not panic.
        let mut bad = good;
        bad.alive.clear();
        let q = bad.quality();
        assert_eq!(q.alive, 0);
    }
}
