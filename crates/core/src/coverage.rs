//! The coverage metric of Figure 10.
//!
//! The paper: "we tracked the number of node measurements available to
//! the query over the number of nodes that would have responded given
//! infinite battery capacity. We call this metric coverage." A dead
//! node inside the query region costs coverage under regular
//! execution; under snapshot execution its representative may still
//! supply an estimate, keeping coverage at 100%.

/// Accumulates coverage samples over a query workload and reports the
/// series (the y-axis of Figure 10) plus its integral ("what is
/// important is the area below each curve").
///
/// ```
/// use snapshot_core::CoverageTracker;
///
/// let mut tracker = CoverageTracker::new();
/// tracker.record(4, 4); // all four in-region nodes answered
/// tracker.record(3, 4); // one node dark
/// assert!((tracker.mean() - 0.875).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageTracker {
    samples: Vec<f64>,
}

impl CoverageTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        CoverageTracker::default()
    }

    /// Record one query's coverage: `available` measurements out of
    /// `ideal` (the count under infinite batteries). Queries whose
    /// region is empty (`ideal == 0`) count as full coverage — there
    /// was nothing to miss.
    pub fn record(&mut self, available: usize, ideal: usize) {
        let c = if ideal == 0 {
            1.0
        } else {
            available as f64 / ideal as f64
        };
        self.samples.push(c);
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw coverage series.
    pub fn series(&self) -> &[f64] {
        &self.samples
    }

    /// Mean coverage over all recorded queries — the area under the
    /// Figure 10 curve, normalized by its length.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Mean coverage over a window `[from, to)` of the query sequence
    /// (for plotting the curve in buckets).
    pub fn window_mean(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.samples.len());
        if from >= to {
            return 0.0;
        }
        self.samples[from..to].iter().sum::<f64>() / (to - from) as f64
    }

    /// Index of the first query whose coverage dropped below
    /// `threshold`, if any — locates the collapse point of the
    /// regular-query curve in Figure 10.
    pub fn first_below(&self, threshold: f64) -> Option<usize> {
        self.samples.iter().position(|&c| c < threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_a_simple_ratio() {
        let mut t = CoverageTracker::new();
        t.record(3, 4);
        assert!((t.series()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_regions_count_as_full_coverage() {
        let mut t = CoverageTracker::new();
        t.record(0, 0);
        assert_eq!(t.series()[0], 1.0);
    }

    #[test]
    fn mean_and_windows() {
        let mut t = CoverageTracker::new();
        for (a, i) in [(4, 4), (2, 4), (0, 4), (4, 4)] {
            t.record(a, i);
        }
        assert!((t.mean() - 0.625).abs() < 1e-12);
        assert!((t.window_mean(0, 2) - 0.75).abs() < 1e-12);
        assert!((t.window_mean(2, 4) - 0.5).abs() < 1e-12);
        assert_eq!(t.window_mean(4, 9), 0.0);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn collapse_point_detection() {
        let mut t = CoverageTracker::new();
        t.record(4, 4);
        t.record(4, 4);
        t.record(1, 4);
        assert_eq!(t.first_below(0.5), Some(2));
        assert_eq!(t.first_below(0.1), None);
    }

    #[test]
    fn empty_tracker_mean_is_zero() {
        assert_eq!(CoverageTracker::new().mean(), 0.0);
        assert!(CoverageTracker::new().is_empty());
    }
}
