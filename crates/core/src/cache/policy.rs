//! Cache replacement policies.

/// Which replacement strategy the cache manager runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// The paper's model-aware admission/replacement algorithm
    /// (Section 4): observations are admitted, time-shifted or
    /// rejected by comparing model benefits, and victims come from the
    /// line with the smallest eviction penalty.
    #[default]
    ModelAware,
    /// The baseline of Figure 8: victims rotate round-robin over the
    /// cache lines. The paper notes that for this write-mostly access
    /// pattern round-robin is equivalent to FIFO and LRU.
    RoundRobin,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_algorithm() {
        assert_eq!(CachePolicy::default(), CachePolicy::ModelAware);
    }
}
